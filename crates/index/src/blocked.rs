//! Blocked postings with skip pointers.
//!
//! Delta-varint postings must be decoded sequentially, so intersecting a
//! rare list (a few documents) with a common one (most of the corpus)
//! wastes time decoding postings that can never match. Blocking fixes
//! this: postings are encoded in fixed-size blocks, and a small skip
//! table records each block's last document id and byte extent. An
//! intersection probes the skip table (binary search) and decodes only
//! the blocks that can contain candidates — the classic inverted-index
//! skip-pointer design, here as the optional fast path for the engine's
//! `Fetch` intersections.

use crate::cursor::{CursorStats, PostingsCursor};
use crate::postings::Postings;
use crate::{varint, DocId, Error, Result};
use std::borrow::Borrow;

/// Number of postings per block. 128 balances skip granularity against
/// table overhead (~1.6 % at 2 bytes/posting).
pub const BLOCK_SIZE: usize = 128;

/// One skip-table entry.
#[derive(Clone, Copy, Debug)]
struct Skip {
    /// Last (largest) doc id in the block.
    last_doc: DocId,
    /// Byte offset of the block in the encoded stream.
    offset: u32,
    /// Number of postings in the block.
    len: u16,
}

/// An immutable postings list with a block-level skip table.
#[derive(Clone, Debug)]
pub struct BlockedPostings {
    encoded: Vec<u8>,
    skips: Vec<Skip>,
    count: u32,
}

impl BlockedPostings {
    /// Builds from sorted, deduplicated doc ids.
    // `expect`: `chunks()` never yields an empty block.
    #[allow(clippy::expect_used)]
    pub fn from_sorted(ids: &[DocId]) -> BlockedPostings {
        let mut encoded = Vec::with_capacity(ids.len());
        let mut skips = Vec::with_capacity(ids.len().div_ceil(BLOCK_SIZE));
        for block in ids.chunks(BLOCK_SIZE) {
            let offset = encoded.len() as u32;
            // Each block restarts delta coding from an absolute id, so
            // blocks are independently decodable.
            let mut prev = None;
            for &id in block {
                match prev {
                    None => varint::encode(u64::from(id), &mut encoded),
                    Some(p) => {
                        debug_assert!(id > p, "ids must be strictly increasing");
                        varint::encode(u64::from(id - p), &mut encoded)
                    }
                };
                prev = Some(id);
            }
            skips.push(Skip {
                last_doc: *block.last().expect("chunks are non-empty"),
                offset,
                len: block.len() as u16,
            });
        }
        BlockedPostings {
            encoded,
            skips,
            count: ids.len() as u32,
        }
    }

    /// Converts from a plain postings list (decodes once).
    pub fn from_postings(p: &Postings) -> Result<BlockedPostings> {
        Ok(BlockedPostings::from_sorted(&p.decode()?))
    }

    /// Number of postings.
    pub fn len(&self) -> usize {
        self.count as usize
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Number of blocks (= skip entries).
    pub fn num_blocks(&self) -> usize {
        self.skips.len()
    }

    /// Encoded payload size in bytes (excluding the skip table).
    pub fn encoded_len(&self) -> usize {
        self.encoded.len()
    }

    /// Decodes everything (for tests and full unions).
    pub fn decode(&self) -> Result<Vec<DocId>> {
        let mut out = Vec::with_capacity(self.count as usize);
        for (i, _) in self.skips.iter().enumerate() {
            self.decode_block(i, &mut out)?;
        }
        Ok(out)
    }

    fn block_bytes(&self, i: usize) -> &[u8] {
        let start = self.skips[i].offset as usize;
        let end = self
            .skips
            .get(i + 1)
            .map_or(self.encoded.len(), |s| s.offset as usize);
        &self.encoded[start..end]
    }

    fn decode_block(&self, i: usize, out: &mut Vec<DocId>) -> Result<()> {
        let mut buf = self.block_bytes(i);
        let mut current = 0u64;
        for j in 0..self.skips[i].len {
            let (delta, used) = varint::decode(buf)?;
            buf = &buf[used..];
            current = if j == 0 { delta } else { current + delta };
            if current > u64::from(DocId::MAX) {
                return Err(Error::Corrupt("doc id overflows u32".into()));
            }
            out.push(current as DocId);
        }
        Ok(())
    }

    /// Whether `doc` is in the list, decoding at most one block.
    pub fn contains(&self, doc: DocId) -> Result<bool> {
        let block = self.skips.partition_point(|s| s.last_doc < doc);
        if block >= self.skips.len() {
            return Ok(false);
        }
        let mut ids = Vec::with_capacity(self.skips[block].len as usize);
        self.decode_block(block, &mut ids)?;
        Ok(ids.binary_search(&doc).is_ok())
    }

    /// Returns a primed [`BlockedCursor`] borrowing this list.
    pub fn cursor(&self) -> Result<BlockedCursor<&BlockedPostings>> {
        BlockedCursor::new(self)
    }

    /// Returns a primed [`BlockedCursor`] that owns this list.
    pub fn into_cursor(self) -> Result<BlockedCursor<BlockedPostings>> {
        BlockedCursor::new(self)
    }

    /// Serializes the list (skip table + encoded payload) into `out`.
    ///
    /// Layout: `count`, `payload_len`, `num_skips`, then per skip entry
    /// `last_doc`/`offset`/`len`, then the payload bytes — all integers
    /// LEB128. Used by the on-disk format's blocked postings entries.
    pub fn write_to(&self, out: &mut Vec<u8>) {
        varint::encode(u64::from(self.count), out);
        varint::encode(self.encoded.len() as u64, out);
        varint::encode(self.skips.len() as u64, out);
        for s in &self.skips {
            varint::encode(u64::from(s.last_doc), out);
            varint::encode(u64::from(s.offset), out);
            varint::encode(u64::from(s.len), out);
        }
        out.extend_from_slice(&self.encoded);
    }

    /// Deserializes a list written by [`BlockedPostings::write_to`]. The
    /// slice must contain exactly one serialized list.
    pub fn read(mut buf: &[u8]) -> Result<BlockedPostings> {
        let mut take = |what: &'static str| -> Result<u64> {
            let (v, used) = varint::decode(buf)
                .map_err(|_| Error::Corrupt(format!("blocked postings: bad {what}")))?;
            buf = &buf[used..];
            Ok(v)
        };
        let count = take("count")?;
        let payload_len = take("payload length")? as usize;
        let num_skips = take("skip count")? as usize;
        if count > u64::from(u32::MAX) || num_skips > count as usize {
            return Err(Error::Corrupt("blocked postings: bad header".into()));
        }
        let mut skips: Vec<Skip> = Vec::with_capacity(num_skips);
        for i in 0..num_skips {
            let last_doc = take("skip last_doc")?;
            let offset = take("skip offset")?;
            let len = take("skip len")?;
            if last_doc > u64::from(DocId::MAX)
                || offset > u64::from(u32::MAX)
                || len == 0
                || len > BLOCK_SIZE as u64
            {
                return Err(Error::Corrupt("blocked postings: bad skip entry".into()));
            }
            // Offsets must start at 0, ascend strictly, and stay inside
            // the payload, or block slicing would be out of bounds.
            let expected_floor = if i == 0 {
                0
            } else {
                u64::from(skips[i - 1].offset) + 1
            };
            if (i == 0 && offset != 0) || offset < expected_floor || offset as usize >= payload_len
            {
                return Err(Error::Corrupt(
                    "blocked postings: skip offset out of bounds".into(),
                ));
            }
            skips.push(Skip {
                last_doc: last_doc as DocId,
                offset: offset as u32,
                len: len as u16,
            });
        }
        if buf.len() != payload_len {
            return Err(Error::Corrupt("blocked postings: payload length".into()));
        }
        Ok(BlockedPostings {
            encoded: buf.to_vec(),
            skips,
            count: count as u32,
        })
    }

    /// Deep structural validation for `free fsck`: decodes every block
    /// and cross-checks the skip table against the decoded contents —
    /// per-block doc ids strictly ascending, ascent maintained across
    /// block boundaries, each skip entry's `last_doc` equal to its
    /// block's actual last id, and the block lengths summing to the
    /// stored count. Returns the first inconsistency as `Err(Corrupt)`.
    pub fn validate(&self) -> Result<()> {
        let corrupt = |msg: String| Err(Error::Corrupt(format!("blocked postings: {msg}")));
        let mut total = 0usize;
        let mut prev: Option<DocId> = None;
        for (i, s) in self.skips.iter().enumerate() {
            let mut ids = Vec::with_capacity(s.len as usize);
            self.decode_block(i, &mut ids)?;
            if ids.len() != s.len as usize {
                return corrupt(format!(
                    "block {i} decodes {} postings, skip table says {}",
                    ids.len(),
                    s.len
                ));
            }
            for &id in &ids {
                if prev.is_some_and(|p| id <= p) {
                    return corrupt(format!("doc ids not strictly ascending in block {i}"));
                }
                prev = Some(id);
            }
            if ids.last() != Some(&s.last_doc) {
                return corrupt(format!(
                    "block {i} ends at doc {:?}, skip table says {}",
                    ids.last(),
                    s.last_doc
                ));
            }
            total += ids.len();
        }
        if total != self.count as usize {
            return corrupt(format!(
                "blocks hold {total} postings, header says {}",
                self.count
            ));
        }
        Ok(())
    }

    /// Intersects a (typically short) sorted probe list against this
    /// list, decoding only the blocks that contain probe candidates.
    /// Returns the matching ids plus the number of blocks decoded (for
    /// cost accounting and benches).
    pub fn intersect_sorted(&self, probes: &[DocId]) -> Result<(Vec<DocId>, usize)> {
        let mut out = Vec::new();
        let mut decoded: Vec<DocId> = Vec::new();
        let mut decoded_block = usize::MAX;
        let mut blocks_decoded = 0;
        for &p in probes {
            let block = self.skips.partition_point(|s| s.last_doc < p);
            if block >= self.skips.len() {
                break;
            }
            if block != decoded_block {
                decoded.clear();
                self.decode_block(block, &mut decoded)?;
                decoded_block = block;
                blocks_decoded += 1;
            }
            if decoded.binary_search(&p).is_ok() {
                out.push(p);
            }
        }
        Ok((out, blocks_decoded))
    }
}

/// A [`PostingsCursor`] over a [`BlockedPostings`] list.
///
/// `seek` binary-searches the skip table and decodes only the target
/// block; whole blocks passed over are charged to `postings_skipped`
/// without ever being decoded. Generic over [`Borrow`] so it can either
/// borrow a cached list (`&BlockedPostings`) or own one read from disk.
#[derive(Clone, Debug)]
pub struct BlockedCursor<B: Borrow<BlockedPostings> = BlockedPostings> {
    inner: B,
    /// Index of the decoded block (meaningless when `buf` is empty).
    block: usize,
    /// Decoded contents of `block`.
    buf: Vec<DocId>,
    /// Position within `buf`; `pos == buf.len()` means exhausted.
    pos: usize,
    /// Postings logically before the current position (yielded or skipped).
    consumed: usize,
    stats: CursorStats,
}

impl<B: Borrow<BlockedPostings>> BlockedCursor<B> {
    /// Creates a primed cursor: positioned on the first posting (the
    /// first block is decoded eagerly), or exhausted for an empty list.
    pub fn new(inner: B) -> Result<BlockedCursor<B>> {
        let mut cursor = BlockedCursor {
            inner,
            block: 0,
            buf: Vec::new(),
            pos: 0,
            consumed: 0,
            stats: CursorStats::default(),
        };
        if cursor.list().num_blocks() > 0 {
            cursor.load_block(0)?;
        }
        Ok(cursor)
    }

    fn list(&self) -> &BlockedPostings {
        self.inner.borrow()
    }

    fn load_block(&mut self, i: usize) -> Result<()> {
        self.buf.clear();
        self.inner.borrow().decode_block(i, &mut self.buf)?;
        self.block = i;
        self.pos = 0;
        self.stats.blocks_decoded += 1;
        self.stats.postings_decoded += self.buf.len() as u64;
        Ok(())
    }
}

impl<B: Borrow<BlockedPostings> + Send> PostingsCursor for BlockedCursor<B> {
    fn current(&self) -> Option<DocId> {
        self.buf.get(self.pos).copied()
    }

    fn advance(&mut self) -> Result<Option<DocId>> {
        if self.pos < self.buf.len() {
            self.pos += 1;
            self.consumed += 1;
            if self.pos >= self.buf.len() {
                let next = self.block + 1;
                if next < self.list().num_blocks() {
                    self.load_block(next)?;
                }
            }
        }
        Ok(self.current())
    }

    fn seek(&mut self, target: DocId) -> Result<Option<DocId>> {
        self.stats.seeks += 1;
        match self.current() {
            None => return Ok(None),
            Some(d) if d >= target => return Ok(Some(d)),
            Some(_) => {}
        }
        // Find the first block whose last doc can reach the target.
        let skips = &self.list().skips;
        let dest = self.block + skips[self.block..].partition_point(|s| s.last_doc < target);
        if dest != self.block {
            // The rest of the decoded block plus every block in between
            // is skipped; intermediate blocks are never decoded.
            let mut skipped = self.buf.len() - self.pos;
            for s in &self.list().skips[self.block + 1..dest.min(skips.len())] {
                skipped += s.len as usize;
            }
            self.stats.postings_skipped += skipped as u64;
            self.consumed += skipped;
            if dest >= self.list().num_blocks() {
                self.pos = self.buf.len();
                return Ok(None);
            }
            self.load_block(dest)?;
        }
        // `dest`'s last doc is >= target, so the in-block search hits.
        let idx = self.pos + self.buf[self.pos..].partition_point(|&d| d < target);
        self.stats.postings_skipped += (idx - self.pos) as u64;
        self.consumed += idx - self.pos;
        self.pos = idx;
        Ok(self.current())
    }

    fn cost_estimate(&self) -> usize {
        self.list().len().saturating_sub(self.consumed)
    }

    fn collect_stats(&self, out: &mut CursorStats) {
        out.merge(&self.stats);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_small() {
        let ids = vec![3, 7, 100, 1_000];
        let b = BlockedPostings::from_sorted(&ids);
        assert_eq!(b.len(), 4);
        assert_eq!(b.num_blocks(), 1);
        assert_eq!(b.decode().unwrap(), ids);
    }

    #[test]
    fn roundtrip_multiblock() {
        let ids: Vec<DocId> = (0..1000).map(|i| i * 3).collect();
        let b = BlockedPostings::from_sorted(&ids);
        assert_eq!(b.num_blocks(), 1000usize.div_ceil(BLOCK_SIZE));
        assert_eq!(b.decode().unwrap(), ids);
    }

    #[test]
    fn empty() {
        let b = BlockedPostings::from_sorted(&[]);
        assert!(b.is_empty());
        assert_eq!(b.num_blocks(), 0);
        assert_eq!(b.decode().unwrap(), Vec::<DocId>::new());
        assert!(!b.contains(5).unwrap());
        assert_eq!(b.intersect_sorted(&[1, 2]).unwrap().0, Vec::<DocId>::new());
    }

    #[test]
    fn contains_probes_one_block() {
        let ids: Vec<DocId> = (0..500).map(|i| i * 2).collect();
        let b = BlockedPostings::from_sorted(&ids);
        assert!(b.contains(0).unwrap());
        assert!(b.contains(998).unwrap());
        assert!(!b.contains(999).unwrap());
        assert!(!b.contains(5_000).unwrap());
    }

    #[test]
    fn intersect_skips_blocks() {
        let long: Vec<DocId> = (0..10_000).collect();
        let b = BlockedPostings::from_sorted(&long);
        let probes = vec![5, 9_000, 9_001, 20_000];
        let (hits, blocks) = b.intersect_sorted(&probes).unwrap();
        assert_eq!(hits, vec![5, 9_000, 9_001]);
        // Only two distinct blocks needed (ids 5 and 9000/9001), out of ~78.
        assert_eq!(blocks, 2);
        assert!(b.num_blocks() > 70);
    }

    #[test]
    fn intersect_matches_naive() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(41);
        for _ in 0..50 {
            let mut long: Vec<DocId> = (0..rng.gen_range(0..800))
                .map(|_| rng.gen_range(0..3_000))
                .collect();
            long.sort_unstable();
            long.dedup();
            let mut probes: Vec<DocId> = (0..rng.gen_range(0..40))
                .map(|_| rng.gen_range(0..3_500))
                .collect();
            probes.sort_unstable();
            probes.dedup();
            let b = BlockedPostings::from_sorted(&long);
            let want = crate::ops::intersect(&probes, &long);
            assert_eq!(b.intersect_sorted(&probes).unwrap().0, want);
        }
    }

    #[test]
    fn from_postings_conversion() {
        let p = Postings::from_sorted(&[1, 5, 9]);
        let b = BlockedPostings::from_postings(&p).unwrap();
        assert_eq!(b.decode().unwrap(), vec![1, 5, 9]);
    }

    #[test]
    fn serialization_roundtrip() {
        for n in [0usize, 1, 5, BLOCK_SIZE, BLOCK_SIZE + 1, 1000] {
            let ids: Vec<DocId> = (0..n as DocId).map(|i| i * 7 + 3).collect();
            let b = BlockedPostings::from_sorted(&ids);
            let mut bytes = Vec::new();
            b.write_to(&mut bytes);
            let back = BlockedPostings::read(&bytes).unwrap();
            assert_eq!(back.len(), b.len());
            assert_eq!(back.num_blocks(), b.num_blocks());
            assert_eq!(back.decode().unwrap(), ids);
        }
    }

    #[test]
    fn serialization_rejects_garbage() {
        let b = BlockedPostings::from_sorted(&[1, 2, 3]);
        let mut bytes = Vec::new();
        b.write_to(&mut bytes);
        // Truncated payload.
        assert!(BlockedPostings::read(&bytes[..bytes.len() - 1]).is_err());
        // Trailing junk.
        bytes.push(0);
        assert!(BlockedPostings::read(&bytes).is_err());
        assert!(BlockedPostings::read(&[]).is_err());
    }

    #[test]
    fn validate_accepts_clean_lists() {
        for n in [1usize, BLOCK_SIZE, BLOCK_SIZE * 3 + 7] {
            let ids: Vec<DocId> = (0..n as DocId).map(|i| i * 2 + 1).collect();
            BlockedPostings::from_sorted(&ids).validate().unwrap();
        }
        BlockedPostings::from_sorted(&[]).validate().unwrap();
    }

    #[test]
    fn validate_catches_skip_table_lies() {
        let ids: Vec<DocId> = (0..400).collect();
        // A skip entry whose last_doc disagrees with its block.
        let mut b = BlockedPostings::from_sorted(&ids);
        b.skips[1].last_doc += 1;
        assert!(matches!(b.validate(), Err(Error::Corrupt(_))));
        // A count that disagrees with the blocks.
        let mut b = BlockedPostings::from_sorted(&ids);
        b.count += 1;
        assert!(matches!(b.validate(), Err(Error::Corrupt(_))));
        // Non-ascending ids across a block boundary.
        let mut b = BlockedPostings::from_sorted(&ids);
        b.skips[0].last_doc = 500; // would need block 0 to end past block 1's start
        assert!(matches!(b.validate(), Err(Error::Corrupt(_))));
    }

    #[test]
    fn read_rejects_out_of_bounds_skip_offsets() {
        let ids: Vec<DocId> = (0..400).collect();
        let b = BlockedPostings::from_sorted(&ids);
        let mut clean = Vec::new();
        b.write_to(&mut clean);
        // Re-serialize with a first skip offset that is not 0.
        let mut forged = Vec::new();
        varint::encode(u64::from(b.count), &mut forged);
        varint::encode(b.encoded.len() as u64, &mut forged);
        varint::encode(b.skips.len() as u64, &mut forged);
        for (i, s) in b.skips.iter().enumerate() {
            varint::encode(u64::from(s.last_doc), &mut forged);
            let off = if i == 0 {
                b.encoded.len() as u64 + 100 // past the payload
            } else {
                u64::from(s.offset)
            };
            varint::encode(off, &mut forged);
            varint::encode(u64::from(s.len), &mut forged);
        }
        forged.extend_from_slice(&b.encoded);
        assert!(matches!(
            BlockedPostings::read(&forged),
            Err(Error::Corrupt(_))
        ));
        // The clean serialization still reads fine.
        assert!(BlockedPostings::read(&clean).is_ok());
    }

    #[test]
    fn cursor_walks_all_blocks() {
        use crate::cursor::drain;
        let ids: Vec<DocId> = (0..1000).map(|i| i * 3).collect();
        let b = BlockedPostings::from_sorted(&ids);
        let mut c = b.cursor().unwrap();
        assert_eq!(c.current(), Some(0));
        assert_eq!(c.cost_estimate(), 1000);
        assert_eq!(drain(&mut c).unwrap(), ids);
        let mut s = CursorStats::default();
        c.collect_stats(&mut s);
        assert_eq!(s.blocks_decoded as usize, b.num_blocks());
        assert_eq!(s.postings_decoded, 1000);
        assert_eq!(s.postings_skipped, 0);
    }

    #[test]
    fn cursor_on_empty_list() {
        let b = BlockedPostings::from_sorted(&[]);
        let mut c = b.cursor().unwrap();
        assert_eq!(c.current(), None);
        assert_eq!(c.advance().unwrap(), None);
        assert_eq!(c.seek(10).unwrap(), None);
        assert_eq!(c.cost_estimate(), 0);
    }

    #[test]
    fn cursor_seek_skips_undecoded_blocks() {
        let ids: Vec<DocId> = (0..10_000).collect();
        let b = BlockedPostings::from_sorted(&ids);
        let mut c = b.cursor().unwrap();
        assert_eq!(c.seek(9_000).unwrap(), Some(9_000));
        let mut s = CursorStats::default();
        c.collect_stats(&mut s);
        // Only the first block (priming) and the target block decoded.
        assert_eq!(s.blocks_decoded, 2);
        assert_eq!(s.postings_skipped, 9_000);
        assert!(s.postings_decoded < 3 * BLOCK_SIZE as u64);
        assert_eq!(c.cost_estimate(), 1_000);
        // Seek past the end exhausts; further ops are no-ops.
        assert_eq!(c.seek(20_000).unwrap(), None);
        assert_eq!(c.advance().unwrap(), None);
        assert_eq!(c.seek(1).unwrap(), None);
        assert_eq!(c.cost_estimate(), 0);
    }

    #[test]
    fn cursor_seek_within_block_and_between_values() {
        let ids: Vec<DocId> = (0..500).map(|i| i * 2).collect();
        let b = BlockedPostings::from_sorted(&ids);
        let mut c = b.cursor().unwrap();
        // Target between two present values rounds up.
        assert_eq!(c.seek(3).unwrap(), Some(4));
        // Backward seek is a no-op.
        assert_eq!(c.seek(0).unwrap(), Some(4));
        // Seek to current stays put.
        assert_eq!(c.seek(4).unwrap(), Some(4));
        assert_eq!(c.advance().unwrap(), Some(6));
    }

    #[test]
    fn cursor_matches_slice_cursor_randomized() {
        use crate::cursor::SliceCursor;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(97);
        for _ in 0..30 {
            let mut ids: Vec<DocId> = (0..rng.gen_range(0..1200))
                .map(|_| rng.gen_range(0..5_000))
                .collect();
            ids.sort_unstable();
            ids.dedup();
            let b = BlockedPostings::from_sorted(&ids);
            let mut blocked = b.cursor().unwrap();
            let mut slice = SliceCursor::new(ids.clone());
            // Interleave random seeks and advances; positions must agree.
            for _ in 0..200 {
                if rng.gen_bool(0.5) {
                    let t = rng.gen_range(0..5_500);
                    assert_eq!(blocked.seek(t).unwrap(), slice.seek(t).unwrap());
                } else {
                    assert_eq!(blocked.advance().unwrap(), slice.advance().unwrap());
                }
                assert_eq!(blocked.current(), slice.current());
            }
        }
    }

    #[test]
    fn owned_cursor_reads_from_disk_shape() {
        // The on-disk path: serialize, read back, cursor owns the list.
        let ids: Vec<DocId> = (0..300).map(|i| i * 5).collect();
        let mut bytes = Vec::new();
        BlockedPostings::from_sorted(&ids).write_to(&mut bytes);
        let mut c = BlockedPostings::read(&bytes)
            .unwrap()
            .into_cursor()
            .unwrap();
        assert_eq!(c.seek(751).unwrap(), Some(755));
        assert_eq!(crate::cursor::drain(&mut c).unwrap().last(), Some(&1495));
    }
}
