//! Streaming cursors over postings lists.
//!
//! The eager set operations in [`crate::ops`] materialize a full
//! `Vec<DocId>` at every step, which makes a broad OR over common grams
//! cost memory proportional to the corpus even when an enclosing AND will
//! discard almost everything. Cursors fix that: a [`PostingsCursor`]
//! yields doc ids lazily in increasing order and supports `seek`, so a
//! multiway intersection can leapfrog — each list is only decoded where a
//! candidate from the rarest list might land.
//!
//! Contract (shared by every implementation):
//!
//! * A freshly constructed cursor is *primed*: [`PostingsCursor::current`]
//!   is the first doc id, or `None` for an empty list.
//! * Doc ids are strictly increasing; once `current()` returns `None` the
//!   cursor stays exhausted.
//! * [`PostingsCursor::seek`] positions on the first doc `>= target` and
//!   never moves backwards: seeking below `current()` is a no-op.
//! * [`PostingsCursor::cost_estimate`] is an upper bound on how many docs
//!   the cursor can still yield, cheap enough to call during planning.
//!
//! Cost counters (seeks issued, blocks decoded, postings decoded and
//! skipped) accumulate per cursor and are gathered recursively with
//! [`PostingsCursor::collect_stats`], so the engine can report exactly how
//! much index work a streamed query did.

use crate::{DocId, Result};

/// Cost counters accumulated by a cursor (and, recursively, its children).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CursorStats {
    /// Number of `seek` calls served.
    pub seeks: u64,
    /// Encoded blocks decoded (blocked lists only).
    pub blocks_decoded: u64,
    /// Postings actually decoded from their encoded form.
    pub postings_decoded: u64,
    /// Postings passed over without being yielded (by `seek`, including
    /// whole blocks skipped via the skip table).
    pub postings_skipped: u64,
}

impl CursorStats {
    /// Adds `other`'s counters into `self`.
    pub fn merge(&mut self, other: &CursorStats) {
        self.seeks += other.seeks;
        self.blocks_decoded += other.blocks_decoded;
        self.postings_decoded += other.postings_decoded;
        self.postings_skipped += other.postings_skipped;
    }
}

/// A streaming, seekable iterator over a sorted postings list.
///
/// `Send` is a supertrait: a compiled cursor tree is a self-contained
/// value (postings are decoded into owned buffers or shared via `Arc`),
/// so the engine — and anything above it, like a query server's worker
/// pool — may move a cursor tree to another thread wholesale.
pub trait PostingsCursor: Send {
    /// The doc id the cursor is positioned on, or `None` when exhausted.
    fn current(&self) -> Option<DocId>;

    /// Moves to the next doc id, returning the new position.
    fn advance(&mut self) -> Result<Option<DocId>>;

    /// Moves to the first doc id `>= target`, returning the new position.
    /// Never moves backwards.
    fn seek(&mut self, target: DocId) -> Result<Option<DocId>>;

    /// Upper bound on the number of docs this cursor can still yield.
    fn cost_estimate(&self) -> usize;

    /// Accumulates this cursor's counters (recursively for combinators)
    /// into `out`.
    fn collect_stats(&self, out: &mut CursorStats);
}

impl PostingsCursor for Box<dyn PostingsCursor> {
    fn current(&self) -> Option<DocId> {
        (**self).current()
    }
    fn advance(&mut self) -> Result<Option<DocId>> {
        (**self).advance()
    }
    fn seek(&mut self, target: DocId) -> Result<Option<DocId>> {
        (**self).seek(target)
    }
    fn cost_estimate(&self) -> usize {
        (**self).cost_estimate()
    }
    fn collect_stats(&self, out: &mut CursorStats) {
        (**self).collect_stats(out)
    }
}

/// Drains a cursor into a sorted `Vec<DocId>` (tests, root materialization).
pub fn drain<C: PostingsCursor + ?Sized>(cursor: &mut C) -> Result<Vec<DocId>> {
    let mut out = Vec::new();
    while let Some(doc) = cursor.current() {
        out.push(doc);
        cursor.advance()?;
    }
    Ok(out)
}

/// A cursor over an already-decoded, sorted doc-id slice.
///
/// This is the reference implementation (and the [`crate::MemIndex`]
/// fast path): the whole list is decoded up front, so `postings_decoded`
/// is charged at construction and `seek` is a gallop over memory.
#[derive(Clone, Debug)]
pub struct SliceCursor {
    docs: Vec<DocId>,
    pos: usize,
    stats: CursorStats,
}

impl SliceCursor {
    /// Creates a primed cursor over sorted, deduplicated doc ids.
    pub fn new(docs: Vec<DocId>) -> SliceCursor {
        let stats = CursorStats {
            postings_decoded: docs.len() as u64,
            ..CursorStats::default()
        };
        SliceCursor {
            docs,
            pos: 0,
            stats,
        }
    }

    /// An exhausted cursor (used when a key is absent from the index).
    pub fn empty() -> SliceCursor {
        SliceCursor::new(Vec::new())
    }
}

impl PostingsCursor for SliceCursor {
    fn current(&self) -> Option<DocId> {
        self.docs.get(self.pos).copied()
    }

    fn advance(&mut self) -> Result<Option<DocId>> {
        if self.pos < self.docs.len() {
            self.pos += 1;
        }
        Ok(self.current())
    }

    fn seek(&mut self, target: DocId) -> Result<Option<DocId>> {
        self.stats.seeks += 1;
        if self.current().is_some_and(|d| d >= target) {
            return Ok(self.current());
        }
        // Exponential probe forward, then binary search the bracket —
        // O(log gap) rather than O(len) for lopsided intersections.
        let start = self.pos;
        let mut bound = 1usize;
        while start + bound < self.docs.len() && self.docs[start + bound] < target {
            bound *= 2;
        }
        let end = (start + bound + 1).min(self.docs.len());
        let idx = start + self.docs[start..end].partition_point(|&d| d < target);
        self.stats.postings_skipped += (idx - self.pos) as u64;
        self.pos = idx;
        Ok(self.current())
    }

    fn cost_estimate(&self) -> usize {
        self.docs.len() - self.pos.min(self.docs.len())
    }

    fn collect_stats(&self, out: &mut CursorStats) {
        out.merge(&self.stats);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_send<T: Send>() {}
    fn assert_send_sync<T: Send + Sync>() {}

    /// The whole cursor family must stay `Send` so compiled plans can be
    /// handed to another thread (e.g. a query server's worker pool).
    #[test]
    fn cursor_family_is_send() {
        assert_send::<Box<dyn PostingsCursor>>();
        assert_send::<crate::SliceCursor>();
        assert_send::<crate::BlockedCursor>();
        assert_send::<crate::AndCursor<Box<dyn PostingsCursor>>>();
        assert_send::<crate::OrCursor<Box<dyn PostingsCursor>>>();
        assert_send::<crate::InstrumentedCursor<crate::SliceCursor>>();
        assert_send_sync::<crate::IndexReader>();
        assert_send_sync::<crate::MemIndex>();
    }

    #[test]
    fn primed_on_first() {
        let c = SliceCursor::new(vec![3, 7, 9]);
        assert_eq!(c.current(), Some(3));
        assert_eq!(c.cost_estimate(), 3);
        let e = SliceCursor::empty();
        assert_eq!(e.current(), None);
        assert_eq!(e.cost_estimate(), 0);
    }

    #[test]
    fn advance_walks_in_order() {
        let mut c = SliceCursor::new(vec![1, 4, 9]);
        assert_eq!(c.advance().unwrap(), Some(4));
        assert_eq!(c.advance().unwrap(), Some(9));
        assert_eq!(c.advance().unwrap(), None);
        assert_eq!(c.advance().unwrap(), None, "stays exhausted");
    }

    #[test]
    fn seek_forward_only() {
        let mut c = SliceCursor::new(vec![2, 5, 8, 11, 20]);
        assert_eq!(c.seek(6).unwrap(), Some(8));
        // Seeking backwards is a no-op.
        assert_eq!(c.seek(1).unwrap(), Some(8));
        // Seeking to the current value stays put.
        assert_eq!(c.seek(8).unwrap(), Some(8));
        assert_eq!(c.seek(21).unwrap(), None);
    }

    #[test]
    fn seek_counts_skipped() {
        let mut c = SliceCursor::new((0..100).collect());
        c.seek(50).unwrap();
        let mut s = CursorStats::default();
        c.collect_stats(&mut s);
        assert_eq!(s.seeks, 1);
        assert_eq!(s.postings_skipped, 50);
        assert_eq!(s.postings_decoded, 100, "slice decodes eagerly");
    }

    #[test]
    fn drain_yields_everything() {
        let mut c = SliceCursor::new(vec![1, 2, 3]);
        assert_eq!(drain(&mut c).unwrap(), vec![1, 2, 3]);
        assert_eq!(c.current(), None);
    }

    #[test]
    fn boxed_cursor_is_a_cursor() {
        let mut b: Box<dyn PostingsCursor> = Box::new(SliceCursor::new(vec![5, 6]));
        assert_eq!(b.current(), Some(5));
        assert_eq!(b.seek(6).unwrap(), Some(6));
        let mut s = CursorStats::default();
        b.collect_stats(&mut s);
        assert_eq!(s.seeks, 1);
    }
}
