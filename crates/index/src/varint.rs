//! LEB128 variable-length unsigned integers.
//!
//! Postings lists store document-id *deltas*, which are small for frequent
//! grams, so variable-length coding is the difference between ~4 bytes and
//! ~1 byte per posting. The format is standard little-endian base-128:
//! seven payload bits per byte, high bit set on all but the last byte.

use crate::{Error, Result};

/// Maximum encoded length of a `u64` (⌈64/7⌉ bytes).
pub const MAX_LEN: usize = 10;

/// Appends the varint encoding of `value` to `out`, returning the number
/// of bytes written.
#[inline]
pub fn encode(mut value: u64, out: &mut Vec<u8>) -> usize {
    let mut n = 0;
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        n += 1;
        if value == 0 {
            out.push(byte);
            return n;
        }
        out.push(byte | 0x80);
    }
}

/// Decodes a varint from the front of `buf`, returning `(value,
/// bytes_consumed)`.
#[inline]
pub fn decode(buf: &[u8]) -> Result<(u64, usize)> {
    let mut value = 0u64;
    let mut shift = 0u32;
    for (i, &byte) in buf.iter().enumerate() {
        if i >= MAX_LEN {
            return Err(Error::Corrupt("varint longer than 10 bytes".into()));
        }
        let payload = u64::from(byte & 0x7f);
        value = value
            .checked_add(
                payload
                    .checked_shl(shift)
                    .filter(|&v| v >> shift == payload)
                    .ok_or_else(|| Error::Corrupt("varint overflows u64".into()))?,
            )
            .ok_or_else(|| Error::Corrupt("varint overflows u64".into()))?;
        if byte & 0x80 == 0 {
            return Ok((value, i + 1));
        }
        shift += 7;
    }
    Err(Error::Corrupt("truncated varint".into()))
}

/// The encoded length of `value` without encoding it.
#[inline]
pub fn encoded_len(value: u64) -> usize {
    if value == 0 {
        1
    } else {
        (64 - value.leading_zeros() as usize).div_ceil(7)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: u64) {
        let mut buf = Vec::new();
        let n = encode(v, &mut buf);
        assert_eq!(n, buf.len());
        assert_eq!(n, encoded_len(v), "encoded_len mismatch for {v}");
        let (got, used) = decode(&buf).unwrap();
        assert_eq!(got, v);
        assert_eq!(used, n);
    }

    #[test]
    fn small_values_one_byte() {
        for v in 0..128 {
            let mut buf = Vec::new();
            assert_eq!(encode(v, &mut buf), 1);
            roundtrip(v);
        }
    }

    #[test]
    fn boundary_values() {
        for v in [
            127,
            128,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            roundtrip(v);
        }
        assert_eq!(encoded_len(u64::MAX), MAX_LEN);
    }

    #[test]
    fn decode_consumes_prefix_only() {
        let mut buf = Vec::new();
        encode(300, &mut buf);
        let mark = buf.len();
        encode(7, &mut buf);
        let (v1, used) = decode(&buf).unwrap();
        assert_eq!(v1, 300);
        assert_eq!(used, mark);
        let (v2, _) = decode(&buf[used..]).unwrap();
        assert_eq!(v2, 7);
    }

    #[test]
    fn truncated_input_rejected() {
        let mut buf = Vec::new();
        encode(1_000_000, &mut buf);
        for cut in 0..buf.len() {
            assert!(decode(&buf[..cut]).is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn overlong_rejected() {
        // Eleven continuation bytes.
        let buf = [0x80u8; 11];
        assert!(decode(&buf).is_err());
        // 10-byte encoding whose top byte overflows u64.
        let mut buf = vec![0xffu8; 9];
        buf.push(0x7f);
        assert!(decode(&buf).is_err());
    }

    #[test]
    fn empty_input_rejected() {
        assert!(decode(&[]).is_err());
    }
}
