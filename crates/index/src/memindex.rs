//! A mutable in-memory inverted index.
//!
//! Used as the construction buffer for small/medium corpora and as the
//! in-memory half of the external [`crate::builder`]. Keys map to
//! [`PostingsBuilder`]s, which keep postings *encoded* even while mutable,
//! so memory stays close to the final index size (~1 byte per posting for
//! dense lists) instead of 4-8 bytes per posting.

use crate::postings::PostingsBuilder;
use crate::stats::IndexStats;
use crate::{DocId, IndexRead, Key, Result};
use rustc_hash::FxHashMap;

/// An in-memory inverted index from gram keys to postings.
#[derive(Clone, Debug, Default)]
pub struct MemIndex {
    map: FxHashMap<Key, PostingsBuilder>,
}

impl MemIndex {
    /// Creates an empty index.
    pub fn new() -> MemIndex {
        MemIndex::default()
    }

    /// Adds a posting. Ids must be non-decreasing per key (corpus scans
    /// deliver them in order); duplicate `(key, doc)` pairs coalesce.
    pub fn add(&mut self, key: &[u8], doc: DocId) {
        match self.map.get_mut(key) {
            Some(b) => b.push(doc),
            None => {
                let mut b = PostingsBuilder::new();
                b.push(doc);
                self.map.insert(key.into(), b);
            }
        }
    }

    /// Total number of postings across all keys.
    pub fn num_postings(&self) -> u64 {
        self.map.values().map(|b| b.len() as u64).sum()
    }

    /// Estimated heap bytes held by encoded postings.
    pub fn encoded_bytes(&self) -> u64 {
        self.map.values().map(|b| b.encoded_len() as u64).sum()
    }

    /// Drains into sorted `(key, postings)` pairs, consuming the index.
    pub fn into_sorted(self) -> Vec<(Key, crate::Postings)> {
        let mut out: Vec<(Key, crate::Postings)> =
            self.map.into_iter().map(|(k, b)| (k, b.finish())).collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

impl IndexRead for MemIndex {
    fn num_keys(&self) -> usize {
        self.map.len()
    }

    fn contains_key(&self, key: &[u8]) -> bool {
        self.map.contains_key(key)
    }

    fn doc_count(&self, key: &[u8]) -> Option<usize> {
        self.map.get(key).map(|b| b.len())
    }

    fn postings(&self, key: &[u8]) -> Result<Option<Vec<DocId>>> {
        match self.map.get(key) {
            None => Ok(None),
            // Clone-then-finish: postings stay encoded internally.
            Some(b) => Ok(Some(b.clone().finish().decode()?)),
        }
    }

    fn for_each_key(&self, f: &mut dyn FnMut(&[u8])) {
        let mut keys: Vec<&Key> = self.map.keys().collect();
        keys.sort();
        for k in keys {
            f(k);
        }
    }

    fn stats(&self) -> IndexStats {
        IndexStats {
            num_keys: self.map.len() as u64,
            num_postings: self.num_postings(),
            key_bytes: self.map.keys().map(|k| k.len() as u64).sum(),
            postings_bytes: self.encoded_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_read_back() {
        let mut idx = MemIndex::new();
        idx.add(b"abc", 0);
        idx.add(b"abc", 0); // duplicate coalesces
        idx.add(b"abc", 3);
        idx.add(b"xyz", 1);
        assert_eq!(idx.num_keys(), 2);
        assert_eq!(idx.num_postings(), 3);
        assert_eq!(idx.postings(b"abc").unwrap().unwrap(), vec![0, 3]);
        assert_eq!(idx.postings(b"xyz").unwrap().unwrap(), vec![1]);
        assert_eq!(idx.postings(b"nope").unwrap(), None);
        assert_eq!(idx.doc_count(b"abc"), Some(2));
        assert!(idx.contains_key(b"xyz"));
        assert!(!idx.contains_key(b"xy"));
    }

    #[test]
    fn keys_iterate_sorted() {
        let mut idx = MemIndex::new();
        for k in [&b"zz"[..], b"aa", b"mm"] {
            idx.add(k, 0);
        }
        let mut seen = Vec::new();
        idx.for_each_key(&mut |k| seen.push(k.to_vec()));
        assert_eq!(seen, vec![b"aa".to_vec(), b"mm".to_vec(), b"zz".to_vec()]);
    }

    #[test]
    fn into_sorted_order() {
        let mut idx = MemIndex::new();
        idx.add(b"beta", 2);
        idx.add(b"alpha", 1);
        let sorted = idx.into_sorted();
        assert_eq!(&*sorted[0].0, b"alpha");
        assert_eq!(&*sorted[1].0, b"beta");
        assert_eq!(sorted[1].1.decode().unwrap(), vec![2]);
    }

    #[test]
    fn stats() {
        let mut idx = MemIndex::new();
        idx.add(b"ab", 0);
        idx.add(b"ab", 5);
        idx.add(b"cde", 9);
        let s = idx.stats();
        assert_eq!(s.num_keys, 2);
        assert_eq!(s.num_postings, 3);
        assert_eq!(s.key_bytes, 5);
        assert!(s.postings_bytes >= 3);
    }

    #[test]
    fn binary_keys_allowed() {
        let mut idx = MemIndex::new();
        idx.add(&[0u8, 255, 7], 4);
        assert!(idx.contains_key(&[0u8, 255, 7]));
        assert_eq!(idx.postings(&[0u8, 255, 7]).unwrap().unwrap(), vec![4]);
    }
}
