//! Set operations over sorted document-id lists.
//!
//! Two tiers live here:
//!
//! * **Slice functions** (`intersect*`, `union*`) — eager reference
//!   implementations over fully materialized `&[DocId]`. Intersections
//!   use galloping (exponential) search when the list sizes are lopsided
//!   — the common case, since the planner intersects the rarest gram
//!   first.
//! * **Cursor combinators** ([`AndCursor`], [`OrCursor`]) — streaming
//!   equivalents over [`PostingsCursor`]s. `AndCursor` leapfrogs: the
//!   cheapest child proposes a candidate and every other child `seek`s to
//!   it, so common lists are only decoded near the rare list's docs.
//!   `OrCursor` is a k-way heap merge that deduplicates as it yields.
//!   The engine's streaming executor composes these into operator trees;
//!   the slice functions remain the ground truth the differential tests
//!   compare against.

use crate::cursor::{CursorStats, PostingsCursor};
use crate::{DocId, Result};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Intersects two sorted lists.
///
/// Chooses between a linear merge and galloping automatically: when one
/// list is much shorter, binary-searching the longer list beats merging.
pub fn intersect(a: &[DocId], b: &[DocId]) -> Vec<DocId> {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if short.is_empty() {
        return Vec::new();
    }
    // Galloping pays off when the size ratio is large; 16 is a common
    // threshold (cost: len(short) * log(len(long)) vs len(short)+len(long)).
    if long.len() / short.len().max(1) >= 16 {
        intersect_galloping(short, long)
    } else {
        intersect_merge(short, long)
    }
}

/// Plain two-pointer merge intersection.
pub fn intersect_merge(a: &[DocId], b: &[DocId]) -> Vec<DocId> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Galloping intersection: for each element of `short`, exponentially
/// probe forward in `long`.
pub fn intersect_galloping(short: &[DocId], long: &[DocId]) -> Vec<DocId> {
    let mut out = Vec::with_capacity(short.len());
    let mut base = 0usize;
    for &x in short {
        if base >= long.len() {
            break;
        }
        // Exponential probe for an upper bound on x's position.
        let mut bound = 1usize;
        while base + bound < long.len() && long[base + bound] < x {
            bound *= 2;
        }
        let end = (base + bound + 1).min(long.len());
        // First index in [base, end) whose value is >= x.
        let idx = base + long[base..end].partition_point(|&v| v < x);
        if idx < long.len() && long[idx] == x {
            out.push(x);
            base = idx + 1;
        } else {
            base = idx;
        }
    }
    out
}

/// Intersects many lists, smallest first (so intermediate results shrink
/// as fast as possible). An empty input slice yields an empty list.
pub fn intersect_many(lists: &[&[DocId]]) -> Vec<DocId> {
    match lists.len() {
        0 => Vec::new(),
        1 => lists[0].to_vec(),
        _ => {
            let mut order: Vec<&[DocId]> = lists.to_vec();
            order.sort_by_key(|l| l.len());
            let mut acc = intersect(order[0], order[1]);
            for l in &order[2..] {
                if acc.is_empty() {
                    break;
                }
                acc = intersect(&acc, l);
            }
            acc
        }
    }
}

/// Unions two sorted lists (deduplicating).
pub fn union(a: &[DocId], b: &[DocId]) -> Vec<DocId> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Unions many sorted lists with a k-way heap merge.
pub fn union_many(lists: &[&[DocId]]) -> Vec<DocId> {
    match lists.len() {
        0 => Vec::new(),
        1 => lists[0].to_vec(),
        2 => union(lists[0], lists[1]),
        _ => {
            let mut heap: BinaryHeap<Reverse<(DocId, usize, usize)>> = BinaryHeap::new();
            for (li, l) in lists.iter().enumerate() {
                if let Some(&first) = l.first() {
                    heap.push(Reverse((first, li, 0)));
                }
            }
            let mut out = Vec::new();
            while let Some(Reverse((v, li, pos))) = heap.pop() {
                if out.last() != Some(&v) {
                    out.push(v);
                }
                let next = pos + 1;
                if let Some(&nv) = lists[li].get(next) {
                    heap.push(Reverse((nv, li, next)));
                }
            }
            out
        }
    }
}

/// Streaming multiway intersection: yields exactly the docs present in
/// every child, in increasing order.
///
/// Children are sorted by [`PostingsCursor::cost_estimate`] at
/// construction so the cheapest (rarest) child drives the leapfrog. An
/// `AndCursor` over zero children is exhausted, matching
/// [`intersect_many`] on an empty slice.
pub struct AndCursor<C: PostingsCursor> {
    /// Children, cheapest first; `children[0]` is the driver.
    children: Vec<C>,
    current: Option<DocId>,
}

impl<C: PostingsCursor> AndCursor<C> {
    /// Builds a primed intersection cursor over `children`.
    pub fn new(mut children: Vec<C>) -> Result<AndCursor<C>> {
        children.sort_by_key(|c| c.cost_estimate());
        let mut cursor = AndCursor {
            children,
            current: None,
        };
        if !cursor.children.is_empty() {
            cursor.align()?;
        }
        Ok(cursor)
    }

    /// Leapfrog: raise the target to each child's landing position until
    /// every child agrees (or one exhausts).
    fn align(&mut self) -> Result<()> {
        self.current = None;
        let Some(mut target) = self.children[0].current() else {
            return Ok(());
        };
        loop {
            let mut all_match = true;
            for child in &mut self.children {
                match child.seek(target)? {
                    None => return Ok(()),
                    Some(d) if d > target => {
                        target = d;
                        all_match = false;
                        break;
                    }
                    Some(_) => {}
                }
            }
            if all_match {
                self.current = Some(target);
                return Ok(());
            }
        }
    }
}

impl<C: PostingsCursor> PostingsCursor for AndCursor<C> {
    fn current(&self) -> Option<DocId> {
        self.current
    }

    fn advance(&mut self) -> Result<Option<DocId>> {
        if self.current.is_none() {
            return Ok(None);
        }
        // All children sit on `current`; push the driver past it and
        // re-align the rest.
        self.children[0].advance()?;
        self.align()?;
        Ok(self.current)
    }

    fn seek(&mut self, target: DocId) -> Result<Option<DocId>> {
        match self.current {
            None => return Ok(None),
            Some(d) if d >= target => return Ok(self.current),
            Some(_) => {}
        }
        self.children[0].seek(target)?;
        self.align()?;
        Ok(self.current)
    }

    fn cost_estimate(&self) -> usize {
        // An intersection yields at most what its cheapest child can.
        self.children
            .iter()
            .map(|c| c.cost_estimate())
            .min()
            .unwrap_or(0)
    }

    fn collect_stats(&self, out: &mut CursorStats) {
        // Only leaf work is counted; the combinator itself does none.
        for child in &self.children {
            child.collect_stats(out);
        }
    }
}

/// Streaming multiway union: yields the deduplicated merge of all
/// children in increasing order via a k-way min-heap of child positions.
pub struct OrCursor<C: PostingsCursor> {
    children: Vec<C>,
    /// Min-heap of `(current doc, child index)` for non-exhausted children.
    heap: BinaryHeap<Reverse<(DocId, usize)>>,
}

impl<C: PostingsCursor> OrCursor<C> {
    /// Builds a primed union cursor over `children`.
    pub fn new(children: Vec<C>) -> Result<OrCursor<C>> {
        let mut heap = BinaryHeap::with_capacity(children.len());
        for (i, child) in children.iter().enumerate() {
            if let Some(d) = child.current() {
                heap.push(Reverse((d, i)));
            }
        }
        Ok(OrCursor { children, heap })
    }
}

impl<C: PostingsCursor> PostingsCursor for OrCursor<C> {
    fn current(&self) -> Option<DocId> {
        self.heap.peek().map(|Reverse((d, _))| *d)
    }

    fn advance(&mut self) -> Result<Option<DocId>> {
        let Some(cur) = self.current() else {
            return Ok(None);
        };
        // Pop every child sitting on `cur` (dedup), advance each, and
        // push back the ones that still have docs.
        while let Some(&Reverse((d, i))) = self.heap.peek() {
            if d != cur {
                break;
            }
            self.heap.pop();
            if let Some(next) = self.children[i].advance()? {
                self.heap.push(Reverse((next, i)));
            }
        }
        Ok(self.current())
    }

    fn seek(&mut self, target: DocId) -> Result<Option<DocId>> {
        while let Some(&Reverse((d, i))) = self.heap.peek() {
            if d >= target {
                break;
            }
            self.heap.pop();
            if let Some(landed) = self.children[i].seek(target)? {
                self.heap.push(Reverse((landed, i)));
            }
        }
        Ok(self.current())
    }

    fn cost_estimate(&self) -> usize {
        self.children
            .iter()
            .map(|c| c.cost_estimate())
            .fold(0usize, |acc, n| acc.saturating_add(n))
    }

    fn collect_stats(&self, out: &mut CursorStats) {
        for child in &self.children {
            child.collect_stats(out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intersect_basics() {
        assert_eq!(intersect(&[1, 3, 5], &[2, 3, 5, 7]), vec![3, 5]);
        assert_eq!(intersect(&[], &[1, 2]), Vec::<DocId>::new());
        assert_eq!(intersect(&[1, 2], &[]), Vec::<DocId>::new());
        assert_eq!(intersect(&[7], &[7]), vec![7]);
        assert_eq!(intersect(&[1, 2, 3], &[4, 5, 6]), Vec::<DocId>::new());
    }

    #[test]
    fn merge_and_gallop_agree() {
        let short: Vec<DocId> = vec![5, 100, 101, 5000, 99_999];
        let long: Vec<DocId> = (0..100_000).step_by(5).collect();
        assert_eq!(
            intersect_merge(&short, &long),
            intersect_galloping(&short, &long)
        );
        // Dispatcher picks galloping here (ratio 4000:1), same result.
        assert_eq!(intersect(&short, &long), intersect_merge(&short, &long));
    }

    #[test]
    fn galloping_handles_all_positions() {
        // Element before, inside, between, and after the long list.
        let long: Vec<DocId> = vec![10, 20, 30, 40];
        assert_eq!(intersect_galloping(&[5], &long), Vec::<DocId>::new());
        assert_eq!(intersect_galloping(&[10], &long), vec![10]);
        assert_eq!(intersect_galloping(&[25], &long), Vec::<DocId>::new());
        assert_eq!(intersect_galloping(&[40], &long), vec![40]);
        assert_eq!(intersect_galloping(&[45], &long), Vec::<DocId>::new());
        assert_eq!(intersect_galloping(&[10, 30, 40], &long), vec![10, 30, 40]);
    }

    #[test]
    fn intersect_many_orders_by_size() {
        let a: Vec<DocId> = (0..100).collect();
        let b: Vec<DocId> = (0..100).step_by(2).collect();
        let c: Vec<DocId> = vec![4, 8, 50, 51];
        assert_eq!(intersect_many(&[&a, &b, &c]), vec![4, 8, 50]);
        assert_eq!(intersect_many(&[]), Vec::<DocId>::new());
        assert_eq!(intersect_many(&[&c]), c);
    }

    #[test]
    fn union_basics() {
        assert_eq!(union(&[1, 3], &[2, 3, 4]), vec![1, 2, 3, 4]);
        assert_eq!(union(&[], &[]), Vec::<DocId>::new());
        assert_eq!(union(&[5], &[]), vec![5]);
    }

    #[test]
    fn union_many_dedups() {
        let lists: Vec<Vec<DocId>> = vec![vec![1, 4, 9], vec![2, 4, 8], vec![4, 9, 10]];
        let refs: Vec<&[DocId]> = lists.iter().map(|l| l.as_slice()).collect();
        assert_eq!(union_many(&refs), vec![1, 2, 4, 8, 9, 10]);
        assert_eq!(union_many(&[]), Vec::<DocId>::new());
    }

    #[test]
    fn randomized_against_hashset() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..200 {
            let mut a: Vec<DocId> = (0..rng.gen_range(0..80))
                .map(|_| rng.gen_range(0..200))
                .collect();
            let mut b: Vec<DocId> = (0..rng.gen_range(0..2000))
                .map(|_| rng.gen_range(0..4000))
                .collect();
            a.sort_unstable();
            a.dedup();
            b.sort_unstable();
            b.dedup();
            let sa: std::collections::HashSet<_> = a.iter().copied().collect();
            let sb: std::collections::HashSet<_> = b.iter().copied().collect();
            let mut want_i: Vec<DocId> = sa.intersection(&sb).copied().collect();
            want_i.sort_unstable();
            let mut want_u: Vec<DocId> = sa.union(&sb).copied().collect();
            want_u.sort_unstable();
            assert_eq!(intersect(&a, &b), want_i);
            assert_eq!(intersect_merge(&a, &b), want_i);
            assert_eq!(
                if a.len() <= b.len() {
                    intersect_galloping(&a, &b)
                } else {
                    intersect_galloping(&b, &a)
                },
                want_i
            );
            assert_eq!(union(&a, &b), want_u);
        }
    }

    use crate::blocked::BlockedPostings;
    use crate::cursor::{drain, SliceCursor};

    /// Mixed-representation children: odd lists blocked, even lists slices.
    fn mixed_cursors(lists: &[Vec<DocId>]) -> Vec<Box<dyn PostingsCursor>> {
        lists
            .iter()
            .enumerate()
            .map(|(i, l)| -> Box<dyn PostingsCursor> {
                if i % 2 == 1 {
                    Box::new(BlockedPostings::from_sorted(l).into_cursor().unwrap())
                } else {
                    Box::new(SliceCursor::new(l.clone()))
                }
            })
            .collect()
    }

    #[test]
    fn and_cursor_matches_intersect_many() {
        let lists: Vec<Vec<DocId>> = vec![
            (0..1000).collect(),
            (0..1000).step_by(3).collect(),
            vec![9, 30, 33, 900, 1500],
        ];
        let refs: Vec<&[DocId]> = lists.iter().map(|l| l.as_slice()).collect();
        let mut and = AndCursor::new(mixed_cursors(&lists)).unwrap();
        assert_eq!(drain(&mut and).unwrap(), intersect_many(&refs));
    }

    #[test]
    fn and_cursor_empty_cases() {
        // Zero children: exhausted, like intersect_many(&[]).
        let mut and = AndCursor::new(Vec::<SliceCursor>::new()).unwrap();
        assert_eq!(and.current(), None);
        assert_eq!(and.advance().unwrap(), None);
        assert_eq!(and.cost_estimate(), 0);
        // One empty child kills the whole intersection.
        let lists = vec![vec![1, 2, 3], vec![]];
        let and = AndCursor::new(mixed_cursors(&lists)).unwrap();
        assert_eq!(and.current(), None);
        // Disjoint children.
        let lists = vec![vec![1, 3, 5], vec![2, 4, 6]];
        let mut and = AndCursor::new(mixed_cursors(&lists)).unwrap();
        assert_eq!(drain(&mut and).unwrap(), Vec::<DocId>::new());
    }

    #[test]
    fn and_cursor_single_child_passes_through() {
        let lists = vec![vec![4, 8, 15]];
        let mut and = AndCursor::new(mixed_cursors(&lists)).unwrap();
        assert_eq!(and.seek(5).unwrap(), Some(8));
        assert_eq!(drain(&mut and).unwrap(), vec![8, 15]);
    }

    #[test]
    fn and_cursor_seek_and_estimate() {
        let lists: Vec<Vec<DocId>> = vec![(0..100).collect(), (0..100).step_by(5).collect()];
        let mut and = AndCursor::new(mixed_cursors(&lists)).unwrap();
        assert_eq!(and.cost_estimate(), 20, "min of child estimates");
        assert_eq!(and.seek(42).unwrap(), Some(45));
        assert_eq!(and.seek(12).unwrap(), Some(45), "backward seek no-op");
        assert_eq!(and.advance().unwrap(), Some(50));
        assert_eq!(and.seek(101).unwrap(), None);
        assert_eq!(and.advance().unwrap(), None);
    }

    #[test]
    fn and_cursor_skips_on_lopsided_lists() {
        // The acceptance-criteria shape: a long common list intersected
        // with a short rare one must skip (not decode) most of the long
        // list's blocks.
        let lists: Vec<Vec<DocId>> = vec![
            vec![100, 5_000, 9_999],         // slice (driver)
            (0..10_000).collect::<Vec<_>>(), // blocked
        ];
        let mut and = AndCursor::new(mixed_cursors(&lists)).unwrap();
        assert_eq!(drain(&mut and).unwrap(), vec![100, 5_000, 9_999]);
        let mut s = CursorStats::default();
        and.collect_stats(&mut s);
        assert!(s.postings_skipped > 9_000, "skipped {}", s.postings_skipped);
        let total_blocks = BlockedPostings::from_sorted(&lists[1]).num_blocks() as u64;
        assert!(
            s.blocks_decoded < total_blocks / 2,
            "decoded {} of {} blocks",
            s.blocks_decoded,
            total_blocks
        );
        assert!(s.seeks > 0);
    }

    #[test]
    fn or_cursor_matches_union_many() {
        let lists: Vec<Vec<DocId>> = vec![
            vec![1, 4, 9, 200],
            vec![2, 4, 8, 400],
            vec![4, 9, 10],
            vec![],
        ];
        let refs: Vec<&[DocId]> = lists.iter().map(|l| l.as_slice()).collect();
        let mut or = OrCursor::new(mixed_cursors(&lists)).unwrap();
        assert_eq!(or.cost_estimate(), 11, "sum of child estimates");
        assert_eq!(drain(&mut or).unwrap(), union_many(&refs));
    }

    #[test]
    fn or_cursor_seek_and_empty() {
        let mut or = OrCursor::new(Vec::<SliceCursor>::new()).unwrap();
        assert_eq!(or.current(), None);
        assert_eq!(or.advance().unwrap(), None);
        assert_eq!(or.seek(3).unwrap(), None);

        let lists = vec![vec![1, 10, 20], vec![5, 10, 30]];
        let mut or = OrCursor::new(mixed_cursors(&lists)).unwrap();
        assert_eq!(or.seek(6).unwrap(), Some(10));
        assert_eq!(or.advance().unwrap(), Some(20), "10 deduplicated");
        assert_eq!(or.seek(31).unwrap(), None);
    }

    #[test]
    fn nested_combinators_match_reference() {
        // (A ∪ B) ∩ C as cursors vs slices.
        let a: Vec<DocId> = (0..300).step_by(3).collect();
        let b: Vec<DocId> = (0..300).step_by(7).collect();
        let c: Vec<DocId> = (0..300).step_by(2).collect();
        let or: Box<dyn PostingsCursor> =
            Box::new(OrCursor::new(mixed_cursors(&[a.clone(), b.clone()])).unwrap());
        let leaf: Box<dyn PostingsCursor> =
            Box::new(BlockedPostings::from_sorted(&c).into_cursor().unwrap());
        let mut and = AndCursor::new(vec![or, leaf]).unwrap();
        let want = intersect(&union(&a, &b), &c);
        assert_eq!(drain(&mut and).unwrap(), want);
    }

    #[test]
    fn combinators_match_reference_randomized() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..60 {
            let k = rng.gen_range(1..5);
            let lists: Vec<Vec<DocId>> = (0..k)
                .map(|_| {
                    let mut l: Vec<DocId> = (0..rng.gen_range(0..600))
                        .map(|_| rng.gen_range(0..2_000))
                        .collect();
                    l.sort_unstable();
                    l.dedup();
                    l
                })
                .collect();
            let refs: Vec<&[DocId]> = lists.iter().map(|l| l.as_slice()).collect();
            let mut and = AndCursor::new(mixed_cursors(&lists)).unwrap();
            assert_eq!(drain(&mut and).unwrap(), intersect_many(&refs));
            let mut or = OrCursor::new(mixed_cursors(&lists)).unwrap();
            assert_eq!(drain(&mut or).unwrap(), union_many(&refs));
        }
    }
}
