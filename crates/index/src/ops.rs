//! Set operations over sorted document-id lists.
//!
//! The physical plan's AND/OR nodes evaluate to intersections and unions
//! of postings. Intersections use galloping (exponential) search when the
//! list sizes are lopsided — the common case, since the planner
//! intersects the rarest gram first.

use crate::DocId;

/// Intersects two sorted lists.
///
/// Chooses between a linear merge and galloping automatically: when one
/// list is much shorter, binary-searching the longer list beats merging.
pub fn intersect(a: &[DocId], b: &[DocId]) -> Vec<DocId> {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if short.is_empty() {
        return Vec::new();
    }
    // Galloping pays off when the size ratio is large; 16 is a common
    // threshold (cost: len(short) * log(len(long)) vs len(short)+len(long)).
    if long.len() / short.len().max(1) >= 16 {
        intersect_galloping(short, long)
    } else {
        intersect_merge(short, long)
    }
}

/// Plain two-pointer merge intersection.
pub fn intersect_merge(a: &[DocId], b: &[DocId]) -> Vec<DocId> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Galloping intersection: for each element of `short`, exponentially
/// probe forward in `long`.
pub fn intersect_galloping(short: &[DocId], long: &[DocId]) -> Vec<DocId> {
    let mut out = Vec::with_capacity(short.len());
    let mut base = 0usize;
    for &x in short {
        if base >= long.len() {
            break;
        }
        // Exponential probe for an upper bound on x's position.
        let mut bound = 1usize;
        while base + bound < long.len() && long[base + bound] < x {
            bound *= 2;
        }
        let end = (base + bound + 1).min(long.len());
        // First index in [base, end) whose value is >= x.
        let idx = base + long[base..end].partition_point(|&v| v < x);
        if idx < long.len() && long[idx] == x {
            out.push(x);
            base = idx + 1;
        } else {
            base = idx;
        }
    }
    out
}

/// Intersects many lists, smallest first (so intermediate results shrink
/// as fast as possible). An empty input slice yields an empty list.
pub fn intersect_many(lists: &[&[DocId]]) -> Vec<DocId> {
    match lists.len() {
        0 => Vec::new(),
        1 => lists[0].to_vec(),
        _ => {
            let mut order: Vec<&[DocId]> = lists.to_vec();
            order.sort_by_key(|l| l.len());
            let mut acc = intersect(order[0], order[1]);
            for l in &order[2..] {
                if acc.is_empty() {
                    break;
                }
                acc = intersect(&acc, l);
            }
            acc
        }
    }
}

/// Unions two sorted lists (deduplicating).
pub fn union(a: &[DocId], b: &[DocId]) -> Vec<DocId> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Unions many sorted lists with a k-way heap merge.
pub fn union_many(lists: &[&[DocId]]) -> Vec<DocId> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    match lists.len() {
        0 => Vec::new(),
        1 => lists[0].to_vec(),
        2 => union(lists[0], lists[1]),
        _ => {
            let mut heap: BinaryHeap<Reverse<(DocId, usize, usize)>> = BinaryHeap::new();
            for (li, l) in lists.iter().enumerate() {
                if let Some(&first) = l.first() {
                    heap.push(Reverse((first, li, 0)));
                }
            }
            let mut out = Vec::new();
            while let Some(Reverse((v, li, pos))) = heap.pop() {
                if out.last() != Some(&v) {
                    out.push(v);
                }
                let next = pos + 1;
                if let Some(&nv) = lists[li].get(next) {
                    heap.push(Reverse((nv, li, next)));
                }
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intersect_basics() {
        assert_eq!(intersect(&[1, 3, 5], &[2, 3, 5, 7]), vec![3, 5]);
        assert_eq!(intersect(&[], &[1, 2]), Vec::<DocId>::new());
        assert_eq!(intersect(&[1, 2], &[]), Vec::<DocId>::new());
        assert_eq!(intersect(&[7], &[7]), vec![7]);
        assert_eq!(intersect(&[1, 2, 3], &[4, 5, 6]), Vec::<DocId>::new());
    }

    #[test]
    fn merge_and_gallop_agree() {
        let short: Vec<DocId> = vec![5, 100, 101, 5000, 99_999];
        let long: Vec<DocId> = (0..100_000).step_by(5).collect();
        assert_eq!(
            intersect_merge(&short, &long),
            intersect_galloping(&short, &long)
        );
        // Dispatcher picks galloping here (ratio 4000:1), same result.
        assert_eq!(intersect(&short, &long), intersect_merge(&short, &long));
    }

    #[test]
    fn galloping_handles_all_positions() {
        // Element before, inside, between, and after the long list.
        let long: Vec<DocId> = vec![10, 20, 30, 40];
        assert_eq!(intersect_galloping(&[5], &long), Vec::<DocId>::new());
        assert_eq!(intersect_galloping(&[10], &long), vec![10]);
        assert_eq!(intersect_galloping(&[25], &long), Vec::<DocId>::new());
        assert_eq!(intersect_galloping(&[40], &long), vec![40]);
        assert_eq!(intersect_galloping(&[45], &long), Vec::<DocId>::new());
        assert_eq!(intersect_galloping(&[10, 30, 40], &long), vec![10, 30, 40]);
    }

    #[test]
    fn intersect_many_orders_by_size() {
        let a: Vec<DocId> = (0..100).collect();
        let b: Vec<DocId> = (0..100).step_by(2).collect();
        let c: Vec<DocId> = vec![4, 8, 50, 51];
        assert_eq!(intersect_many(&[&a, &b, &c]), vec![4, 8, 50]);
        assert_eq!(intersect_many(&[]), Vec::<DocId>::new());
        assert_eq!(intersect_many(&[&c]), c);
    }

    #[test]
    fn union_basics() {
        assert_eq!(union(&[1, 3], &[2, 3, 4]), vec![1, 2, 3, 4]);
        assert_eq!(union(&[], &[]), Vec::<DocId>::new());
        assert_eq!(union(&[5], &[]), vec![5]);
    }

    #[test]
    fn union_many_dedups() {
        let lists: Vec<Vec<DocId>> = vec![vec![1, 4, 9], vec![2, 4, 8], vec![4, 9, 10]];
        let refs: Vec<&[DocId]> = lists.iter().map(|l| l.as_slice()).collect();
        assert_eq!(union_many(&refs), vec![1, 2, 4, 8, 9, 10]);
        assert_eq!(union_many(&[]), Vec::<DocId>::new());
    }

    #[test]
    fn randomized_against_hashset() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..200 {
            let mut a: Vec<DocId> = (0..rng.gen_range(0..80))
                .map(|_| rng.gen_range(0..200))
                .collect();
            let mut b: Vec<DocId> = (0..rng.gen_range(0..2000))
                .map(|_| rng.gen_range(0..4000))
                .collect();
            a.sort_unstable();
            a.dedup();
            b.sort_unstable();
            b.dedup();
            let sa: std::collections::HashSet<_> = a.iter().copied().collect();
            let sb: std::collections::HashSet<_> = b.iter().copied().collect();
            let mut want_i: Vec<DocId> = sa.intersection(&sb).copied().collect();
            want_i.sort_unstable();
            let mut want_u: Vec<DocId> = sa.union(&sb).copied().collect();
            want_u.sort_unstable();
            assert_eq!(intersect(&a, &b), want_i);
            assert_eq!(intersect_merge(&a, &b), want_i);
            assert_eq!(
                if a.len() <= b.len() {
                    intersect_galloping(&a, &b)
                } else {
                    intersect_galloping(&b, &a)
                },
                want_i
            );
            assert_eq!(union(&a, &b), want_u);
        }
    }
}
