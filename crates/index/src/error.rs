//! Error type for index storage.

use core::fmt;

/// Convenience alias.
pub type Result<T> = core::result::Result<T, Error>;

/// An error reading from or writing to an index.
#[derive(Debug)]
pub enum Error {
    /// An underlying I/O error, annotated with the operation.
    Io {
        /// What the index was doing.
        context: String,
        /// The OS-level error.
        source: std::io::Error,
    },
    /// Malformed on-disk data (bad magic, truncated varint, …).
    Corrupt(String),
}

impl Error {
    pub(crate) fn io(context: impl Into<String>, source: std::io::Error) -> Error {
        Error::Io {
            context: context.into(),
            source,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io { context, source } => write!(f, "index I/O error ({context}): {source}"),
            Error::Corrupt(msg) => write!(f, "corrupt index: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io { source, .. } => Some(source),
            Error::Corrupt(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = Error::io("read postings", std::io::Error::other("boom"));
        assert!(e.to_string().contains("read postings"));
        let e = Error::Corrupt("truncated varint".into());
        assert!(e.to_string().contains("truncated varint"));
    }
}
