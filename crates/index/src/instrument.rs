//! Per-operator cursor instrumentation for `EXPLAIN ANALYZE`.
//!
//! [`InstrumentedCursor`] wraps any [`PostingsCursor`] and records, into a
//! shared [`OpCounters`] handle, how the executor actually drove that node:
//! seeks issued, advances (`nexts`), distinct docs yielded, and wall time
//! spent inside the node's `advance`/`seek` calls. The engine wraps every
//! node of a compiled plan, keeps the `Arc<OpCounters>` handles arranged in
//! plan shape, and reads them back after execution to render estimated vs.
//! actual cardinalities per operator.
//!
//! Two properties matter for reconciliation with the engine's aggregate
//! `QueryStats`:
//!
//! * [`PostingsCursor::collect_stats`] is **transparent** — it delegates to
//!   the wrapped child, so wrapping a plan changes none of the totals the
//!   engine reports.
//! * The wrapper captures the child's subtree [`CursorStats`] into the
//!   counters when dropped (the streaming executor drops the cursor tree
//!   once drained), so per-node index-work counters survive the cursor
//!   itself and per-node exclusive work can be computed by subtracting
//!   children from parents.
//!
//! Timings are inclusive: a parent AND node's `time_ns` includes the time
//! its children spent serving the seeks it issued.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::cursor::{CursorStats, PostingsCursor};
use crate::{DocId, Result};

/// Shared, thread-safe counters for one operator (plan node).
///
/// The executor side updates via an `Arc` held by the wrapping
/// [`InstrumentedCursor`]; the reporting side reads after execution.
#[derive(Debug, Default)]
pub struct OpCounters {
    /// `seek` calls served by this node.
    pub seeks: AtomicU64,
    /// `advance` calls served by this node.
    pub nexts: AtomicU64,
    /// Distinct doc ids this node was observed to yield.
    pub docs_yielded: AtomicU64,
    /// Wall-clock nanoseconds spent inside this node's `advance`/`seek`
    /// (inclusive of children).
    pub time_ns: AtomicU64,
    /// The node's subtree [`CursorStats`], captured when the wrapping
    /// cursor is dropped.
    final_stats: Mutex<Option<CursorStats>>,
}

impl OpCounters {
    /// Fresh zeroed counters.
    pub fn new() -> OpCounters {
        OpCounters::default()
    }

    /// The subtree's index-work counters, captured at cursor drop; `None`
    /// if the cursor is still alive.
    pub fn final_stats(&self) -> Option<CursorStats> {
        // A poisoned slot only means a panicking thread dropped its
        // cursor mid-write of this Copy value; the stats stay readable.
        *self
            .final_stats
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// A [`PostingsCursor`] wrapper that records per-operator activity into an
/// [`OpCounters`] shared with the reporting side.
pub struct InstrumentedCursor<C: PostingsCursor> {
    child: C,
    counters: std::sync::Arc<OpCounters>,
    last_yielded: Option<DocId>,
}

impl<C: PostingsCursor> InstrumentedCursor<C> {
    /// Wraps `child`, recording into `counters`. The child must be primed;
    /// its initial position counts as the first yielded doc.
    pub fn new(child: C, counters: std::sync::Arc<OpCounters>) -> InstrumentedCursor<C> {
        let mut cursor = InstrumentedCursor {
            child,
            counters,
            last_yielded: None,
        };
        cursor.note_position();
        cursor
    }

    /// Counts the current position as yielded, once per distinct doc.
    fn note_position(&mut self) {
        if let Some(doc) = self.child.current() {
            if self.last_yielded != Some(doc) {
                self.last_yielded = Some(doc);
                self.counters.docs_yielded.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

impl<C: PostingsCursor> PostingsCursor for InstrumentedCursor<C> {
    fn current(&self) -> Option<DocId> {
        self.child.current()
    }

    fn advance(&mut self) -> Result<Option<DocId>> {
        let start = Instant::now();
        let result = self.child.advance();
        self.counters
            .time_ns
            .fetch_add(elapsed_ns(start), Ordering::Relaxed);
        self.counters.nexts.fetch_add(1, Ordering::Relaxed);
        self.note_position();
        result
    }

    fn seek(&mut self, target: DocId) -> Result<Option<DocId>> {
        let start = Instant::now();
        let result = self.child.seek(target);
        self.counters
            .time_ns
            .fetch_add(elapsed_ns(start), Ordering::Relaxed);
        self.counters.seeks.fetch_add(1, Ordering::Relaxed);
        self.note_position();
        result
    }

    fn cost_estimate(&self) -> usize {
        self.child.cost_estimate()
    }

    fn collect_stats(&self, out: &mut CursorStats) {
        // Transparent: instrumenting a plan must not change the engine's
        // aggregate totals.
        self.child.collect_stats(out);
    }
}

impl<C: PostingsCursor> Drop for InstrumentedCursor<C> {
    fn drop(&mut self) {
        let mut stats = CursorStats::default();
        self.child.collect_stats(&mut stats);
        if let Ok(mut slot) = self.counters.final_stats.lock() {
            *slot = Some(stats);
        }
    }
}

fn elapsed_ns(start: Instant) -> u64 {
    start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use crate::cursor::SliceCursor;
    use crate::ops::AndCursor;

    #[test]
    fn counts_seeks_nexts_and_yields() {
        let counters = Arc::new(OpCounters::new());
        let mut c =
            InstrumentedCursor::new(SliceCursor::new(vec![2, 5, 8, 11]), Arc::clone(&counters));
        assert_eq!(c.current(), Some(2));
        c.advance().unwrap();
        c.seek(9).unwrap();
        c.advance().unwrap();
        c.advance().unwrap();
        assert_eq!(counters.nexts.load(Ordering::Relaxed), 3);
        assert_eq!(counters.seeks.load(Ordering::Relaxed), 1);
        // 2 (initial), 5, 11, then exhausted: 8 was skipped by the seek.
        assert_eq!(counters.docs_yielded.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn repeated_position_counts_once() {
        let counters = Arc::new(OpCounters::new());
        let mut c = InstrumentedCursor::new(SliceCursor::new(vec![4, 9]), Arc::clone(&counters));
        // Backwards/no-op seeks keep the cursor on 4.
        c.seek(1).unwrap();
        c.seek(4).unwrap();
        assert_eq!(counters.docs_yielded.load(Ordering::Relaxed), 1);
        assert_eq!(counters.seeks.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn collect_stats_is_transparent() {
        let counters = Arc::new(OpCounters::new());
        let mut plain = SliceCursor::new((0..50).collect());
        let mut wrapped =
            InstrumentedCursor::new(SliceCursor::new((0..50).collect()), Arc::clone(&counters));
        plain.seek(30).unwrap();
        wrapped.seek(30).unwrap();
        let (mut a, mut b) = (CursorStats::default(), CursorStats::default());
        plain.collect_stats(&mut a);
        wrapped.collect_stats(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn drop_captures_subtree_stats() {
        let counters = Arc::new(OpCounters::new());
        assert_eq!(counters.final_stats(), None);
        {
            let mut c =
                InstrumentedCursor::new(SliceCursor::new((0..20).collect()), Arc::clone(&counters));
            c.seek(10).unwrap();
        }
        let stats = counters.final_stats().expect("captured at drop");
        assert_eq!(stats.seeks, 1);
        assert_eq!(stats.postings_decoded, 20);
        assert_eq!(stats.postings_skipped, 10);
    }

    #[test]
    fn nests_around_combinators() {
        let and_counters = Arc::new(OpCounters::new());
        let left = Arc::new(OpCounters::new());
        let right = Arc::new(OpCounters::new());
        {
            let children: Vec<Box<dyn PostingsCursor>> = vec![
                Box::new(InstrumentedCursor::new(
                    SliceCursor::new(vec![1, 3, 5, 7]),
                    Arc::clone(&left),
                )),
                Box::new(InstrumentedCursor::new(
                    SliceCursor::new(vec![3, 4, 7]),
                    Arc::clone(&right),
                )),
            ];
            let and = AndCursor::new(children).unwrap();
            let mut root = InstrumentedCursor::new(and, Arc::clone(&and_counters));
            let docs = crate::cursor::drain(&mut root).unwrap();
            assert_eq!(docs, vec![3, 7]);
        }
        assert_eq!(and_counters.docs_yielded.load(Ordering::Relaxed), 2);
        // Root subtree stats include both children's work.
        let subtree = and_counters.final_stats().unwrap();
        let l = left.final_stats().unwrap();
        let r = right.final_stats().unwrap();
        let mut merged = CursorStats::default();
        merged.merge(&l);
        merged.merge(&r);
        assert_eq!(subtree, merged, "AND adds no leaf work of its own");
        assert_eq!(subtree.postings_decoded, 7);
    }
}
