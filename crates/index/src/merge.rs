//! K-way merge of immutable index segments with doc-id remapping.
//!
//! Compaction in the live index rewrites several sealed segments (each a
//! self-contained index over its own local doc-id space) into one. The
//! merge is directory-driven: the output key set is the union of the
//! input key sets, walked in lexicographic order so the output directory
//! is built sorted without ever holding more than one key's postings in
//! memory.
//!
//! Remapping and tombstone elimination happen through per-input remap
//! tables: `remap[old_local_id]` is the surviving doc's id in the merged
//! space, or `None` for a tombstoned doc. Remap tables must be monotone
//! over surviving ids (old order preserved), which keeps every remapped
//! postings list sorted without re-sorting.
//!
//! A key present in one input but absent from another is *not* evidence
//! that the other input's docs lack the gram — each segment mines its own
//! key set. The caller supplies those completion postings through the
//! `extra` callback (typically from a targeted corpus scan); the merge
//! itself stays a pure postings transform.

use crate::format::{IndexReader, IndexWriter};
use crate::{DocId, IndexRead, Key, Postings, Result};

/// One segment being merged: its index plus the doc-id remap table.
pub struct MergeInput<'a> {
    /// The segment's index.
    pub index: &'a dyn IndexRead,
    /// `remap[old_local_id]` → merged doc id, `None` if tombstoned.
    pub remap: &'a [Option<DocId>],
}

/// Sorted, deduplicated union of the inputs' key directories.
pub fn union_keys(inputs: &[MergeInput<'_>]) -> Vec<Key> {
    let mut keys: Vec<Key> = Vec::new();
    for input in inputs {
        input.index.for_each_key(&mut |k| keys.push(k.into()));
    }
    keys.sort_unstable();
    keys.dedup();
    keys
}

/// Completion-postings callback: `(key, input_idx)` → already-remapped,
/// sorted postings for an input whose directory lacks the key (`None`
/// means no docs in that input contain the key).
pub type CompletionFn<'a> = dyn FnMut(&[u8], usize) -> Option<Vec<DocId>> + 'a;

/// Merges `inputs` into `writer`, returning the opened reader.
///
/// For every key in the union directory, the output postings are the
/// remapped postings of each input holding the key, completed by
/// `extra(key, input_idx)` for inputs that do not hold it (`None` means
/// "no docs in that input contain the key"). Keys whose merged postings
/// come out empty (all docs tombstoned) are dropped from the output.
pub fn merge_indexes(
    inputs: &[MergeInput<'_>],
    extra: &mut CompletionFn<'_>,
    mut writer: IndexWriter,
) -> Result<IndexReader> {
    let keys = union_keys(inputs);
    let mut merged: Vec<DocId> = Vec::new();
    for key in &keys {
        merged.clear();
        for (i, input) in inputs.iter().enumerate() {
            if let Some(postings) = input.index.postings(key)? {
                merged.extend(postings.iter().filter_map(|&old| input.remap[old as usize]));
            } else if let Some(extra_postings) = extra(key, i) {
                debug_assert!(
                    extra_postings.windows(2).all(|w| w[0] < w[1]),
                    "completion postings must be sorted and deduplicated"
                );
                merged.extend(extra_postings);
            }
        }
        if merged.is_empty() {
            continue;
        }
        // Inputs cover disjoint remapped ranges only when segments are
        // seq-ordered; merge without assuming that.
        merged.sort_unstable();
        merged.dedup();
        writer.add(key, &Postings::from_sorted(&merged))?;
    }
    writer.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemIndex;
    use std::path::PathBuf;

    fn tmpfile(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "free-index-merge-{name}-{}.idx",
            std::process::id()
        ))
    }

    fn mem(entries: &[(&[u8], &[DocId])]) -> MemIndex {
        let mut m = MemIndex::new();
        for (k, docs) in entries {
            for &d in *docs {
                m.add(k, d);
            }
        }
        m
    }

    #[test]
    fn merges_disjoint_segments() {
        let a = mem(&[(b"ab", &[0, 1]), (b"cd", &[1])]);
        let b = mem(&[(b"ab", &[0]), (b"ef", &[0, 1])]);
        // a: both docs survive as merged 0,1; b: doc0 tombstoned, doc1 → 2.
        let remap_a = vec![Some(0), Some(1)];
        let remap_b = vec![None, Some(2)];
        let inputs = [
            MergeInput {
                index: &a,
                remap: &remap_a,
            },
            MergeInput {
                index: &b,
                remap: &remap_b,
            },
        ];
        let path = tmpfile("disjoint");
        let reader = merge_indexes(
            &inputs,
            &mut |_key, _i| None,
            IndexWriter::create(&path).unwrap(),
        )
        .unwrap();
        assert_eq!(reader.postings(b"ab").unwrap().unwrap(), vec![0, 1]);
        assert_eq!(reader.postings(b"cd").unwrap().unwrap(), vec![1]);
        assert_eq!(reader.postings(b"ef").unwrap().unwrap(), vec![2]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn completion_postings_fill_missing_keys() {
        let a = mem(&[(b"xy", &[0])]);
        let b = mem(&[(b"zz", &[0])]);
        let remap_a = vec![Some(0)];
        let remap_b = vec![Some(1)];
        let inputs = [
            MergeInput {
                index: &a,
                remap: &remap_a,
            },
            MergeInput {
                index: &b,
                remap: &remap_b,
            },
        ];
        let path = tmpfile("completion");
        // Pretend b's doc also contains "xy" (its miner just never kept it).
        let reader = merge_indexes(
            &inputs,
            &mut |key, i| {
                if key == b"xy" && i == 1 {
                    Some(vec![1])
                } else {
                    None
                }
            },
            IndexWriter::create(&path).unwrap(),
        )
        .unwrap();
        assert_eq!(reader.postings(b"xy").unwrap().unwrap(), vec![0, 1]);
        assert_eq!(reader.postings(b"zz").unwrap().unwrap(), vec![1]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fully_tombstoned_keys_are_dropped() {
        let a = mem(&[(b"ab", &[0]), (b"cd", &[0, 1])]);
        let remap = vec![None, Some(0)];
        let inputs = [MergeInput {
            index: &a,
            remap: &remap,
        }];
        let path = tmpfile("dropped");
        let reader = merge_indexes(
            &inputs,
            &mut |_k, _i| None,
            IndexWriter::create(&path).unwrap(),
        )
        .unwrap();
        assert!(!reader.contains_key(b"ab"));
        assert_eq!(reader.postings(b"cd").unwrap().unwrap(), vec![0]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_merge_produces_empty_index() {
        let a = mem(&[(b"ab", &[0])]);
        let remap = vec![None];
        let inputs = [MergeInput {
            index: &a,
            remap: &remap,
        }];
        let path = tmpfile("empty");
        let reader = merge_indexes(
            &inputs,
            &mut |_k, _i| None,
            IndexWriter::create(&path).unwrap(),
        )
        .unwrap();
        assert_eq!(reader.num_keys(), 0);
        std::fs::remove_file(&path).unwrap();
    }
}
