//! Inverted-index substrate for the FREE regular expression indexing
//! engine.
//!
//! The multigram index of the paper (Figure 2) is structurally a classic
//! inverted index: a *directory* of keys — here, byte multigrams — each
//! pointing at a *postings list* of the data units containing that key.
//! This crate provides that machinery, independent of how keys are chosen
//! (key selection is the `free-engine` crate's job):
//!
//! * [`varint`] — LEB128 variable-length integers; postings are stored
//!   delta-encoded so dense lists cost ~1 byte per posting.
//! * [`postings`] — building, encoding and decoding sorted document-id
//!   lists.
//! * [`ops`] — set operations over postings (intersection incl. galloping,
//!   union, k-way variants) used by the query planner's AND/OR nodes.
//! * [`MemIndex`] — a mutable in-memory index used during construction.
//! * [`mod@format`] — the immutable on-disk format ([`IndexWriter`] /
//!   [`IndexReader`]): header, key directory (loaded into memory whole —
//!   the paper stresses the multigram directory is small enough to cache),
//!   and a postings section read on demand.
//! * [`builder`] — an external-memory build path that spills sorted runs
//!   of `(gram, doc)` pairs to disk and merges them, mirroring the paper's
//!   "generate postings, sort, construct" final pass.

#![forbid(unsafe_code)]

pub mod blocked;
pub mod builder;
pub mod cursor;
pub mod error;
pub mod format;
pub mod instrument;
pub mod memindex;
pub mod merge;
pub mod ops;
pub mod postings;
pub mod stats;
pub mod varint;

pub use blocked::{BlockedCursor, BlockedPostings};
pub use builder::IndexBuilder;
pub use cursor::{CursorStats, PostingsCursor, SliceCursor};
pub use error::{Error, Result};
pub use format::{IndexReader, IndexWriter, VerifyIssue, VerifyIssueKind};
pub use instrument::{InstrumentedCursor, OpCounters};
pub use memindex::MemIndex;
pub use merge::{merge_indexes, union_keys, MergeInput};
pub use ops::{AndCursor, OrCursor};
pub use postings::{Postings, PostingsBuilder};
pub use stats::IndexStats;

/// Document identifier (matches `free-corpus`'s `DocId`).
pub type DocId = u32;

/// A gram key: an arbitrary byte string.
pub type Key = Box<[u8]>;

/// Read access to an index: key lookup plus directory enumeration.
///
/// Both [`MemIndex`] and [`IndexReader`] implement this, so the engine's
/// planner and executor are storage-agnostic.
pub trait IndexRead {
    /// Number of keys in the directory.
    fn num_keys(&self) -> usize;

    /// Whether `key` is present.
    fn contains_key(&self, key: &[u8]) -> bool;

    /// Number of documents in `key`'s postings list, if present. This is
    /// the planner's selectivity estimate and must not require decoding
    /// the postings.
    fn doc_count(&self, key: &[u8]) -> Option<usize>;

    /// Decodes the postings for `key` into sorted doc ids.
    fn postings(&self, key: &[u8]) -> Result<Option<Vec<DocId>>>;

    /// Visits every key in lexicographic order.
    fn for_each_key(&self, f: &mut dyn FnMut(&[u8]));

    /// Index size statistics.
    fn stats(&self) -> IndexStats;

    /// Opens a primed streaming cursor over `key`'s postings, or `None`
    /// if the key is absent.
    ///
    /// The default implementation decodes the whole list into a
    /// [`SliceCursor`]; storage formats with skip structure (the blocked
    /// on-disk format) override this to seek without full decoding.
    fn cursor(&self, key: &[u8]) -> Result<Option<Box<dyn PostingsCursor>>> {
        Ok(self
            .postings(key)?
            .map(|docs| Box::new(SliceCursor::new(docs)) as Box<dyn PostingsCursor>))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trait_object_usable() {
        let mut idx = MemIndex::new();
        idx.add(b"gram", 1);
        let r: &dyn IndexRead = &idx;
        assert_eq!(r.num_keys(), 1);
        assert!(r.contains_key(b"gram"));
        assert_eq!(r.doc_count(b"gram"), Some(1));
    }
}
