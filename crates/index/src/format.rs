//! The immutable on-disk index format.
//!
//! ```text
//! +--------------------------------------------------------------+
//! | magic "FREEIDX1" | version u32 | num_keys u64 | dir_bytes u64 |
//! +--------------------------------------------------------------+
//! | directory: for each key, in lexicographic order:             |
//! |   key_len varint | key bytes | doc_count varint              |
//! |   encoding u8 (v2+) | postings_len varint                    |
//! |   (offsets are implicit prefix sums)                         |
//! +--------------------------------------------------------------+
//! | postings section: concatenated encoded postings lists        |
//! +--------------------------------------------------------------+
//! ```
//!
//! The whole directory is loaded into memory on open. The paper's design
//! leans on exactly this property: the multigram directory is tiny (<1 %
//! of a complete n-gram index's keys), so key lookups never touch disk and
//! I/O is spent only on the postings actually needed by a query.
//!
//! Version 2 stores each list in one of two encodings, tagged per
//! directory entry: short lists stay plain delta-varint, while lists
//! longer than one block are stored as [`BlockedPostings`] (skip table +
//! independently decodable blocks), so [`IndexReader::cursor`] can `seek`
//! across them without decoding everything.
//!
//! Version 3 appends a 16-byte footer after the postings section:
//!
//! ```text
//! | footer magic "FREESUM1" | meta_crc u32 | postings_crc u32 |
//! ```
//!
//! `meta_crc` is the CRC32 of the header plus directory, verified on
//! every open (those bytes are read into memory anyway); `postings_crc`
//! covers the whole postings section and is verified offline by
//! [`IndexReader::verify`] (`free fsck`), so the open path stays O(dir).
//! Version 1 (all plain, no tags) and version 2 (no footer) files are
//! still readable; fsck reports them as an advisory, not an error.

use crate::blocked::{BlockedPostings, BLOCK_SIZE};
use crate::cursor::{PostingsCursor, SliceCursor};
use crate::postings::Postings;
use crate::stats::IndexStats;
use crate::{varint, DocId, Error, IndexRead, Key, Result};
use bytes::Bytes;
use free_checksum::Crc32;
use rustc_hash::FxHashMap;
use std::fs::File;
use std::io::{BufWriter, Read, Write};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 8] = b"FREEIDX1";
const VERSION: u32 = 3;

/// Magic introducing the version-3 checksum footer.
const FOOTER_MAGIC: &[u8; 8] = b"FREESUM1";
/// Total footer size: magic + meta CRC + postings CRC.
const FOOTER_LEN: u64 = 16;

/// Directory encoding tag: plain delta-varint postings.
const ENC_PLAIN: u8 = 0;
/// Directory encoding tag: serialized [`BlockedPostings`].
const ENC_BLOCKED: u8 = 1;

/// Streaming writer for the on-disk format. Keys must be appended in
/// strictly increasing lexicographic order.
pub struct IndexWriter {
    path: PathBuf,
    directory: Vec<u8>,
    postings: Vec<u8>,
    num_keys: u64,
    num_postings: u64,
    key_bytes: u64,
    last_key: Option<Key>,
    /// Spill the postings section to a temp file when it outgrows memory.
    spill: Option<BufWriter<File>>,
    spilled_bytes: u64,
    /// Running CRC over the postings section, fed in [`IndexWriter::add`]
    /// so it stays correct when postings spill to disk.
    postings_crc: Crc32,
}

/// Postings accumulate in memory up to this size before spilling to a
/// side file (1 GiB of postings would otherwise double peak memory).
const SPILL_THRESHOLD: usize = 64 << 20;

impl IndexWriter {
    /// Creates a writer targeting `path`.
    pub fn create(path: impl AsRef<Path>) -> Result<IndexWriter> {
        let path = path.as_ref().to_path_buf();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)
                    .map_err(|e| Error::io(format!("create dir {}", parent.display()), e))?;
            }
        }
        Ok(IndexWriter {
            path,
            directory: Vec::new(),
            postings: Vec::new(),
            num_keys: 0,
            num_postings: 0,
            key_bytes: 0,
            last_key: None,
            spill: None,
            spilled_bytes: 0,
            postings_crc: Crc32::new(),
        })
    }

    fn spill_path(&self) -> PathBuf {
        self.path.with_extension("postings.tmp")
    }

    /// Appends one key with its postings. Keys must arrive in strictly
    /// increasing order.
    pub fn add(&mut self, key: &[u8], postings: &Postings) -> Result<()> {
        if let Some(last) = &self.last_key {
            if key <= &last[..] {
                return Err(Error::Corrupt(format!(
                    "keys out of order: {:?} after {:?}",
                    String::from_utf8_lossy(key),
                    String::from_utf8_lossy(last)
                )));
            }
        }
        self.last_key = Some(key.into());
        varint::encode(key.len() as u64, &mut self.directory);
        self.directory.extend_from_slice(key);
        varint::encode(postings.len() as u64, &mut self.directory);
        if postings.len() > BLOCK_SIZE {
            // Long lists are stored blocked so readers can skip across
            // them; the skip-table overhead is ~2 % of the payload.
            self.directory.push(ENC_BLOCKED);
            let mut payload = Vec::with_capacity(postings.encoded().len() + 64);
            BlockedPostings::from_postings(postings)?.write_to(&mut payload);
            varint::encode(payload.len() as u64, &mut self.directory);
            self.postings_crc.update(&payload);
            self.postings.extend_from_slice(&payload);
        } else {
            self.directory.push(ENC_PLAIN);
            varint::encode(postings.encoded().len() as u64, &mut self.directory);
            self.postings_crc.update(postings.encoded());
            self.postings.extend_from_slice(postings.encoded());
        }
        self.num_keys += 1;
        self.num_postings += postings.len() as u64;
        self.key_bytes += key.len() as u64;
        if self.postings.len() >= SPILL_THRESHOLD {
            self.flush_spill()?;
        }
        Ok(())
    }

    // `expect`: the spill writer is created two lines above when absent.
    #[allow(clippy::expect_used)]
    fn flush_spill(&mut self) -> Result<()> {
        if self.spill.is_none() {
            let f = File::create(self.spill_path())
                .map_err(|e| Error::io("create postings spill file", e))?;
            self.spill = Some(BufWriter::new(f));
        }
        let w = self.spill.as_mut().expect("just created");
        w.write_all(&self.postings)
            .map_err(|e| Error::io("spill postings", e))?;
        self.spilled_bytes += self.postings.len() as u64;
        self.postings.clear();
        Ok(())
    }

    /// Finalizes the file and opens it for reading.
    // `expect`: the spill branch is only taken after `is_some()`.
    #[allow(clippy::expect_used)]
    pub fn finish(mut self) -> Result<IndexReader> {
        let f = File::create(&self.path)
            .map_err(|e| Error::io(format!("create {}", self.path.display()), e))?;
        let mut w = BufWriter::new(f);
        let mut header = Vec::with_capacity(28);
        header.extend_from_slice(MAGIC);
        header.extend_from_slice(&VERSION.to_le_bytes());
        header.extend_from_slice(&self.num_keys.to_le_bytes());
        header.extend_from_slice(&(self.directory.len() as u64).to_le_bytes());
        let mut meta_crc = Crc32::new();
        meta_crc.update(&header);
        meta_crc.update(&self.directory);
        w.write_all(&header)
            .map_err(|e| Error::io("write header", e))?;
        w.write_all(&self.directory)
            .map_err(|e| Error::io("write directory", e))?;
        if self.spill.is_some() {
            self.flush_spill()?;
            let mut spill = self.spill.take().expect("spill exists");
            spill.flush().map_err(|e| Error::io("flush spill", e))?;
            drop(spill);
            let mut src =
                File::open(self.spill_path()).map_err(|e| Error::io("reopen spill", e))?;
            std::io::copy(&mut src, &mut w).map_err(|e| Error::io("copy spill", e))?;
            std::fs::remove_file(self.spill_path()).map_err(|e| Error::io("remove spill", e))?;
        } else {
            w.write_all(&self.postings)
                .map_err(|e| Error::io("write postings", e))?;
        }
        w.write_all(FOOTER_MAGIC)
            .map_err(|e| Error::io("write footer magic", e))?;
        w.write_all(&meta_crc.finish().to_le_bytes())
            .map_err(|e| Error::io("write meta crc", e))?;
        w.write_all(&self.postings_crc.finish().to_le_bytes())
            .map_err(|e| Error::io("write postings crc", e))?;
        w.flush().map_err(|e| Error::io("flush index", e))?;
        IndexReader::open(&self.path)
    }
}

/// One directory entry.
#[derive(Clone, Copy, Debug)]
struct DirEntry {
    doc_count: u32,
    offset: u64,
    len: u32,
    /// Whether the payload is a serialized [`BlockedPostings`].
    blocked: bool,
}

/// A read-only on-disk index. The directory lives in memory; postings are
/// read on demand with positioned reads (thread-safe, no seek state).
pub struct IndexReader {
    file: File,
    postings_start: u64,
    entries: FxHashMap<Key, DirEntry>,
    sorted_keys: Vec<Key>,
    num_postings: u64,
    key_bytes: u64,
    postings_bytes: u64,
    /// Expected CRC of the postings section (`None` for pre-v3 files).
    /// Checked by [`IndexReader::verify`], not on the query path.
    postings_crc: Option<u32>,
}

/// What a [`VerifyIssue`] is about, so callers (fsck) can map each issue
/// onto a stable diagnostic code.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VerifyIssueKind {
    /// The postings section does not match its recorded CRC32.
    Checksum,
    /// An entry's payload failed to decode at all.
    Decode,
    /// Decoded doc ids are not strictly ascending.
    Order,
    /// A blocked list's skip table disagrees with its blocks.
    SkipTable,
    /// Decoded postings length differs from the directory's doc count.
    DocCount,
    /// A doc id is outside the corpus bound supplied by the caller.
    DocRange,
}

/// One integrity finding from [`IndexReader::verify`].
#[derive(Clone, Debug)]
pub struct VerifyIssue {
    /// Issue category (maps onto an FA4xx code in `free-analyze`).
    pub kind: VerifyIssueKind,
    /// The directory key the issue was found under, when entry-scoped.
    pub key: Option<Key>,
    /// Human-readable description of the inconsistency.
    pub detail: String,
}

impl IndexReader {
    /// Opens an index file, loading its directory.
    // `expect`: every `try_into` slices a fixed-size range of a
    // fixed-size buffer, so the conversion cannot fail.
    #[allow(clippy::expect_used)]
    pub fn open(path: impl AsRef<Path>) -> Result<IndexReader> {
        let path = path.as_ref();
        let mut file =
            File::open(path).map_err(|e| Error::io(format!("open {}", path.display()), e))?;
        let mut header = [0u8; 8 + 4 + 8 + 8];
        file.read_exact(&mut header)
            .map_err(|e| Error::io("read header", e))?;
        if &header[..8] != MAGIC {
            return Err(Error::Corrupt(format!("bad magic in {}", path.display())));
        }
        let version = u32::from_le_bytes(header[8..12].try_into().expect("fixed size"));
        // v1 (all lists plain) is still readable; v2 adds the per-entry
        // encoding tag.
        if version == 0 || version > VERSION {
            return Err(Error::Corrupt(format!(
                "unsupported index version {version}"
            )));
        }
        let num_keys = u64::from_le_bytes(header[12..20].try_into().expect("fixed size"));
        let dir_bytes = u64::from_le_bytes(header[20..28].try_into().expect("fixed size"));
        let mut dir = vec![0u8; dir_bytes as usize];
        file.read_exact(&mut dir)
            .map_err(|e| Error::io("read directory", e))?;
        let postings_start = header.len() as u64 + dir_bytes;

        let mut entries =
            FxHashMap::with_capacity_and_hasher(num_keys as usize, Default::default());
        let mut sorted_keys = Vec::with_capacity(num_keys as usize);
        let mut cursor = &dir[..];
        let mut offset = 0u64;
        let mut num_postings = 0u64;
        let mut key_bytes = 0u64;
        for i in 0..num_keys {
            let (key_len, used) = varint::decode(cursor)?;
            cursor = &cursor[used..];
            if cursor.len() < key_len as usize {
                return Err(Error::Corrupt(format!("truncated key {i}")));
            }
            let key: Key = cursor[..key_len as usize].into();
            cursor = &cursor[key_len as usize..];
            let (doc_count, used) = varint::decode(cursor)?;
            cursor = &cursor[used..];
            let blocked = if version >= 2 {
                let enc = *cursor
                    .first()
                    .ok_or_else(|| Error::Corrupt(format!("truncated encoding tag, key {i}")))?;
                cursor = &cursor[1..];
                match enc {
                    ENC_PLAIN => false,
                    ENC_BLOCKED => true,
                    other => {
                        return Err(Error::Corrupt(format!("unknown postings encoding {other}")))
                    }
                }
            } else {
                false
            };
            let (plen, used) = varint::decode(cursor)?;
            cursor = &cursor[used..];
            entries.insert(
                key.clone(),
                DirEntry {
                    doc_count: doc_count as u32,
                    offset,
                    len: plen as u32,
                    blocked,
                },
            );
            sorted_keys.push(key);
            offset += plen;
            num_postings += doc_count;
            key_bytes += key_len;
        }
        if !cursor.is_empty() {
            return Err(Error::Corrupt("trailing bytes in directory".into()));
        }
        let file_len = file
            .metadata()
            .map_err(|e| Error::io("stat index", e))?
            .len();
        let footer_len = if version >= 3 { FOOTER_LEN } else { 0 };
        if postings_start + offset + footer_len > file_len {
            return Err(Error::Corrupt(format!(
                "postings section truncated: need {} bytes, file has {}",
                postings_start + offset + footer_len,
                file_len
            )));
        }
        let postings_crc = if version >= 3 {
            let mut footer = [0u8; FOOTER_LEN as usize];
            file.read_exact_at(&mut footer, postings_start + offset)
                .map_err(|e| Error::io("read footer", e))?;
            if &footer[..8] != FOOTER_MAGIC {
                return Err(Error::Corrupt(format!(
                    "bad footer magic in {}",
                    path.display()
                )));
            }
            let meta_crc = u32::from_le_bytes(footer[8..12].try_into().expect("fixed size"));
            let mut crc = Crc32::new();
            crc.update(&header);
            crc.update(&dir);
            if crc.finish() != meta_crc {
                return Err(Error::Corrupt(format!(
                    "header/directory checksum mismatch in {}",
                    path.display()
                )));
            }
            Some(u32::from_le_bytes(
                footer[12..16].try_into().expect("fixed size"),
            ))
        } else {
            None
        };
        Ok(IndexReader {
            file,
            postings_start,
            entries,
            sorted_keys,
            num_postings,
            key_bytes,
            postings_bytes: offset,
            postings_crc,
        })
    }

    /// Whether this file carries version-3 checksums. Pre-v3 files open
    /// fine but [`IndexReader::verify`] can only run semantic checks on
    /// them; fsck reports that as an advisory.
    pub fn checksummed(&self) -> bool {
        self.postings_crc.is_some()
    }

    /// Exhaustively verifies the file: streams the postings section
    /// against its recorded CRC (v3+), then decodes every entry and
    /// checks doc-id monotonicity, skip-table consistency, and directory
    /// doc counts. When `doc_bound` is given, doc ids must be `< bound`.
    ///
    /// Returns structural findings rather than failing on the first one,
    /// so fsck can report everything wrong with a file in one pass. I/O
    /// errors still abort with `Err`.
    pub fn verify(&self, doc_bound: Option<DocId>) -> Result<Vec<VerifyIssue>> {
        let mut issues = Vec::new();
        if let Some(expected) = self.postings_crc {
            let mut crc = Crc32::new();
            let mut buf = vec![0u8; 1 << 20];
            let mut pos = self.postings_start;
            let mut remaining = self.postings_bytes;
            while remaining > 0 {
                let n = remaining.min(buf.len() as u64) as usize;
                self.file
                    .read_exact_at(&mut buf[..n], pos)
                    .map_err(|e| Error::io("read postings for verify", e))?;
                crc.update(&buf[..n]);
                pos += n as u64;
                remaining -= n as u64;
            }
            let actual = crc.finish();
            if actual != expected {
                issues.push(VerifyIssue {
                    kind: VerifyIssueKind::Checksum,
                    key: None,
                    detail: format!(
                        "postings section checksum mismatch: stored {expected:#010x}, computed {actual:#010x}"
                    ),
                });
            }
        }
        for key in &self.sorted_keys {
            let e = self.entries[key];
            let name = String::from_utf8_lossy(key).into_owned();
            let payload = self.read_payload(e)?;
            let decoded = if e.blocked {
                match BlockedPostings::read(&payload) {
                    Ok(b) => {
                        if let Err(err) = b.validate() {
                            issues.push(VerifyIssue {
                                kind: VerifyIssueKind::SkipTable,
                                key: Some(key.clone()),
                                detail: format!("blocked list for {name:?} invalid: {err}"),
                            });
                            continue;
                        }
                        match b.decode() {
                            Ok(d) => d,
                            Err(err) => {
                                issues.push(VerifyIssue {
                                    kind: VerifyIssueKind::Decode,
                                    key: Some(key.clone()),
                                    detail: format!("blocked list for {name:?} undecodable: {err}"),
                                });
                                continue;
                            }
                        }
                    }
                    Err(err) => {
                        issues.push(VerifyIssue {
                            kind: VerifyIssueKind::Decode,
                            key: Some(key.clone()),
                            detail: format!("blocked list for {name:?} unreadable: {err}"),
                        });
                        continue;
                    }
                }
            } else {
                match Postings::from_encoded(Bytes::from(payload), e.doc_count).decode() {
                    Ok(d) => d,
                    Err(err) => {
                        issues.push(VerifyIssue {
                            kind: VerifyIssueKind::Decode,
                            key: Some(key.clone()),
                            detail: format!("postings for {name:?} undecodable: {err}"),
                        });
                        continue;
                    }
                }
            };
            // Plain decode tolerates zero deltas after the first id, so
            // ascent must be re-checked on the decoded ids here.
            if let Some(w) = decoded.windows(2).find(|w| w[1] <= w[0]) {
                issues.push(VerifyIssue {
                    kind: VerifyIssueKind::Order,
                    key: Some(key.clone()),
                    detail: format!(
                        "doc ids for {name:?} not strictly ascending: {} then {}",
                        w[0], w[1]
                    ),
                });
            }
            if decoded.len() != e.doc_count as usize {
                issues.push(VerifyIssue {
                    kind: VerifyIssueKind::DocCount,
                    key: Some(key.clone()),
                    detail: format!(
                        "directory says {} docs for {name:?}, payload decodes to {}",
                        e.doc_count,
                        decoded.len()
                    ),
                });
            }
            if let Some(bound) = doc_bound {
                if let Some(&bad) = decoded.iter().find(|&&d| d >= bound) {
                    issues.push(VerifyIssue {
                        kind: VerifyIssueKind::DocRange,
                        key: Some(key.clone()),
                        detail: format!(
                            "doc id {bad} for {name:?} is outside the corpus (bound {bound})"
                        ),
                    });
                }
            }
        }
        Ok(issues)
    }

    /// Reads one entry's raw payload bytes from disk (positioned read, so
    /// concurrent callers never contend on seek state).
    fn read_payload(&self, e: DirEntry) -> Result<Vec<u8>> {
        let mut buf = vec![0u8; e.len as usize];
        self.file
            .read_exact_at(&mut buf, self.postings_start + e.offset)
            .map_err(|err| Error::io("read postings", err))?;
        Ok(buf)
    }

    /// Reads and fully decodes one entry's postings.
    fn decode_entry(&self, e: DirEntry) -> Result<Vec<DocId>> {
        let buf = self.read_payload(e)?;
        if e.blocked {
            BlockedPostings::read(&buf)?.decode()
        } else {
            Postings::from_encoded(Bytes::from(buf), e.doc_count).decode()
        }
    }

    /// The sorted key list (borrowed).
    pub fn keys(&self) -> &[Key] {
        &self.sorted_keys
    }
}

impl IndexRead for IndexReader {
    fn num_keys(&self) -> usize {
        self.entries.len()
    }

    fn contains_key(&self, key: &[u8]) -> bool {
        self.entries.contains_key(key)
    }

    fn doc_count(&self, key: &[u8]) -> Option<usize> {
        self.entries.get(key).map(|e| e.doc_count as usize)
    }

    fn postings(&self, key: &[u8]) -> Result<Option<Vec<DocId>>> {
        match self.entries.get(key) {
            None => Ok(None),
            Some(&e) => Ok(Some(self.decode_entry(e)?)),
        }
    }

    fn cursor(&self, key: &[u8]) -> Result<Option<Box<dyn PostingsCursor>>> {
        let Some(&e) = self.entries.get(key) else {
            return Ok(None);
        };
        let buf = self.read_payload(e)?;
        if e.blocked {
            // The cursor owns the raw blocked list and decodes blocks on
            // demand, driven by `seek`.
            Ok(Some(Box::new(BlockedPostings::read(&buf)?.into_cursor()?)))
        } else {
            let docs = Postings::from_encoded(Bytes::from(buf), e.doc_count).decode()?;
            Ok(Some(Box::new(SliceCursor::new(docs))))
        }
    }

    fn for_each_key(&self, f: &mut dyn FnMut(&[u8])) {
        for k in &self.sorted_keys {
            f(k);
        }
    }

    fn stats(&self) -> IndexStats {
        IndexStats {
            num_keys: self.entries.len() as u64,
            num_postings: self.num_postings,
            key_bytes: self.key_bytes,
            postings_bytes: self.postings_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpfile(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("free-index-{name}-{}.idx", std::process::id()))
    }

    #[test]
    fn roundtrip() {
        let path = tmpfile("roundtrip");
        let mut w = IndexWriter::create(&path).unwrap();
        w.add(b"alpha", &Postings::from_sorted(&[1, 5, 9])).unwrap();
        w.add(b"beta", &Postings::from_sorted(&[2])).unwrap();
        w.add(b"gamma", &Postings::from_sorted(&[0, 1, 2, 3]))
            .unwrap();
        let r = w.finish().unwrap();
        assert_eq!(r.num_keys(), 3);
        assert_eq!(r.postings(b"alpha").unwrap().unwrap(), vec![1, 5, 9]);
        assert_eq!(r.postings(b"beta").unwrap().unwrap(), vec![2]);
        assert_eq!(r.postings(b"gamma").unwrap().unwrap(), vec![0, 1, 2, 3]);
        assert_eq!(r.postings(b"delta").unwrap(), None);
        assert_eq!(r.doc_count(b"gamma"), Some(4));
        let s = r.stats();
        assert_eq!(s.num_keys, 3);
        assert_eq!(s.num_postings, 8);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn reopen_from_disk() {
        let path = tmpfile("reopen");
        let mut w = IndexWriter::create(&path).unwrap();
        w.add(b"key", &Postings::from_sorted(&[7, 8])).unwrap();
        drop(w.finish().unwrap());
        let r = IndexReader::open(&path).unwrap();
        assert_eq!(r.postings(b"key").unwrap().unwrap(), vec![7, 8]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rejects_out_of_order_keys() {
        let path = tmpfile("order");
        let mut w = IndexWriter::create(&path).unwrap();
        w.add(b"bb", &Postings::from_sorted(&[1])).unwrap();
        assert!(w.add(b"aa", &Postings::from_sorted(&[2])).is_err());
        assert!(w.add(b"bb", &Postings::from_sorted(&[2])).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_index() {
        let path = tmpfile("empty");
        let w = IndexWriter::create(&path).unwrap();
        let r = w.finish().unwrap();
        assert_eq!(r.num_keys(), 0);
        assert_eq!(r.postings(b"x").unwrap(), None);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn keys_enumerate_sorted() {
        let path = tmpfile("sorted");
        let mut w = IndexWriter::create(&path).unwrap();
        for k in [&b"a"[..], b"ab", b"b"] {
            w.add(k, &Postings::from_sorted(&[0])).unwrap();
        }
        let r = w.finish().unwrap();
        let mut seen = Vec::new();
        r.for_each_key(&mut |k| seen.push(k.to_vec()));
        assert_eq!(seen, vec![b"a".to_vec(), b"ab".to_vec(), b"b".to_vec()]);
        assert_eq!(r.keys().len(), 3);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_magic() {
        let path = tmpfile("magic");
        std::fs::write(&path, b"WRONGMAGICxxxxxxxxxxxxxxxxxxx").unwrap();
        assert!(matches!(IndexReader::open(&path), Err(Error::Corrupt(_))));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_truncated_postings() {
        let path = tmpfile("trunc");
        let mut w = IndexWriter::create(&path).unwrap();
        w.add(b"kk", &Postings::from_sorted(&[1, 2, 3, 4, 5, 6, 7, 8]))
            .unwrap();
        drop(w.finish().unwrap());
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 4]).unwrap();
        assert!(matches!(IndexReader::open(&path), Err(Error::Corrupt(_))));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn binary_keys() {
        let path = tmpfile("binkeys");
        let mut w = IndexWriter::create(&path).unwrap();
        w.add(&[0u8, 1, 2], &Postings::from_sorted(&[3])).unwrap();
        w.add(&[0u8, 1, 255], &Postings::from_sorted(&[4])).unwrap();
        let r = w.finish().unwrap();
        assert_eq!(r.postings(&[0u8, 1, 255]).unwrap().unwrap(), vec![4]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn long_lists_stored_blocked() {
        use crate::cursor::CursorStats;
        let path = tmpfile("blockedv2");
        let ids: Vec<DocId> = (0..5_000).map(|i| i * 2).collect();
        let mut w = IndexWriter::create(&path).unwrap();
        w.add(b"common", &Postings::from_sorted(&ids)).unwrap();
        w.add(b"rare", &Postings::from_sorted(&[4, 40, 9_996]))
            .unwrap();
        let r = w.finish().unwrap();
        assert!(r.entries[&b"common"[..]].blocked);
        assert!(!r.entries[&b"rare"[..]].blocked);
        // Full decode agrees regardless of encoding.
        assert_eq!(r.postings(b"common").unwrap().unwrap(), ids);
        assert_eq!(r.postings(b"rare").unwrap().unwrap(), vec![4, 40, 9_996]);
        // The cursor path seeks sub-linearly over the blocked list.
        let mut c = r.cursor(b"common").unwrap().unwrap();
        assert_eq!(c.seek(9_000).unwrap(), Some(9_000));
        let mut s = CursorStats::default();
        c.collect_stats(&mut s);
        assert!(s.postings_skipped > 4_000);
        assert!((s.blocks_decoded as usize) < ids.len().div_ceil(BLOCK_SIZE) / 2);
        assert!(r.cursor(b"absent").unwrap().is_none());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn version1_files_still_readable() {
        // Hand-craft a v1 file: directory entries have no encoding tag.
        let path = tmpfile("v1compat");
        let postings = Postings::from_sorted(&[3, 9, 27]);
        let mut dir = Vec::new();
        varint::encode(2, &mut dir); // key_len
        dir.extend_from_slice(b"ab");
        varint::encode(postings.len() as u64, &mut dir);
        varint::encode(postings.encoded().len() as u64, &mut dir);
        let mut file = Vec::new();
        file.extend_from_slice(MAGIC);
        file.extend_from_slice(&1u32.to_le_bytes());
        file.extend_from_slice(&1u64.to_le_bytes());
        file.extend_from_slice(&(dir.len() as u64).to_le_bytes());
        file.extend_from_slice(&dir);
        file.extend_from_slice(postings.encoded());
        std::fs::write(&path, &file).unwrap();
        let r = IndexReader::open(&path).unwrap();
        assert_eq!(r.postings(b"ab").unwrap().unwrap(), vec![3, 9, 27]);
        let mut c = r.cursor(b"ab").unwrap().unwrap();
        assert_eq!(c.seek(9).unwrap(), Some(9));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rejects_future_version_and_bad_encoding() {
        let path = tmpfile("futurever");
        let mut file = Vec::new();
        file.extend_from_slice(MAGIC);
        file.extend_from_slice(&99u32.to_le_bytes());
        file.extend_from_slice(&0u64.to_le_bytes());
        file.extend_from_slice(&0u64.to_le_bytes());
        std::fs::write(&path, &file).unwrap();
        assert!(matches!(IndexReader::open(&path), Err(Error::Corrupt(_))));
        // v2 entry with an unknown encoding tag.
        let mut dir = Vec::new();
        varint::encode(1, &mut dir);
        dir.push(b'k');
        varint::encode(1, &mut dir); // doc_count
        dir.push(7); // bogus encoding
        varint::encode(1, &mut dir); // payload len
        let mut file = Vec::new();
        file.extend_from_slice(MAGIC);
        file.extend_from_slice(&2u32.to_le_bytes());
        file.extend_from_slice(&1u64.to_le_bytes());
        file.extend_from_slice(&(dir.len() as u64).to_le_bytes());
        file.extend_from_slice(&dir);
        file.push(0);
        std::fs::write(&path, &file).unwrap();
        assert!(matches!(IndexReader::open(&path), Err(Error::Corrupt(_))));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn v3_files_carry_verifiable_checksums() {
        let path = tmpfile("v3crc");
        let ids: Vec<DocId> = (0..2_000).map(|i| i * 3).collect();
        let mut w = IndexWriter::create(&path).unwrap();
        w.add(b"long", &Postings::from_sorted(&ids)).unwrap();
        w.add(b"short", &Postings::from_sorted(&[1, 4])).unwrap();
        let r = w.finish().unwrap();
        assert!(r.checksummed());
        assert!(r.verify(Some(6_000)).unwrap().is_empty());
        // doc_bound below the max id is reported as a range issue.
        let issues = r.verify(Some(10)).unwrap();
        assert!(issues.iter().any(|i| i.kind == VerifyIssueKind::DocRange));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn v3_detects_postings_corruption() {
        let path = tmpfile("v3bitflip");
        let ids: Vec<DocId> = (0..1_000).collect();
        let mut w = IndexWriter::create(&path).unwrap();
        w.add(b"k", &Postings::from_sorted(&ids)).unwrap();
        drop(w.finish().unwrap());
        // Flip a byte in the middle of the postings section. The open
        // path (header+dir CRC) still succeeds; verify() must flag it.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() - FOOTER_LEN as usize - 10;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let r = IndexReader::open(&path).unwrap();
        let issues = r.verify(None).unwrap();
        assert!(issues.iter().any(|i| i.kind == VerifyIssueKind::Checksum));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn v3_rejects_directory_corruption_at_open() {
        let path = tmpfile("v3dirflip");
        let mut w = IndexWriter::create(&path).unwrap();
        w.add(b"alpha", &Postings::from_sorted(&[1, 2, 3])).unwrap();
        drop(w.finish().unwrap());
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a bit inside the directory's key bytes: the entry still
        // parses (same lengths) but the meta CRC catches the change.
        let pos = 28 + 2; // header + key_len varint + 1 byte into "alpha"
        bytes[pos] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(IndexReader::open(&path), Err(Error::Corrupt(_))));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn v3_rejects_bad_footer_magic() {
        let path = tmpfile("v3footer");
        let mut w = IndexWriter::create(&path).unwrap();
        w.add(b"k", &Postings::from_sorted(&[5])).unwrap();
        drop(w.finish().unwrap());
        let mut bytes = std::fs::read(&path).unwrap();
        let footer_start = bytes.len() - FOOTER_LEN as usize;
        bytes[footer_start] = b'X';
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(IndexReader::open(&path), Err(Error::Corrupt(_))));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn legacy_versions_open_without_checksums() {
        // A v2 file (no footer) must still open, report !checksummed(),
        // and verify() runs the semantic checks only.
        let path = tmpfile("v2legacy");
        let postings = Postings::from_sorted(&[3, 9, 27]);
        let mut dir = Vec::new();
        varint::encode(2, &mut dir);
        dir.extend_from_slice(b"ab");
        varint::encode(postings.len() as u64, &mut dir);
        dir.push(ENC_PLAIN);
        varint::encode(postings.encoded().len() as u64, &mut dir);
        let mut file = Vec::new();
        file.extend_from_slice(MAGIC);
        file.extend_from_slice(&2u32.to_le_bytes());
        file.extend_from_slice(&1u64.to_le_bytes());
        file.extend_from_slice(&(dir.len() as u64).to_le_bytes());
        file.extend_from_slice(&dir);
        file.extend_from_slice(postings.encoded());
        std::fs::write(&path, &file).unwrap();
        let r = IndexReader::open(&path).unwrap();
        assert!(!r.checksummed());
        assert!(r.verify(Some(100)).unwrap().is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn verify_flags_non_ascending_plain_postings() {
        // Zero deltas after the first id decode "successfully" into
        // duplicate doc ids; verify() must catch what decode() tolerates.
        let path = tmpfile("v2dupid");
        let mut enc = Vec::new();
        varint::encode(7, &mut enc); // doc 7
        varint::encode(0, &mut enc); // delta 0 -> doc 7 again
        let mut dir = Vec::new();
        varint::encode(1, &mut dir);
        dir.push(b'k');
        varint::encode(2, &mut dir); // doc_count
        dir.push(ENC_PLAIN);
        varint::encode(enc.len() as u64, &mut dir);
        let mut file = Vec::new();
        file.extend_from_slice(MAGIC);
        file.extend_from_slice(&2u32.to_le_bytes());
        file.extend_from_slice(&1u64.to_le_bytes());
        file.extend_from_slice(&(dir.len() as u64).to_le_bytes());
        file.extend_from_slice(&dir);
        file.extend_from_slice(&enc);
        std::fs::write(&path, &file).unwrap();
        let r = IndexReader::open(&path).unwrap();
        let issues = r.verify(None).unwrap();
        assert!(issues.iter().any(|i| i.kind == VerifyIssueKind::Order));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn concurrent_reads() {
        let path = tmpfile("concurrent");
        let mut w = IndexWriter::create(&path).unwrap();
        for i in 0..100u32 {
            let key = format!("key{i:03}");
            w.add(key.as_bytes(), &Postings::from_sorted(&[i, i + 1000]))
                .unwrap();
        }
        let r = std::sync::Arc::new(w.finish().unwrap());
        let mut handles = Vec::new();
        for t in 0..4 {
            let r = r.clone();
            handles.push(std::thread::spawn(move || {
                for i in (t..100).step_by(4) {
                    let key = format!("key{i:03}");
                    let p = r.postings(key.as_bytes()).unwrap().unwrap();
                    assert_eq!(p, vec![i as u32, i as u32 + 1000]);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        std::fs::remove_file(&path).unwrap();
    }
}
