//! Index size statistics — the quantities reported in Table 3 of the
//! paper (number of gram keys, number of postings, byte sizes).

/// Size statistics for an index.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IndexStats {
    /// Number of distinct gram keys (Table 3, row 3).
    pub num_keys: u64,
    /// Total number of postings across all keys (Table 3, row 4).
    pub num_postings: u64,
    /// Bytes of key material in the directory.
    pub key_bytes: u64,
    /// Bytes of encoded postings.
    pub postings_bytes: u64,
}

impl IndexStats {
    /// Total on-disk payload (directory keys + postings).
    pub fn total_bytes(&self) -> u64 {
        self.key_bytes + self.postings_bytes
    }

    /// Mean postings per key; the paper notes this exceeds 100 for every
    /// index it builds, i.e. size is dominated by postings not keys.
    pub fn postings_per_key(&self) -> f64 {
        if self.num_keys == 0 {
            0.0
        } else {
            self.num_postings as f64 / self.num_keys as f64
        }
    }
}

impl core::fmt::Display for IndexStats {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{} keys, {} postings ({} key bytes + {} postings bytes)",
            self.num_keys, self.num_postings, self.key_bytes, self.postings_bytes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_quantities() {
        let s = IndexStats {
            num_keys: 4,
            num_postings: 500,
            key_bytes: 20,
            postings_bytes: 600,
        };
        assert_eq!(s.total_bytes(), 620);
        assert!((s.postings_per_key() - 125.0).abs() < 1e-9);
        assert!(s.to_string().contains("4 keys"));
    }

    #[test]
    fn empty_index() {
        let s = IndexStats::default();
        assert_eq!(s.postings_per_key(), 0.0);
        assert_eq!(s.total_bytes(), 0);
    }
}
