//! Property-based tests for the index substrate: postings round-trips, set
//! operations against model sets, and on-disk format round-trips.

use free_index::{ops, DocId, IndexBuilder, IndexRead, MemIndex, Postings};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

fn sorted_ids() -> impl Strategy<Value = Vec<DocId>> {
    prop::collection::btree_set(0u32..5_000, 0..200).prop_map(|s| s.into_iter().collect())
}

proptest! {
    #[test]
    fn postings_roundtrip(ids in sorted_ids()) {
        let p = Postings::from_sorted(&ids);
        prop_assert_eq!(p.len(), ids.len());
        prop_assert_eq!(p.decode().unwrap(), ids.clone());
        let via_iter: Vec<DocId> = p.iter().map(|r| r.unwrap()).collect();
        prop_assert_eq!(via_iter, ids);
    }

    #[test]
    fn intersection_matches_model(a in sorted_ids(), b in sorted_ids()) {
        let sa: BTreeSet<DocId> = a.iter().copied().collect();
        let sb: BTreeSet<DocId> = b.iter().copied().collect();
        let want: Vec<DocId> = sa.intersection(&sb).copied().collect();
        prop_assert_eq!(ops::intersect(&a, &b), want.clone());
        prop_assert_eq!(ops::intersect_merge(&a, &b), want.clone());
        let (s, l) = if a.len() <= b.len() { (&a, &b) } else { (&b, &a) };
        prop_assert_eq!(ops::intersect_galloping(s, l), want);
    }

    #[test]
    fn union_matches_model(a in sorted_ids(), b in sorted_ids()) {
        let sa: BTreeSet<DocId> = a.iter().copied().collect();
        let sb: BTreeSet<DocId> = b.iter().copied().collect();
        let want: Vec<DocId> = sa.union(&sb).copied().collect();
        prop_assert_eq!(ops::union(&a, &b), want);
    }

    #[test]
    fn many_way_ops_match_model(lists in prop::collection::vec(sorted_ids(), 0..5)) {
        let refs: Vec<&[DocId]> = lists.iter().map(|l| l.as_slice()).collect();
        let union_want: Vec<DocId> = {
            let mut s = BTreeSet::new();
            for l in &lists { s.extend(l.iter().copied()); }
            s.into_iter().collect()
        };
        prop_assert_eq!(ops::union_many(&refs), union_want);
        if !lists.is_empty() {
            let mut acc: BTreeSet<DocId> = lists[0].iter().copied().collect();
            for l in &lists[1..] {
                let s: BTreeSet<DocId> = l.iter().copied().collect();
                acc = acc.intersection(&s).copied().collect();
            }
            let want: Vec<DocId> = acc.into_iter().collect();
            prop_assert_eq!(ops::intersect_many(&refs), want);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random (key, doc) streams: MemIndex, the plain writer path and the
    /// forced-spill external builder must produce identical indexes.
    #[test]
    fn disk_format_and_builder_match_memindex(
        stream in prop::collection::vec((0u8..6, 0u32..60), 1..300),
        case_id in 0u64..u64::MAX,
    ) {
        // Doc ids must be fed in order; sort the stream by doc.
        let mut stream: Vec<(u8, u32)> = stream;
        stream.sort_by_key(|&(_, d)| d);

        let mut mem = MemIndex::new();
        let dir = std::env::temp_dir();
        let p1 = dir.join(format!("free-pt-{}-{case_id}.idx", std::process::id()));
        let mut builder = IndexBuilder::with_memory_budget(&p1, 16); // force spills
        for &(k, d) in &stream {
            let key = [b'k', k];
            mem.add(&key, d);
            builder.add(&key, d).unwrap();
        }
        let disk = builder.finish().unwrap();

        prop_assert_eq!(disk.num_keys(), mem.num_keys());
        let mut model: BTreeMap<Vec<u8>, Vec<DocId>> = BTreeMap::new();
        for &(k, d) in &stream {
            let e = model.entry(vec![b'k', k]).or_default();
            if e.last() != Some(&d) { e.push(d); }
        }
        for (key, want) in model {
            prop_assert_eq!(mem.postings(&key).unwrap().unwrap(), want.clone());
            prop_assert_eq!(disk.postings(&key).unwrap().unwrap(), want.clone());
            prop_assert_eq!(disk.doc_count(&key), Some(want.len()));
        }
        std::fs::remove_file(&p1).unwrap();
    }
}
