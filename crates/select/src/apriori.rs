//! Algorithm 3.1: a-priori mining of the minimal useful grams.
//!
//! A gram `x` is *c-useful* if `sel(x) = M(x)/N <= c` (Definition 3.4).
//! The algorithm grows grams breadth-first: a gram of length `k` is a
//! candidate only if its `(k-1)`-prefix turned out *useless* — useful
//! prefixes are already minimal useful grams, and any extension of a
//! useful gram is useful but not minimal (Theorem 3.9 guarantees the
//! output is exactly the minimal useful grams, which also makes it prefix
//! free, which in turn bounds total postings by `|D|`, Observation 3.8).
//!
//! Following §3.1's optimization ("we may find useless grams for both
//! k = 1 and 2 … in one pass"), each corpus scan counts
//! [`lengths_per_pass`](crate::SelectConfig::lengths_per_pass)
//! consecutive gram lengths: grams of the longer lengths are counted
//! optimistically (their immediate prefix's usefulness is unknown until
//! the pass ends) and filtered level-by-level afterwards.

use crate::{Error, GramSelector, Result, SelectConfig, SelectedGram};
use free_corpus::Corpus;
use rustc_hash::FxHashMap;

/// Statistics from a mining run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MiningStats {
    /// Number of full corpus scans performed.
    pub passes: usize,
    /// Total candidate grams whose counts were tracked.
    pub candidates_counted: u64,
    /// Candidates discarded because their prefix turned out useful
    /// (optimistic counting overshoot).
    pub candidates_skipped: u64,
    /// Per-pass counters, in pass order (empty for strategies that do not
    /// mine, e.g. complete enumeration).
    pub per_pass: Vec<PassStats>,
}

/// Counters for one a-priori corpus scan.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PassStats {
    /// The range of gram lengths counted in this pass (`k..=k_end`).
    pub lengths: (usize, usize),
    /// Candidate grams whose counts were tracked during the scan.
    pub grams_considered: u64,
    /// Grams this pass confirmed as minimal useful (kept for the index).
    pub grams_kept: u64,
    /// Corpus bytes read by the scan.
    pub bytes_read: u64,
}

/// The result of mining: the minimal useful grams plus statistics.
#[derive(Clone, Debug)]
pub struct Selection {
    /// Minimal useful grams, sorted lexicographically.
    pub grams: Vec<SelectedGram>,
    /// Number of data units scanned (the paper's `N`).
    pub num_docs: usize,
    /// Mining statistics.
    pub stats: MiningStats,
}

impl Selection {
    /// The raw gram keys, sorted.
    pub fn keys(&self) -> Vec<Box<[u8]>> {
        self.grams.iter().map(|g| g.gram.clone()).collect()
    }
}

/// A substring-closed gram predicate accepted by [`mine_filtered`].
pub(crate) type GramFilter<'a> = &'a (dyn Fn(&[u8]) -> bool + Sync);

/// Per-gram counting cell: document frequency plus the last document that
/// touched it (so each document is counted once — `M(x)` counts data
/// units, not occurrences).
#[derive(Clone, Copy)]
struct Cell {
    count: u32,
    last_doc: u32,
}

/// Runs Algorithm 3.1 over `corpus` with the config's threshold.
pub fn mine_multigrams(corpus: &dyn Corpus, config: &SelectConfig) -> Result<Selection> {
    mine_filtered(corpus, config, config.usefulness_threshold, None)
}

/// Runs Algorithm 3.1 restricted to a *substring-closed* candidate
/// universe.
///
/// `threshold_c` overrides the config's usefulness threshold. When
/// `filter` is `Some(f)`, only grams with `f(gram) == true` are counted,
/// selected, or extended; `f` **must be substring-closed** (if `f(g)`
/// holds then `f` holds for every substring of `g`) — the scan prunes
/// longer extensions as soon as a shorter gram at the same position is
/// rejected, and the minimality argument needs prefixes of relevant grams
/// to themselves be relevant. Within the filtered universe the output is
/// exactly the minimal useful grams, hence still prefix free.
pub(crate) fn mine_filtered(
    corpus: &dyn Corpus,
    config: &SelectConfig,
    threshold_c: f64,
    filter: Option<GramFilter<'_>>,
) -> Result<Selection> {
    config.validate()?;
    if !(0.0..=1.0).contains(&threshold_c) {
        return Err(Error::Config(format!(
            "usefulness threshold must be in [0,1], got {threshold_c}"
        )));
    }
    let n = corpus.len();
    // floor(c * N): a gram is useful iff count <= threshold.
    let threshold = (threshold_c * n as f64).floor() as u32;

    let mut useful: Vec<SelectedGram> = Vec::new();
    let mut stats = MiningStats::default();
    // The grams confirmed useless at length `k-1`, to be extended.
    // Level 0 is the empty gram, represented implicitly.
    let mut expand: FxHashMap<Box<[u8]>, ()> = FxHashMap::default();
    let mut k = 1usize;
    let mut first_pass = true;

    while k <= config.max_gram_len && (first_pass || !expand.is_empty()) {
        let k_end = (k + config.lengths_per_pass - 1).min(config.max_gram_len);
        let mut counts: FxHashMap<Box<[u8]>, Cell> = FxHashMap::default();
        let mut bytes_read = 0u64;
        let kept_before = useful.len();

        // One corpus scan: count every gram of length k..=k_end whose
        // (k-1)-prefix is in `expand` and that the filter accepts.
        corpus.scan(&mut |doc, bytes| {
            bytes_read += bytes.len() as u64;
            for i in 0..bytes.len() {
                if !first_pass {
                    let pfx_end = i + k - 1;
                    if pfx_end > bytes.len() {
                        break;
                    }
                    if !expand.contains_key(&bytes[i..pfx_end]) {
                        continue;
                    }
                }
                for m in k..=k_end {
                    let end = i + m;
                    if end > bytes.len() {
                        break;
                    }
                    let gram = &bytes[i..end];
                    if let Some(f) = filter {
                        // Substring closure: once a gram at this position
                        // is irrelevant, every extension contains it and
                        // is irrelevant too.
                        if !f(gram) {
                            break;
                        }
                    }
                    match counts.get_mut(gram) {
                        Some(cell) => {
                            if cell.last_doc != doc {
                                cell.last_doc = doc;
                                cell.count += 1;
                            }
                        }
                        None => {
                            counts.insert(
                                gram.into(),
                                Cell {
                                    count: 1,
                                    last_doc: doc,
                                },
                            );
                        }
                    }
                }
            }
            true
        })?;
        stats.passes += 1;
        stats.candidates_counted += counts.len() as u64;
        let grams_considered = counts.len() as u64;

        // Resolve levels in order: a length-m gram is a real candidate only
        // if its (m-1)-prefix is useless *at this point*.
        let mut by_len: Vec<Vec<(Box<[u8]>, u32)>> = vec![Vec::new(); k_end - k + 1];
        for (gram, cell) in counts {
            by_len[gram.len() - k].push((gram, cell.count));
        }
        let mut prev_useless: FxHashMap<Box<[u8]>, ()> = expand;
        for (level, grams) in by_len.into_iter().enumerate() {
            let m = k + level;
            let mut next_useless: FxHashMap<Box<[u8]>, ()> = FxHashMap::default();
            for (gram, count) in grams {
                // Candidate iff the immediate prefix is useless. For the
                // first level of the pass this holds by construction.
                if m > k || !first_pass {
                    let prefix = &gram[..m - 1];
                    let prefix_ok = if m == k {
                        true // enforced during the scan
                    } else {
                        prev_useless.contains_key(prefix)
                    };
                    if !prefix_ok {
                        stats.candidates_skipped += 1;
                        continue;
                    }
                }
                if count <= threshold {
                    useful.push(SelectedGram {
                        gram,
                        doc_count: count,
                    });
                } else {
                    next_useless.insert(gram, ());
                }
            }
            prev_useless = next_useless;
        }
        expand = prev_useless;
        let pass = PassStats {
            lengths: (k, k_end),
            grams_considered,
            grams_kept: (useful.len() - kept_before) as u64,
            bytes_read,
        };
        config.tracer.event(
            "mine.pass",
            vec![
                ("pass", stats.passes.into()),
                ("min_len", pass.lengths.0.into()),
                ("max_len", pass.lengths.1.into()),
                ("grams_considered", pass.grams_considered.into()),
                ("grams_kept", pass.grams_kept.into()),
                ("bytes_read", pass.bytes_read.into()),
            ],
        );
        stats.per_pass.push(pass);
        k = k_end + 1;
        first_pass = false;
    }

    useful.sort_by(|a, b| a.gram.cmp(&b.gram));
    Ok(Selection {
        grams: useful,
        num_docs: n,
        stats,
    })
}

/// The reference strategy: Algorithm 3.1 as published, with an optional
/// override for the usefulness threshold `c`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AprioriSelector {
    /// Overrides [`SelectConfig::usefulness_threshold`] when set.
    pub c: Option<f64>,
}

impl GramSelector for AprioriSelector {
    fn name(&self) -> &'static str {
        "apriori"
    }

    fn spec_string(&self) -> String {
        match self.c {
            Some(c) => format!("apriori:c={c}"),
            None => "apriori".to_string(),
        }
    }

    fn select(&self, corpus: &dyn Corpus, config: &SelectConfig) -> Result<Selection> {
        let c = self.c.unwrap_or(config.usefulness_threshold);
        mine_filtered(corpus, config, c, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use free_corpus::MemCorpus;

    fn mine(docs: &[&str], c: f64, max_len: usize) -> Selection {
        let corpus = MemCorpus::from_docs(docs.iter().map(|d| d.as_bytes().to_vec()).collect());
        let config = SelectConfig {
            usefulness_threshold: c,
            max_gram_len: max_len,
            ..SelectConfig::default()
        };
        mine_multigrams(&corpus, &config).unwrap()
    }

    fn keys(sel: &Selection) -> Vec<String> {
        sel.grams
            .iter()
            .map(|g| String::from_utf8_lossy(&g.gram).into_owned())
            .collect()
    }

    #[test]
    fn rare_one_grams_selected_directly() {
        // 'z' appears in 1 of 10 docs → useful at c=0.1 and minimal.
        let mut docs = vec!["aaaa"; 9];
        docs.push("aazb");
        let sel = mine(&docs, 0.1, 4);
        assert!(keys(&sel).contains(&"z".to_string()));
        // 'a' is in every doc → useless; but no doc-count limit reached at
        // longer lengths since "aa" etc. all ubiquitous except in doc 10.
        assert!(!keys(&sel).contains(&"a".to_string()));
    }

    #[test]
    fn minimality_no_gram_is_prefix_of_another() {
        let docs: Vec<String> = (0..50)
            .map(|i| format!("common prefix {} tail{}", "x".repeat(i % 5), i))
            .collect();
        let refs: Vec<&str> = docs.iter().map(String::as_str).collect();
        let sel = mine(&refs, 0.2, 8);
        let ks = keys(&sel);
        for a in &ks {
            for b in &ks {
                if a != b {
                    assert!(!b.starts_with(a.as_str()), "{a} is a prefix of {b}");
                }
            }
        }
    }

    #[test]
    fn every_selected_gram_is_useful_and_prefixes_useless() {
        let docs: Vec<String> = (0..40)
            .map(|i| format!("doc{} shared words appear everywhere {}", i, i % 4))
            .collect();
        let refs: Vec<&str> = docs.iter().map(String::as_str).collect();
        let c = 0.15;
        let sel = mine(&refs, c, 6);
        let n = sel.num_docs;
        let count_docs = |g: &str| refs.iter().filter(|d| d.contains(g)).count();
        for g in &sel.grams {
            let s = String::from_utf8_lossy(&g.gram).into_owned();
            let actual = count_docs(&s);
            assert_eq!(actual as u32, g.doc_count, "doc count for {s}");
            assert!((actual as f64) / (n as f64) <= c, "{s} should be useful");
            // Every proper prefix must be useless (minimality).
            for cut in 1..s.len() {
                let p = &s[..cut];
                assert!(
                    (count_docs(p) as f64) / (n as f64) > c,
                    "prefix {p} of {s} should be useless"
                );
            }
        }
    }

    #[test]
    fn theorem_3_9_completeness() {
        // Every useful gram has a prefix in the selection (or is itself
        // selected), up to max_gram_len.
        let docs: Vec<String> = (0..30)
            .map(|i| format!("alpha beta gamma {}", if i < 3 { "needle" } else { "hay" }))
            .collect();
        let refs: Vec<&str> = docs.iter().map(String::as_str).collect();
        let sel = mine(&refs, 0.2, 8);
        let ks = keys(&sel);
        // "needle" is in 3/30 docs → useful; some prefix of it must be
        // indexed.
        assert!(
            (1..="needle".len()).any(|cut| ks.contains(&"needle"[..cut].to_string())),
            "no prefix of 'needle' indexed: {ks:?}"
        );
    }

    #[test]
    fn max_len_cutoff_respected() {
        let docs = vec!["abcdefghijklmnop"; 3];
        let sel = mine(&docs, 0.9, 4);
        for g in &sel.grams {
            assert!(g.gram.len() <= 4);
        }
    }

    #[test]
    fn threshold_zero_selects_nothing() {
        // c=0 means useful ⇔ sel(x) = 0, impossible for occurring grams.
        let sel = mine(&["abc", "abd"], 0.0, 4);
        assert!(sel.grams.is_empty());
    }

    #[test]
    fn threshold_one_selects_all_one_grams() {
        // c=1: every gram is useful, so all 1-grams are minimal useful.
        let sel = mine(&["ab", "bc"], 1.0, 4);
        let ks = keys(&sel);
        assert_eq!(ks, vec!["a", "b", "c"]);
    }

    #[test]
    fn empty_corpus() {
        let corpus = MemCorpus::new();
        let sel = mine_multigrams(&corpus, &SelectConfig::default()).unwrap();
        assert!(sel.grams.is_empty());
        assert_eq!(sel.num_docs, 0);
    }

    #[test]
    fn lengths_per_pass_does_not_change_result() {
        let docs: Vec<String> = (0..25)
            .map(|i| format!("the quick brown fox {} jumps over {}", i, i * 7))
            .collect();
        let refs: Vec<&str> = docs.iter().map(String::as_str).collect();
        let corpus = MemCorpus::from_docs(refs.iter().map(|d| d.as_bytes().to_vec()).collect());
        let mut results = Vec::new();
        for lpp in [1, 2, 3, 10] {
            let config = SelectConfig {
                usefulness_threshold: 0.2,
                max_gram_len: 6,
                lengths_per_pass: lpp,
                ..SelectConfig::default()
            };
            let sel = mine_multigrams(&corpus, &config).unwrap();
            results.push((lpp, sel));
        }
        let base = keys(&results[0].1);
        for (lpp, sel) in &results[1..] {
            assert_eq!(keys(sel), base, "lengths_per_pass={lpp}");
        }
        // More lengths per pass ⇒ fewer scans.
        assert!(results[3].1.stats.passes < results[0].1.stats.passes);
    }

    #[test]
    fn pass_count_matches_paper_shape() {
        // With max_gram_len=10 and lengths_per_pass=2 the gram
        // identification takes ≤5 scans (§5.2: "this gram-key
        // identification could be done in less than 10 scans").
        let docs: Vec<String> = (0..20).map(|i| format!("abcdefghij{i}")).collect();
        let refs: Vec<&str> = docs.iter().map(String::as_str).collect();
        let corpus = MemCorpus::from_docs(refs.iter().map(|d| d.as_bytes().to_vec()).collect());
        let config = SelectConfig {
            usefulness_threshold: 0.1,
            max_gram_len: 10,
            lengths_per_pass: 2,
            ..SelectConfig::default()
        };
        let sel = mine_multigrams(&corpus, &config).unwrap();
        assert!(sel.stats.passes <= 5, "{} passes", sel.stats.passes);
    }

    #[test]
    fn per_pass_counters_sum_to_totals() {
        let docs: Vec<String> = (0..30)
            .map(|i| format!("alpha beta gamma {} filler", i % 6))
            .collect();
        let refs: Vec<&str> = docs.iter().map(String::as_str).collect();
        let corpus = MemCorpus::from_docs(refs.iter().map(|d| d.as_bytes().to_vec()).collect());
        let total_bytes: u64 = refs.iter().map(|d| d.len() as u64).sum();
        let sel = mine_multigrams(&corpus, &SelectConfig::default()).unwrap();
        assert_eq!(sel.stats.per_pass.len(), sel.stats.passes);
        let considered: u64 = sel.stats.per_pass.iter().map(|p| p.grams_considered).sum();
        assert_eq!(considered, sel.stats.candidates_counted);
        let kept: u64 = sel.stats.per_pass.iter().map(|p| p.grams_kept).sum();
        assert_eq!(kept, sel.grams.len() as u64);
        for p in &sel.stats.per_pass {
            assert_eq!(p.bytes_read, total_bytes, "every pass scans the corpus");
            assert!(p.lengths.0 <= p.lengths.1);
        }
    }

    #[test]
    fn mining_emits_per_pass_trace_events() {
        let corpus = MemCorpus::from_docs(vec![b"abcabc".to_vec(), b"xyzxyz".to_vec()]);
        let tracer = free_trace::Tracer::enabled();
        let config = SelectConfig {
            tracer: tracer.clone(),
            ..SelectConfig::default()
        };
        let sel = mine_multigrams(&corpus, &config).unwrap();
        let passes: Vec<_> = tracer
            .events()
            .into_iter()
            .filter(|e| e.name == "mine.pass")
            .collect();
        assert_eq!(passes.len(), sel.stats.passes);
        for (i, e) in passes.iter().enumerate() {
            assert_eq!(
                e.attr("pass"),
                Some(&free_trace::Value::U64(i as u64 + 1)),
                "{e:?}"
            );
            assert!(e.attr("bytes_read").is_some());
        }
    }

    #[test]
    fn output_is_sorted() {
        let sel = mine(&["zebra", "apple", "mango"], 0.4, 5);
        let ks = keys(&sel);
        let mut sorted = ks.clone();
        sorted.sort();
        assert_eq!(ks, sorted);
    }

    #[test]
    fn selector_c_override_matches_direct_mine() {
        let docs = ["the cat sat", "the dog ran", "a cat ran", "the owl"];
        let corpus = MemCorpus::from_docs(docs.iter().map(|d| d.as_bytes().to_vec()).collect());
        let config = SelectConfig::default();
        let with_override = AprioriSelector { c: Some(0.5) }
            .select(&corpus, &config)
            .unwrap();
        let direct = mine(&docs, 0.5, 10);
        assert_eq!(keys(&with_override), keys(&direct));
        assert_eq!(
            AprioriSelector { c: Some(0.5) }.spec_string(),
            "apriori:c=0.5"
        );
        assert_eq!(AprioriSelector::default().spec_string(), "apriori");
    }

    #[test]
    fn filtered_mining_respects_substring_closed_universe() {
        let docs: Vec<String> = (0..20)
            .map(|i| format!("needle{} haystack filler", i % 5))
            .collect();
        let refs: Vec<&str> = docs.iter().map(String::as_str).collect();
        let corpus = MemCorpus::from_docs(refs.iter().map(|d| d.as_bytes().to_vec()).collect());
        // Universe: substrings of "needle".
        let universe = b"needle";
        let filter = |g: &[u8]| universe.windows(g.len()).any(|w| w == g);
        let sel = mine_filtered(&corpus, &SelectConfig::default(), 0.3, Some(&filter)).unwrap();
        // Everything kept is a substring of "needle" …
        for g in &sel.grams {
            assert!(filter(&g.gram), "{:?}", String::from_utf8_lossy(&g.gram));
        }
        // … and the output is still prefix free.
        for a in &sel.grams {
            for b in &sel.grams {
                if a.gram != b.gram {
                    assert!(!b.gram.starts_with(&a.gram));
                }
            }
        }
    }
}
