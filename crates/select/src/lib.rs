//! Gram-selection strategies for the FREE engine.
//!
//! The paper's Algorithm 3.1 (a-priori mining of minimal useful grams) is
//! one point in a design space that later work benchmarks head-to-head.
//! This crate puts the choice behind the [`GramSelector`] trait and ships
//! four strategies:
//!
//! * [`apriori`] — Algorithm 3.1, the reference implementation (moved out
//!   of the engine crate; the paper's "Multigram" selection).
//! * [`trigram`] — fixed-k complete enumeration, the Russ Cox /
//!   code-search baseline (`k = 3` by default).
//! * [`budgeted`] — sweeps the usefulness threshold `c` and keeps the
//!   most capable selection whose estimated index size fits a byte
//!   budget.
//! * [`workload`] — mines only grams relevant to a captured query log
//!   (a qlog directory), weighting candidates by how often — and how
//!   slowly — the recorded patterns would exercise them.
//!
//! Every selector returns a **prefix-free** gram set, so downstream
//! consumers (postings generation, the planner, the presuf shell) can
//! rely on the same invariants regardless of strategy. Missing grams only
//! ever degrade plans toward a scan — selection strategy never affects
//! which documents match, only how fast the candidates narrow.
//!
//! Strategy identity and parameters round-trip through
//! [`SelectorSpec`]: parsed from `NAME[:k=v,...]` command-line syntax,
//! persisted in index manifests, and re-hydrated when a segment is
//! re-mined during compaction.

#![forbid(unsafe_code)]

use core::fmt;

use free_corpus::Corpus;

pub mod apriori;
pub mod budgeted;
pub mod complete;
pub mod presuf;
pub mod spec;
pub mod trigram;
pub mod workload;

pub use apriori::{mine_multigrams, AprioriSelector, MiningStats, PassStats, Selection};
pub use budgeted::BudgetedSelector;
pub use complete::enumerate_complete;
pub use presuf::presuf_shell;
pub use spec::{selector_for, SelectorSpec};
pub use trigram::TrigramSelector;
pub use workload::WorkloadSelector;

/// Convenience alias.
pub type Result<T> = core::result::Result<T, Error>;

/// Any failure while selecting grams.
#[derive(Debug)]
pub enum Error {
    /// Invalid selector parameters or tunables.
    Config(String),
    /// Corpus storage failure during a mining scan.
    Corpus(free_corpus::Error),
    /// I/O failure reading an external input (e.g. a qlog directory).
    Io {
        /// What the selector was doing.
        context: String,
        /// The OS-level error.
        source: std::io::Error,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Config(msg) => write!(f, "selector configuration error: {msg}"),
            Error::Corpus(e) => write!(f, "corpus error during selection: {e}"),
            Error::Io { context, source } => {
                write!(f, "selector I/O error ({context}): {source}")
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Corpus(e) => Some(e),
            Error::Io { source, .. } => Some(source),
            Error::Config(_) => None,
        }
    }
}

impl From<free_corpus::Error> for Error {
    fn from(e: free_corpus::Error) -> Error {
        Error::Corpus(e)
    }
}

/// A selected gram key with its document frequency (`M(x)` in the paper).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SelectedGram {
    /// The gram bytes.
    pub gram: Box<[u8]>,
    /// Number of data units containing the gram.
    pub doc_count: u32,
}

impl SelectedGram {
    /// Selectivity given corpus size `n` (Definition 3.1).
    pub fn selectivity(&self, n: usize) -> f64 {
        if n == 0 {
            0.0
        } else {
            f64::from(self.doc_count) / n as f64
        }
    }
}

/// Tunables shared by every selection strategy.
///
/// This is the mining-relevant slice of the engine configuration; the
/// engine converts its own config into one of these before dispatching to
/// a selector.
#[derive(Clone, Debug)]
pub struct SelectConfig {
    /// The usefulness threshold `c` (Definition 3.4): a gram is useful if
    /// `sel(x) <= c`. Strategies that take their own `c` parameter use it
    /// to override this value.
    pub usefulness_threshold: f64,
    /// Maximum gram length considered; the paper cuts off at 10.
    pub max_gram_len: usize,
    /// How many gram lengths the a-priori miner evaluates per corpus
    /// scan.
    pub lengths_per_pass: usize,
    /// Trace collector for `mine.pass` / `select.*` events.
    pub tracer: free_trace::Tracer,
}

impl Default for SelectConfig {
    fn default() -> Self {
        SelectConfig {
            usefulness_threshold: 0.1,
            max_gram_len: 10,
            lengths_per_pass: 2,
            tracer: free_trace::Tracer::disabled(),
        }
    }
}

impl SelectConfig {
    /// Validates invariants, returning [`Error::Config`] on violation.
    pub fn validate(&self) -> Result<()> {
        if !(0.0..=1.0).contains(&self.usefulness_threshold) {
            return Err(Error::Config(format!(
                "usefulness threshold must be in [0,1], got {}",
                self.usefulness_threshold
            )));
        }
        if self.max_gram_len == 0 {
            return Err(Error::Config("max_gram_len must be at least 1".into()));
        }
        if self.lengths_per_pass == 0 {
            return Err(Error::Config("lengths_per_pass must be at least 1".into()));
        }
        Ok(())
    }
}

/// A gram-selection strategy.
///
/// Contract every implementation must honor:
///
/// 1. **Prefix-free output** — no selected gram is a proper prefix of
///    another. This bounds total postings (Observation 3.8) and is what
///    the presuf shell and the FA424 fsck check assume.
/// 2. **Sorted output** — grams sorted lexicographically, ready for the
///    index builder.
/// 3. **Accurate counts** — `doc_count` is the number of data units
///    containing the gram (not occurrences).
/// 4. **Soundness is free** — the planner consults the index's actual key
///    set, so *any* gram set yields correct query results; strategies
///    compete only on index size and candidate-set quality.
pub trait GramSelector: Send + Sync {
    /// The strategy's short name (`apriori`, `trigram`, ...).
    fn name(&self) -> &'static str;

    /// The canonical spec string (`trigram:k=3`) that re-creates this
    /// selector; persisted in index manifests.
    fn spec_string(&self) -> String;

    /// Runs the strategy over `corpus`.
    fn select(&self, corpus: &dyn Corpus, config: &SelectConfig) -> Result<Selection>;

    /// Per-key shape invariant for fsck: returns a violation message if
    /// an on-disk index key could not have been produced by this
    /// strategy (e.g. a non-k-length key under `trigram:k=3`). `None`
    /// means the key is consistent.
    fn check_key(&self, _key: &[u8]) -> Option<String> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selectivity() {
        let g = SelectedGram {
            gram: b"abc"[..].into(),
            doc_count: 25,
        };
        assert!((g.selectivity(100) - 0.25).abs() < 1e-12);
        assert_eq!(g.selectivity(0), 0.0);
    }

    #[test]
    fn config_validation() {
        assert!(SelectConfig::default().validate().is_ok());
        let bad = SelectConfig {
            usefulness_threshold: 1.5,
            ..SelectConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = SelectConfig {
            max_gram_len: 0,
            ..SelectConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = SelectConfig {
            lengths_per_pass: 0,
            ..SelectConfig::default()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn trait_is_object_safe() {
        let s: Box<dyn GramSelector> = Box::new(AprioriSelector::default());
        assert_eq!(s.name(), "apriori");
    }
}
