//! Fixed-k gram selection: the Russ Cox / code-search baseline.
//!
//! Every distinct k-gram in the corpus becomes an index key, regardless
//! of selectivity. With `k = 3` this is exactly the trigram index of
//! Google Code Search: dead simple, one corpus scan to build, and
//! trivially prefix free (all keys share one length). The price is
//! paid twice — the dictionary holds *every* k-gram including ubiquitous
//! ones whose postings filter nothing, and queries whose literals are
//! shorter than `k` degrade to scans that the adaptive strategies would
//! have covered with shorter useful grams.

use crate::{
    complete::enumerate_complete, Error, GramSelector, MiningStats, PassStats, Result,
    SelectConfig, Selection,
};
use free_corpus::Corpus;

/// Selects every distinct gram of exactly length `k`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TrigramSelector {
    /// The fixed gram length (3 for the classic trigram index).
    pub k: usize,
}

impl Default for TrigramSelector {
    fn default() -> Self {
        TrigramSelector { k: 3 }
    }
}

impl GramSelector for TrigramSelector {
    fn name(&self) -> &'static str {
        "trigram"
    }

    fn spec_string(&self) -> String {
        format!("trigram:k={}", self.k)
    }

    fn select(&self, corpus: &dyn Corpus, config: &SelectConfig) -> Result<Selection> {
        config.validate()?;
        if self.k == 0 {
            return Err(Error::Config("trigram k must be at least 1".into()));
        }
        let n = corpus.len();
        let grams = enumerate_complete(corpus, self.k, self.k)?;
        let bytes_read = corpus.total_bytes();
        let kept = grams.len() as u64;
        config.tracer.event(
            "select.trigram",
            vec![("k", (self.k as u64).into()), ("grams_kept", kept.into())],
        );
        Ok(Selection {
            grams,
            num_docs: n,
            stats: MiningStats {
                passes: 1,
                candidates_counted: kept,
                candidates_skipped: 0,
                per_pass: vec![PassStats {
                    lengths: (self.k, self.k),
                    grams_considered: kept,
                    grams_kept: kept,
                    bytes_read,
                }],
            },
        })
    }

    fn check_key(&self, key: &[u8]) -> Option<String> {
        if key.len() != self.k {
            Some(format!(
                "key of length {} under fixed-k selector {} (every key must be exactly {} bytes)",
                key.len(),
                self.spec_string(),
                self.k
            ))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use free_corpus::MemCorpus;

    #[test]
    fn all_keys_have_length_k() {
        let corpus = MemCorpus::from_docs(vec![b"abcdefg".to_vec(), b"xyzzy".to_vec()]);
        let sel = TrigramSelector::default()
            .select(&corpus, &SelectConfig::default())
            .unwrap();
        assert!(!sel.grams.is_empty());
        assert!(sel.grams.iter().all(|g| g.gram.len() == 3));
        assert_eq!(sel.stats.passes, 1);
    }

    #[test]
    fn check_key_flags_wrong_length() {
        let s = TrigramSelector { k: 3 };
        assert!(s.check_key(b"abc").is_none());
        assert!(s.check_key(b"ab").is_some());
        assert!(s.check_key(b"abcd").is_some());
    }

    #[test]
    fn k_zero_rejected() {
        let corpus = MemCorpus::from_docs(vec![b"abc".to_vec()]);
        let err = TrigramSelector { k: 0 }
            .select(&corpus, &SelectConfig::default())
            .unwrap_err();
        assert!(err.to_string().contains("at least 1"), "{err}");
    }

    #[test]
    fn spec_string_round_trip() {
        assert_eq!(TrigramSelector { k: 4 }.spec_string(), "trigram:k=4");
    }
}
