//! The "Complete" baseline of Table 3: one n-gram index for every
//! `n = 2..=max_gram_len`, i.e. an index entry for *every* distinct k-gram
//! occurring in the corpus.
//!
//! The paper builds this as the gold standard — any substring of a query
//! (up to the cutoff) can be looked up — and shows it is an order of
//! magnitude larger than the multigram index while only ~32 % faster.

use crate::{Result, SelectedGram};
use free_corpus::Corpus;
use rustc_hash::FxHashMap;

/// Enumerates every distinct k-gram for `k = min_len..=max_len` with its
/// document frequency, sorted lexicographically.
///
/// The paper's complete index spans `k = 2..=10`; pass `min_len = 2`.
pub fn enumerate_complete(
    corpus: &dyn Corpus,
    min_len: usize,
    max_len: usize,
) -> Result<Vec<SelectedGram>> {
    assert!(min_len >= 1 && min_len <= max_len);
    struct Cell {
        count: u32,
        last_doc: u32,
    }
    let mut counts: FxHashMap<Box<[u8]>, Cell> = FxHashMap::default();
    corpus.scan(&mut |doc, bytes| {
        for i in 0..bytes.len() {
            for m in min_len..=max_len {
                let end = i + m;
                if end > bytes.len() {
                    break;
                }
                let gram = &bytes[i..end];
                match counts.get_mut(gram) {
                    Some(cell) => {
                        if cell.last_doc != doc {
                            cell.last_doc = doc;
                            cell.count += 1;
                        }
                    }
                    None => {
                        counts.insert(
                            gram.into(),
                            Cell {
                                count: 1,
                                last_doc: doc,
                            },
                        );
                    }
                }
            }
        }
        true
    })?;
    let mut out: Vec<SelectedGram> = counts
        .into_iter()
        .map(|(gram, cell)| SelectedGram {
            gram,
            doc_count: cell.count,
        })
        .collect();
    out.sort_by(|a, b| a.gram.cmp(&b.gram));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use free_corpus::MemCorpus;

    #[test]
    fn enumerates_all_grams() {
        let corpus = MemCorpus::from_docs(vec![b"abab".to_vec(), b"ba".to_vec()]);
        let grams = enumerate_complete(&corpus, 2, 3).unwrap();
        let keys: Vec<String> = grams
            .iter()
            .map(|g| String::from_utf8_lossy(&g.gram).into_owned())
            .collect();
        assert_eq!(keys, vec!["ab", "aba", "ba", "bab"]);
        // "ab" occurs in doc 0 only; "ba" in both.
        let find = |k: &str| {
            grams
                .iter()
                .find(|g| &*g.gram == k.as_bytes())
                .unwrap()
                .doc_count
        };
        assert_eq!(find("ab"), 1);
        assert_eq!(find("ba"), 2);
        assert_eq!(find("aba"), 1);
    }

    #[test]
    fn doc_frequency_not_occurrence_count() {
        let corpus = MemCorpus::from_docs(vec![b"xxxxxx".to_vec()]);
        let grams = enumerate_complete(&corpus, 2, 2).unwrap();
        assert_eq!(grams.len(), 1);
        assert_eq!(grams[0].doc_count, 1); // five occurrences, one doc
    }

    #[test]
    fn respects_length_bounds() {
        let corpus = MemCorpus::from_docs(vec![b"abcdef".to_vec()]);
        let grams = enumerate_complete(&corpus, 3, 4).unwrap();
        assert!(grams.iter().all(|g| (3..=4).contains(&g.gram.len())));
        // 4 trigrams + 3 tetragrams.
        assert_eq!(grams.len(), 7);
    }

    #[test]
    fn empty_corpus() {
        let corpus = MemCorpus::new();
        assert!(enumerate_complete(&corpus, 2, 10).unwrap().is_empty());
    }

    #[test]
    fn short_docs_skipped_gracefully() {
        let corpus = MemCorpus::from_docs(vec![b"a".to_vec(), b"ab".to_vec()]);
        let grams = enumerate_complete(&corpus, 2, 5).unwrap();
        assert_eq!(grams.len(), 1);
        assert_eq!(&*grams[0].gram, b"ab");
    }
}
