//! Budgeted FREE variant: sweep the usefulness threshold `c` under an
//! index-size budget.
//!
//! The paper fixes `c = 0.1` and suggests tying it to the I/O cost
//! ratio; in practice operators have a disk budget, not a selectivity
//! intuition. This strategy mines at several thresholds along a grid,
//! estimates the on-disk index size each selection would produce, and
//! keeps the selection with the most index keys that still fits the
//! budget — more keys means more query literals find a useful gram, so
//! within the budget, denser dictionaries win. If no grid point fits,
//! the smallest selection is kept (over budget, but the best we can do).
//!
//! The sweep clamps away degenerate grid points: any `c` where
//! `floor(c*N) = 0` makes *every* occurring gram useless (its document
//! count is at least 1) and would mine an empty dictionary, so those
//! candidates are skipped — and if the whole grid collapses that way
//! (tiny corpora), the sweep falls back to the smallest non-degenerate
//! threshold `c = 1/N`.

use crate::apriori::mine_filtered;
use crate::{GramSelector, MiningStats, Result, SelectConfig, SelectedGram, Selection};
use free_corpus::Corpus;

/// Default number of grid points in the threshold sweep.
pub const DEFAULT_SWEEP_STEPS: usize = 8;

/// Estimated on-disk footprint of a selection: per-key dictionary entry
/// (key bytes + fixed overhead) plus one delta-encoded posting per
/// containing document (~4 bytes each, the builder's ballpark).
pub fn estimate_index_bytes(grams: &[SelectedGram]) -> u64 {
    grams
        .iter()
        .map(|g| g.gram.len() as u64 + 16 + u64::from(g.doc_count) * 4)
        .sum()
}

/// Sweeps `c` under an index-size budget.
#[derive(Clone, Debug, PartialEq)]
pub struct BudgetedSelector {
    /// Maximum estimated index size in bytes.
    pub budget: u64,
    /// Upper end of the sweep; defaults to the config's threshold.
    pub c: Option<f64>,
    /// Number of grid points between `c_hi/steps` and `c_hi`.
    pub steps: usize,
}

impl Default for BudgetedSelector {
    fn default() -> Self {
        BudgetedSelector {
            budget: 64 * 1024 * 1024,
            c: None,
            steps: DEFAULT_SWEEP_STEPS,
        }
    }
}

impl GramSelector for BudgetedSelector {
    fn name(&self) -> &'static str {
        "budgeted"
    }

    fn spec_string(&self) -> String {
        let mut s = format!("budgeted:budget={}", self.budget);
        if let Some(c) = self.c {
            s.push_str(&format!(",c={c}"));
        }
        s.push_str(&format!(",steps={}", self.steps));
        s
    }

    fn select(&self, corpus: &dyn Corpus, config: &SelectConfig) -> Result<Selection> {
        config.validate()?;
        let n = corpus.len();
        let c_hi = self.c.unwrap_or(config.usefulness_threshold);
        if n == 0 {
            return mine_filtered(corpus, config, c_hi, None);
        }

        // Distinct usable thresholds along the grid, highest first.
        // floor(c*N) = 0 grid points are skipped (the satellite fix: they
        // would make every gram useless); duplicate floors are deduped so
        // we never mine the same integer threshold twice.
        let steps = self.steps.max(1);
        let mut grid: Vec<f64> = (1..=steps)
            .rev()
            .map(|i| c_hi * i as f64 / steps as f64)
            .filter(|c| (*c * n as f64).floor() >= 1.0)
            .collect();
        if grid.is_empty() {
            // Whole grid degenerate: fall back to the smallest threshold
            // that can keep anything at all.
            grid.push(1.0 / n as f64);
        }
        grid.dedup_by_key(|c| (*c * n as f64).floor() as u64);

        let mut stats = MiningStats::default();
        let mut best_fit: Option<(f64, u64, Selection)> = None;
        let mut smallest: Option<(f64, u64, Selection)> = None;
        for c in grid {
            let sel = mine_filtered(corpus, config, c, None)?;
            stats.passes += sel.stats.passes;
            stats.candidates_counted += sel.stats.candidates_counted;
            stats.candidates_skipped += sel.stats.candidates_skipped;
            stats.per_pass.extend(sel.stats.per_pass.iter().cloned());
            let est = estimate_index_bytes(&sel.grams);
            config.tracer.event(
                "select.budgeted.sweep",
                vec![
                    ("c", c.into()),
                    ("grams_kept", (sel.grams.len() as u64).into()),
                    ("est_bytes", est.into()),
                    ("fits", (est <= self.budget).into()),
                ],
            );
            if est <= self.budget
                && best_fit
                    .as_ref()
                    .map(|(_, _, b)| sel.grams.len() > b.grams.len())
                    .unwrap_or(true)
            {
                best_fit = Some((c, est, sel.clone()));
            }
            if smallest.as_ref().map(|(_, e, _)| est < *e).unwrap_or(true) {
                smallest = Some((c, est, sel));
            }
        }

        // Unwrap is safe: the grid is non-empty so at least `smallest` is
        // set; spelled as an error to satisfy the lint contract.
        let (chosen_c, est, mut selection) = match best_fit.or(smallest) {
            Some(chosen) => chosen,
            None => {
                return Err(crate::Error::Config(
                    "budgeted sweep produced no candidates".into(),
                ))
            }
        };
        config.tracer.event(
            "select.budgeted.chosen",
            vec![
                ("c", chosen_c.into()),
                ("est_bytes", est.into()),
                ("budget", self.budget.into()),
                ("grams_kept", (selection.grams.len() as u64).into()),
            ],
        );
        selection.stats = stats;
        Ok(selection)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use free_corpus::MemCorpus;

    fn corpus() -> MemCorpus {
        MemCorpus::from_docs(
            (0..40)
                .map(|i| format!("alpha beta gamma needle{} filler {}", i % 7, i % 3).into_bytes())
                .collect(),
        )
    }

    #[test]
    fn large_budget_matches_plain_mining() {
        let c = corpus();
        let cfg = SelectConfig::default();
        let budgeted = BudgetedSelector {
            budget: u64::MAX,
            c: Some(0.2),
            steps: 4,
        }
        .select(&c, &cfg)
        .unwrap();
        let plain = mine_filtered(&c, &cfg, 0.2, None).unwrap();
        assert_eq!(budgeted.grams, plain.grams);
    }

    #[test]
    fn tight_budget_shrinks_or_matches_index() {
        let c = corpus();
        let cfg = SelectConfig::default();
        let loose = BudgetedSelector {
            budget: u64::MAX,
            c: Some(0.2),
            steps: 4,
        }
        .select(&c, &cfg)
        .unwrap();
        let tight = BudgetedSelector {
            budget: estimate_index_bytes(&loose.grams) / 2,
            c: Some(0.2),
            steps: 4,
        }
        .select(&c, &cfg)
        .unwrap();
        // Tight budget never yields a bigger estimated index than what it
        // was constrained against, unless nothing fit at all.
        let est = estimate_index_bytes(&tight.grams);
        let loose_est = estimate_index_bytes(&loose.grams);
        assert!(est <= loose_est, "{est} > {loose_est}");
    }

    #[test]
    fn degenerate_grid_points_are_skipped() {
        // 4 docs with c_hi = 0.2: most grid points have floor(c*N) = 0.
        // The sweep must still select something (threshold 1 doc).
        let c = MemCorpus::from_docs(vec![
            b"aaaa".to_vec(),
            b"aaaa".to_vec(),
            b"aaaa".to_vec(),
            b"aazb".to_vec(),
        ]);
        let sel = BudgetedSelector {
            budget: u64::MAX,
            c: Some(0.2),
            steps: 8,
        }
        .select(&c, &SelectConfig::default())
        .unwrap();
        assert!(
            sel.grams.iter().any(|g| &*g.gram == b"z"),
            "rare gram should survive the degenerate-grid clamp: {:?}",
            sel.grams
        );
    }

    #[test]
    fn tiny_corpus_falls_back_to_one_over_n() {
        // N=3, c_hi=0.2 → every grid point has floor(c*N)=0; the sweep
        // falls back to c=1/3 instead of mining an empty dictionary.
        let c = MemCorpus::from_docs(vec![b"xxq".to_vec(), b"xxx".to_vec(), b"xxx".to_vec()]);
        let sel = BudgetedSelector {
            budget: u64::MAX,
            c: Some(0.2),
            steps: 8,
        }
        .select(&c, &SelectConfig::default())
        .unwrap();
        assert!(!sel.grams.is_empty(), "fallback threshold should keep 'q'");
    }

    #[test]
    fn output_is_prefix_free() {
        let c = corpus();
        let sel = BudgetedSelector::default()
            .select(&c, &SelectConfig::default())
            .unwrap();
        for a in &sel.grams {
            for b in &sel.grams {
                if a.gram != b.gram {
                    assert!(!b.gram.starts_with(&a.gram));
                }
            }
        }
    }

    #[test]
    fn spec_string_round_trip() {
        let s = BudgetedSelector {
            budget: 1024,
            c: Some(0.25),
            steps: 4,
        };
        assert_eq!(s.spec_string(), "budgeted:budget=1024,c=0.25,steps=4");
    }
}
