//! Workload-aware gram selection: mine only what the queries need.
//!
//! A-priori mining indexes every minimal useful gram whether or not any
//! query will ever look it up. Given a captured query log (a qlog
//! directory written by the engine's query-record hook), this strategy
//! restricts the candidate universe to substrings of the literal runs
//! occurring in the *recorded patterns*, weighted by how often each
//! pattern ran and boosted when the record was flagged slow — so the
//! dictionary spends its bytes where the workload concentrates, and a
//! hot pattern that keeps degrading to a scan pulls its literals into
//! the index.
//!
//! Soundness is unaffected: the planner consults the index's actual key
//! set, so queries outside the captured workload simply plan closer to a
//! scan. Within the filtered universe the selection is still the minimal
//! useful grams (the candidate set is substring-closed, so the a-priori
//! minimality argument goes through unchanged) and therefore prefix
//! free.

use std::collections::HashMap;
use std::path::PathBuf;

use crate::apriori::mine_filtered;
use crate::{Error, GramSelector, Result, SelectConfig, Selection};
use free_corpus::Corpus;
use free_regex::Ast;

/// Weight multiplier for patterns whose records were flagged slow.
const SLOW_BONUS: u64 = 4;

/// Mines candidate grams from a captured qlog directory.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadSelector {
    /// Directory holding qlog segments (PR 8's `free search --query-log`).
    pub qlog: PathBuf,
    /// Overrides [`SelectConfig::usefulness_threshold`] when set.
    pub c: Option<f64>,
    /// Keep only the `max_grams` highest-weighted grams (0 = unlimited).
    /// A subset of a prefix-free set is prefix free, and dropping grams
    /// only weakens plans, never correctness.
    pub max_grams: usize,
}

/// A recorded pattern with its accumulated weight.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WeightedPattern {
    /// The regex pattern text.
    pub pattern: String,
    /// `count + SLOW_BONUS * slow_count`.
    pub weight: u64,
}

/// Extracts `"key":"value"` string fields from a machine-emitted JSON
/// record, decoding standard escapes. Best effort: qlog records are
/// compact single-object lines, so a plain search for the quoted key is
/// reliable; a mis-extracted pattern only perturbs candidate weights,
/// never query results.
fn json_string_field(record: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":");
    let start = record.find(&needle)? + needle.len();
    let rest = record.get(start..)?.trim_start();
    let mut chars = rest.char_indices();
    match chars.next() {
        Some((_, '"')) => {}
        _ => return None,
    }
    let mut out = String::new();
    let mut escaped = false;
    let mut unicode: Option<String> = None;
    for (_, ch) in chars {
        if let Some(hex) = &mut unicode {
            hex.push(ch);
            if hex.len() == 4 {
                if let Some(cp) = u32::from_str_radix(hex, 16).ok().and_then(char::from_u32) {
                    out.push(cp);
                }
                unicode = None;
            }
            continue;
        }
        if escaped {
            match ch {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                '/' => out.push('/'),
                'b' => out.push('\u{8}'),
                'f' => out.push('\u{c}'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => unicode = Some(String::new()),
                other => out.push(other),
            }
            escaped = false;
            continue;
        }
        match ch {
            '\\' => escaped = true,
            '"' => return Some(out),
            other => out.push(other),
        }
    }
    None
}

/// Extracts a bare `"key":true|false` field.
fn json_bool_field(record: &str, key: &str) -> Option<bool> {
    let needle = format!("\"{key}\":");
    let start = record.find(&needle)? + needle.len();
    let rest = record.get(start..)?.trim_start();
    if rest.starts_with("true") {
        Some(true)
    } else if rest.starts_with("false") {
        Some(false)
    } else {
        None
    }
}

/// Reads every trusted record in a qlog directory and aggregates the
/// recorded patterns with their weights.
pub fn weighted_patterns(qlog: &std::path::Path) -> Result<Vec<WeightedPattern>> {
    if !qlog.is_dir() {
        return Err(Error::Config(format!(
            "qlog directory {} does not exist; capture one with \
             `free search --query-log DIR ...` first",
            qlog.display()
        )));
    }
    let segments = free_trace::qlog::read_dir(qlog).map_err(|e| Error::Io {
        context: format!("read qlog directory {}", qlog.display()),
        source: e,
    })?;
    let mut weights: HashMap<String, u64> = HashMap::new();
    for seg in &segments {
        for record in seg.trusted_records() {
            let Some(pattern) = json_string_field(record, "pattern") else {
                continue;
            };
            let slow = json_bool_field(record, "slow").unwrap_or(false);
            let w = 1 + if slow { SLOW_BONUS } else { 0 };
            *weights.entry(pattern).or_insert(0) += w;
        }
    }
    let mut out: Vec<WeightedPattern> = weights
        .into_iter()
        .map(|(pattern, weight)| WeightedPattern { pattern, weight })
        .collect();
    out.sort_by(|a, b| b.weight.cmp(&a.weight).then(a.pattern.cmp(&b.pattern)));
    Ok(out)
}

/// Collects the maximal literal byte runs a pattern can require.
///
/// Walks the AST: singleton classes extend the current run; anything
/// else (wide classes, alternation, repetition boundaries) flushes it.
/// Alternate branches and repeat bodies are walked in their own runs, so
/// `(error|warn)+` contributes both `error` and `warn`. Over-collecting
/// is harmless — a run that a match does not actually require only adds
/// candidates, and candidates still face the usefulness test.
pub fn literal_runs(ast: &Ast) -> Vec<Vec<u8>> {
    fn flush(run: &mut Vec<u8>, out: &mut Vec<Vec<u8>>) {
        if !run.is_empty() {
            out.push(std::mem::take(run));
        }
    }
    fn walk(node: &Ast, run: &mut Vec<u8>, out: &mut Vec<Vec<u8>>) {
        match node {
            Ast::Empty => {}
            Ast::Class(class) => match class.as_singleton() {
                Some(b) => run.push(b),
                None => flush(run, out),
            },
            Ast::Concat(children) => {
                for child in children {
                    walk(child, run, out);
                }
            }
            Ast::Alternate(children) => {
                flush(run, out);
                for child in children {
                    let mut branch = Vec::new();
                    walk(child, &mut branch, out);
                    flush(&mut branch, out);
                }
            }
            Ast::Repeat { node, .. } => {
                flush(run, out);
                let mut body = Vec::new();
                walk(node, &mut body, out);
                flush(&mut body, out);
            }
        }
    }
    let mut out = Vec::new();
    let mut run = Vec::new();
    walk(ast, &mut run, &mut out);
    flush(&mut run, &mut out);
    out
}

impl WorkloadSelector {
    /// Builds the substring-closed candidate universe with per-gram
    /// weights from the recorded patterns.
    fn candidate_weights(
        &self,
        patterns: &[WeightedPattern],
        max_gram_len: usize,
    ) -> HashMap<Vec<u8>, u64> {
        let mut weights: HashMap<Vec<u8>, u64> = HashMap::new();
        for wp in patterns {
            let Ok(ast) = free_regex::parse(&wp.pattern) else {
                continue; // unparseable record; skip, soundness unaffected
            };
            let mut seen_this_pattern: HashMap<Vec<u8>, ()> = HashMap::new();
            for run in literal_runs(&ast) {
                for start in 0..run.len() {
                    for end in start + 1..=run.len().min(start + max_gram_len) {
                        seen_this_pattern.insert(run[start..end].to_vec(), ());
                    }
                }
            }
            for gram in seen_this_pattern.into_keys() {
                *weights.entry(gram).or_insert(0) += wp.weight;
            }
        }
        weights
    }
}

impl GramSelector for WorkloadSelector {
    fn name(&self) -> &'static str {
        "workload"
    }

    fn spec_string(&self) -> String {
        let mut s = format!("workload:qlog={}", self.qlog.display());
        if let Some(c) = self.c {
            s.push_str(&format!(",c={c}"));
        }
        if self.max_grams > 0 {
            s.push_str(&format!(",max_grams={}", self.max_grams));
        }
        s
    }

    fn select(&self, corpus: &dyn Corpus, config: &SelectConfig) -> Result<Selection> {
        config.validate()?;
        let patterns = weighted_patterns(&self.qlog)?;
        if patterns.is_empty() {
            return Err(Error::Config(format!(
                "qlog directory {} holds no query records; capture a workload with \
                 `free search --query-log {}` (or point --selector workload:qlog=DIR \
                 at a populated log) before building a workload-aware index",
                self.qlog.display(),
                self.qlog.display()
            )));
        }
        let candidates = self.candidate_weights(&patterns, config.max_gram_len);
        if candidates.is_empty() {
            return Err(Error::Config(format!(
                "no literal grams could be extracted from the {} recorded pattern(s) in {}; \
                 a workload of pure wildcard queries cannot seed an index — use \
                 --selector apriori instead",
                patterns.len(),
                self.qlog.display()
            )));
        }
        let c = self.c.unwrap_or(config.usefulness_threshold);
        let filter = |gram: &[u8]| candidates.contains_key(gram);
        let mut selection = mine_filtered(corpus, config, c, Some(&filter))?;
        config.tracer.event(
            "select.workload",
            vec![
                ("patterns", (patterns.len() as u64).into()),
                ("candidates", (candidates.len() as u64).into()),
                ("grams_kept", (selection.grams.len() as u64).into()),
            ],
        );
        if self.max_grams > 0 && selection.grams.len() > self.max_grams {
            // Keep the highest-weighted grams; ties broken lexicographically
            // for determinism. Subset of prefix-free stays prefix free.
            selection.grams.sort_by(|a, b| {
                let wa = candidates.get(&*a.gram).copied().unwrap_or(0);
                let wb = candidates.get(&*b.gram).copied().unwrap_or(0);
                wb.cmp(&wa).then(a.gram.cmp(&b.gram))
            });
            selection.grams.truncate(self.max_grams);
            selection.grams.sort_by(|a, b| a.gram.cmp(&b.gram));
        }
        Ok(selection)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use free_corpus::MemCorpus;
    use free_trace::qlog::LogWriter;
    use std::path::Path;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "free-select-workload-{name}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn record(pattern: &str, slow: bool) -> String {
        format!("{{\"type\":\"query\",\"ts_ms\":1,\"source\":\"test\",\"pattern\":\"{}\",\"slow\":{slow}}}", pattern)
    }

    fn write_qlog(dir: &Path, records: &[String]) {
        let w = LogWriter::create(dir).unwrap();
        for r in records {
            w.emit(r.clone());
        }
        w.close();
    }

    #[test]
    fn json_field_extraction_handles_escapes() {
        let rec = r#"{"type":"query","pattern":"a\"b\\c\nd","slow":true}"#;
        assert_eq!(
            json_string_field(rec, "pattern").unwrap(),
            "a\"b\\c\nd".to_string()
        );
        assert_eq!(json_bool_field(rec, "slow"), Some(true));
        assert_eq!(json_string_field(rec, "missing"), None);
    }

    #[test]
    fn literal_runs_from_patterns() {
        let runs = |p: &str| -> Vec<String> {
            literal_runs(&free_regex::parse(p).unwrap())
                .into_iter()
                .map(|r| String::from_utf8_lossy(&r).into_owned())
                .collect()
        };
        assert_eq!(runs("needle"), vec!["needle"]);
        assert_eq!(runs("(error|warn)+"), vec!["error", "warn"]);
        let mp3 = runs(r"\.mp3.*download");
        assert!(mp3.contains(&".mp3".to_string()), "{mp3:?}");
        assert!(mp3.contains(&"download".to_string()), "{mp3:?}");
        assert!(runs(".*").is_empty());
    }

    #[test]
    fn mines_only_workload_relevant_grams() {
        let dir = temp_dir("relevant");
        write_qlog(&dir, &[record("needle", false), record("needle", false)]);
        let corpus = MemCorpus::from_docs(
            (0..20)
                .map(|i| {
                    if i < 5 {
                        format!("haystack needle{i} words").into_bytes()
                    } else {
                        format!("haystack filler words {i}").into_bytes()
                    }
                })
                .collect(),
        );
        let sel = WorkloadSelector {
            qlog: dir.clone(),
            c: Some(0.5),
            max_grams: 0,
        }
        .select(&corpus, &SelectConfig::default())
        .unwrap();
        assert!(!sel.grams.is_empty());
        for g in &sel.grams {
            assert!(
                b"needle".windows(g.gram.len()).any(|w| w == &*g.gram),
                "gram {:?} outside the workload universe",
                String::from_utf8_lossy(&g.gram)
            );
        }
        // Prefix free.
        for a in &sel.grams {
            for b in &sel.grams {
                if a.gram != b.gram {
                    assert!(!b.gram.starts_with(&a.gram));
                }
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn slow_records_weigh_more() {
        let dir = temp_dir("slow");
        write_qlog(&dir, &[record("abc", true), record("xyz", false)]);
        let ps = weighted_patterns(&dir).unwrap();
        assert_eq!(ps.len(), 2);
        assert_eq!(ps[0].pattern, "abc");
        assert!(ps[0].weight > ps[1].weight);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_dir_is_config_error() {
        let err = WorkloadSelector {
            qlog: PathBuf::from("/nonexistent/qlog-dir"),
            c: None,
            max_grams: 0,
        }
        .select(&MemCorpus::new(), &SelectConfig::default())
        .unwrap_err();
        assert!(err.to_string().contains("does not exist"), "{err}");
    }

    #[test]
    fn empty_qlog_is_config_error_with_hint() {
        let dir = temp_dir("empty");
        write_qlog(&dir, &[]);
        let err = WorkloadSelector {
            qlog: dir.clone(),
            c: None,
            max_grams: 0,
        }
        .select(&MemCorpus::new(), &SelectConfig::default())
        .unwrap_err();
        assert!(err.to_string().contains("--query-log"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn max_grams_caps_and_stays_prefix_free() {
        let dir = temp_dir("cap");
        write_qlog(&dir, &[record("needle", true), record("haystack", false)]);
        let corpus = MemCorpus::from_docs(
            (0..20)
                .map(|i| {
                    if i % 2 == 0 {
                        format!("needle{i} pad").into_bytes()
                    } else {
                        format!("haystack{i} pad").into_bytes()
                    }
                })
                .collect(),
        );
        let full = WorkloadSelector {
            qlog: dir.clone(),
            c: Some(0.5),
            max_grams: 0,
        }
        .select(&corpus, &SelectConfig::default())
        .unwrap();
        let capped = WorkloadSelector {
            qlog: dir.clone(),
            c: Some(0.5),
            max_grams: 2,
        }
        .select(&corpus, &SelectConfig::default())
        .unwrap();
        assert!(full.grams.len() > 2);
        assert_eq!(capped.grams.len(), 2);
        // Capped set is a subset of the full set.
        for g in &capped.grams {
            assert!(full.grams.contains(g));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
