//! §3.2: the presuf shell (shortest common suffix rule).
//!
//! Any gram obtained by *prepending* characters to a useful gram is also
//! useful, so a multigram selection often contains many keys that share a
//! discriminating suffix (the paper's example: `<a href="k`, `a href="k`,
//! …, `="k` — only the last carries the selectivity). The presuf shell
//! keeps, for every key, only its shortest suffix that is itself a key,
//! producing a set that is both prefix-free and suffix-free
//! (Definition 3.12) while still containing a substring of every useful
//! gram (Observation 3.14).
//!
//! Implementation is Observation 3.13's recipe: reverse all keys, sort
//! lexicographically, and sweep — a reversed key is dropped when the most
//! recently kept reversed key is its prefix (i.e. a suffix in the
//! original orientation). `O(|X| log |X|)`.

use crate::SelectedGram;

/// Computes the presuf shell of a prefix-free gram set.
///
/// The input must be prefix free (which [`crate::mine_multigrams`] output
/// is, by Theorem 3.9(3)); the result is then the unique presuf shell.
pub fn presuf_shell(grams: &[SelectedGram]) -> Vec<SelectedGram> {
    // Reverse and sort.
    let mut reversed: Vec<(Vec<u8>, &SelectedGram)> = grams
        .iter()
        .map(|g| {
            let mut r = g.gram.to_vec();
            r.reverse();
            (r, g)
        })
        .collect();
    reversed.sort_by(|a, b| a.0.cmp(&b.0));

    let mut kept: Vec<SelectedGram> = Vec::new();
    let mut last_kept: Option<Vec<u8>> = None;
    for (rev, g) in reversed {
        let is_covered = match &last_kept {
            Some(prev) => rev.starts_with(prev),
            None => false,
        };
        if !is_covered {
            last_kept = Some(rev);
            kept.push(g.clone());
        }
    }
    kept.sort_by(|a, b| a.gram.cmp(&b.gram));
    kept
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grams(keys: &[&str]) -> Vec<SelectedGram> {
        keys.iter()
            .map(|k| SelectedGram {
                gram: k.as_bytes().into(),
                doc_count: 1,
            })
            .collect()
    }

    fn keys(sel: &[SelectedGram]) -> Vec<String> {
        sel.iter()
            .map(|g| String::from_utf8_lossy(&g.gram).into_owned())
            .collect()
    }

    fn is_suffix_free(sel: &[SelectedGram]) -> bool {
        for a in sel {
            for b in sel {
                if a.gram != b.gram && b.gram.ends_with(&a.gram) {
                    return false;
                }
            }
        }
        true
    }

    #[test]
    fn paper_example_3_10() {
        // All the keys share the discriminating suffix `="k`; only it
        // survives.
        let input = grams(&["<a href=\"k", "a href=\"k", " href=\"k", "href=\"k", "=\"k"]);
        let shell = presuf_shell(&input);
        assert_eq!(keys(&shell), vec!["=\"k"]);
    }

    #[test]
    fn unrelated_keys_survive() {
        let input = grams(&["abc", "xyz", "mno"]);
        let shell = presuf_shell(&input);
        assert_eq!(shell.len(), 3);
    }

    #[test]
    fn shell_is_suffix_free() {
        let input = grams(&["ton", "aton", "baton", "on", "ba", "tuba"]);
        let shell = presuf_shell(&input);
        assert!(is_suffix_free(&shell), "{:?}", keys(&shell));
        // "on" covers ton/aton/baton; "ba" and "tuba" both end... "ba" is a
        // suffix of "tuba", so only "ba" survives of those two.
        assert_eq!(keys(&shell), vec!["ba", "on"]);
    }

    #[test]
    fn every_input_has_a_suffix_in_shell() {
        // Definition 3.12 condition 1.
        let input = grams(&["clinton", "linton", "inton", "nton", "gore", "ore", "potus"]);
        let shell = presuf_shell(&input);
        for g in &input {
            assert!(
                shell.iter().any(|s| g.gram.ends_with(&s.gram)),
                "{:?} uncovered by {:?}",
                String::from_utf8_lossy(&g.gram),
                keys(&shell)
            );
        }
        assert!(is_suffix_free(&shell));
    }

    #[test]
    fn shell_is_subset_of_input() {
        // Definition 3.12 condition 3.
        let input = grams(&["needle", "dle", "xyzzy", "zy"]);
        let shell = presuf_shell(&input);
        for s in &shell {
            assert!(input.iter().any(|g| g.gram == s.gram));
        }
    }

    #[test]
    fn empty_and_singleton() {
        assert!(presuf_shell(&[]).is_empty());
        let one = grams(&["solo"]);
        assert_eq!(presuf_shell(&one).len(), 1);
    }

    #[test]
    fn identical_suffix_chains_keep_shortest() {
        let input = grams(&["a", "ba", "cba", "dcba"]);
        let shell = presuf_shell(&input);
        assert_eq!(keys(&shell), vec!["a"]);
    }

    #[test]
    fn output_sorted_lexicographically() {
        let input = grams(&["zz", "aa", "mm"]);
        let shell = presuf_shell(&input);
        assert_eq!(keys(&shell), vec!["aa", "mm", "zz"]);
    }

    #[test]
    fn doc_counts_preserved() {
        let mut input = grams(&["rare", "are"]);
        input[0].doc_count = 5;
        input[1].doc_count = 17;
        let shell = presuf_shell(&input);
        assert_eq!(shell.len(), 1);
        assert_eq!(&*shell[0].gram, b"are");
        assert_eq!(shell[0].doc_count, 17);
    }
}
