//! Selector identity and parameters as a parse/print round-trippable
//! value.
//!
//! The spec travels three ways: parsed from `--selector NAME[:k=v,...]`
//! on the command line, persisted as a single `selector=` line in the
//! batch manifest and the live/sharded manifests, and re-hydrated when a
//! segment is re-mined during flush or compaction. `parse(display(s))`
//! is the identity, so what fsck reads back is exactly what the build
//! was configured with.
//!
//! All parameter validation happens here, at parse time — `k=0`, `c`
//! outside `(0,1]`, a zero budget, or an empty qlog path are usage
//! errors with actionable messages, mirroring the `--shards 0`
//! precedent, so a degenerate sweep can never reach the miner.

use core::fmt;
use std::path::PathBuf;

use crate::budgeted::DEFAULT_SWEEP_STEPS;
use crate::{
    AprioriSelector, BudgetedSelector, Error, GramSelector, Result, TrigramSelector,
    WorkloadSelector,
};

/// Maximum fixed gram length accepted for the trigram family.
pub const MAX_FIXED_K: usize = 16;

/// Which gram-selection strategy to run, with its parameters.
#[derive(Clone, Debug, PartialEq)]
pub enum SelectorSpec {
    /// Algorithm 3.1 (the default); `c` overrides the engine threshold.
    Apriori {
        /// Optional usefulness-threshold override.
        c: Option<f64>,
    },
    /// Every distinct gram of exactly length `k`.
    Trigram {
        /// The fixed gram length.
        k: usize,
    },
    /// Threshold sweep under an index-size budget.
    Budgeted {
        /// Maximum estimated index bytes.
        budget: u64,
        /// Upper end of the sweep (defaults to the engine threshold).
        c: Option<f64>,
        /// Grid points in the sweep.
        steps: usize,
    },
    /// Candidates mined from a captured qlog directory.
    Workload {
        /// The qlog directory.
        qlog: PathBuf,
        /// Optional usefulness-threshold override.
        c: Option<f64>,
        /// Keep only the top-weighted grams (0 = unlimited).
        max_grams: usize,
    },
}

impl Default for SelectorSpec {
    fn default() -> Self {
        SelectorSpec::Apriori { c: None }
    }
}

fn parse_c(value: &str) -> Result<f64> {
    let c: f64 = value
        .parse()
        .map_err(|_| Error::Config(format!("selector parameter c={value:?} is not a number")))?;
    if !(c > 0.0 && c <= 1.0) {
        return Err(Error::Config(format!(
            "selector parameter c must be in (0, 1], got {value} — at c <= 0 \
             every gram is useless (floor(c*N) = 0 keeps nothing)"
        )));
    }
    Ok(c)
}

fn parse_usize(key: &str, value: &str) -> Result<usize> {
    value.parse().map_err(|_| {
        Error::Config(format!(
            "selector parameter {key}={value:?} is not a non-negative integer"
        ))
    })
}

/// Parses a byte count with an optional `k`/`m`/`g` (KiB/MiB/GiB) suffix.
fn parse_budget(value: &str) -> Result<u64> {
    let (digits, mult) = match value.as_bytes().last() {
        Some(b'k') | Some(b'K') => (&value[..value.len() - 1], 1024u64),
        Some(b'm') | Some(b'M') => (&value[..value.len() - 1], 1024 * 1024),
        Some(b'g') | Some(b'G') => (&value[..value.len() - 1], 1024 * 1024 * 1024),
        _ => (value, 1),
    };
    let n: u64 = digits.parse().map_err(|_| {
        Error::Config(format!(
            "selector parameter budget={value:?} is not a byte count \
             (use a plain integer or a k/m/g suffix, e.g. budget=64m)"
        ))
    })?;
    let bytes = n.saturating_mul(mult);
    if bytes == 0 {
        return Err(Error::Config(
            "selector parameter budget must be at least 1 byte (a zero budget \
             fits no index)"
                .into(),
        ));
    }
    Ok(bytes)
}

impl SelectorSpec {
    /// Parses `NAME[:k=v,...]` syntax, validating every parameter.
    pub fn parse(spec: &str) -> Result<SelectorSpec> {
        let (name, params_str) = match spec.split_once(':') {
            Some((n, p)) => (n, Some(p)),
            None => (spec, None),
        };
        let mut params: Vec<(&str, &str)> = Vec::new();
        if let Some(p) = params_str {
            for part in p.split(',') {
                let Some((key, value)) = part.split_once('=') else {
                    return Err(Error::Config(format!(
                        "selector parameter {part:?} is not key=value (expected \
                         NAME:k1=v1,k2=v2,... syntax)"
                    )));
                };
                if value.is_empty() {
                    return Err(Error::Config(format!(
                        "selector parameter {key} has an empty value"
                    )));
                }
                params.push((key, value));
            }
        }

        let unknown = |key: &str, valid: &str| {
            Error::Config(format!(
                "unknown parameter {key:?} for selector {name:?} (valid: {valid})"
            ))
        };

        match name {
            "apriori" => {
                let mut c = None;
                for (key, value) in params {
                    match key {
                        "c" => c = Some(parse_c(value)?),
                        other => return Err(unknown(other, "c")),
                    }
                }
                Ok(SelectorSpec::Apriori { c })
            }
            "trigram" => {
                let mut k = 3usize;
                for (key, value) in params {
                    match key {
                        "k" => k = parse_usize("k", value)?,
                        other => return Err(unknown(other, "k")),
                    }
                }
                if k == 0 || k > MAX_FIXED_K {
                    return Err(Error::Config(format!(
                        "selector parameter k must be between 1 and {MAX_FIXED_K}, got {k}"
                    )));
                }
                Ok(SelectorSpec::Trigram { k })
            }
            "budgeted" => {
                let mut budget = None;
                let mut c = None;
                let mut steps = DEFAULT_SWEEP_STEPS;
                for (key, value) in params {
                    match key {
                        "budget" => budget = Some(parse_budget(value)?),
                        "c" => c = Some(parse_c(value)?),
                        "steps" => steps = parse_usize("steps", value)?,
                        other => return Err(unknown(other, "budget, c, steps")),
                    }
                }
                let Some(budget) = budget else {
                    return Err(Error::Config(
                        "selector budgeted requires a budget parameter, e.g. \
                         --selector budgeted:budget=64m"
                            .into(),
                    ));
                };
                if !(2..=64).contains(&steps) {
                    return Err(Error::Config(format!(
                        "selector parameter steps must be between 2 and 64, got {steps}"
                    )));
                }
                Ok(SelectorSpec::Budgeted { budget, c, steps })
            }
            "workload" => {
                let mut qlog = None;
                let mut c = None;
                let mut max_grams = 0usize;
                for (key, value) in params {
                    match key {
                        "qlog" => qlog = Some(PathBuf::from(value)),
                        "c" => c = Some(parse_c(value)?),
                        "max_grams" => max_grams = parse_usize("max_grams", value)?,
                        other => return Err(unknown(other, "qlog, c, max_grams")),
                    }
                }
                let Some(qlog) = qlog else {
                    return Err(Error::Config(
                        "selector workload requires a qlog directory, e.g. \
                         --selector workload:qlog=QLOG_DIR (capture one with \
                         `free search --query-log QLOG_DIR ...`)"
                            .into(),
                    ));
                };
                Ok(SelectorSpec::Workload { qlog, c, max_grams })
            }
            other => Err(Error::Config(format!(
                "unknown selector {other:?} (valid: apriori, trigram, budgeted, workload)"
            ))),
        }
    }

    /// Validates a directly-constructed spec (parse already validates).
    pub fn validate(&self) -> Result<()> {
        // Round-trip through the parser so both construction paths face
        // identical rules.
        let rendered = self.to_string();
        let parsed = SelectorSpec::parse(&rendered)?;
        if &parsed != self {
            return Err(Error::Config(format!(
                "selector spec {rendered:?} does not round-trip (parsed back as \
                 {parsed:?}); parameters out of range?"
            )));
        }
        Ok(())
    }

    /// The strategy's short name.
    pub fn name(&self) -> &'static str {
        match self {
            SelectorSpec::Apriori { .. } => "apriori",
            SelectorSpec::Trigram { .. } => "trigram",
            SelectorSpec::Budgeted { .. } => "budgeted",
            SelectorSpec::Workload { .. } => "workload",
        }
    }

    /// Whether this is the default spec (plain a-priori mining) —
    /// manifests omit the `selector=` line for it, keeping old indexes
    /// byte-identical.
    pub fn is_default(&self) -> bool {
        *self == SelectorSpec::default()
    }
}

impl fmt::Display for SelectorSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", selector_for(self).spec_string())
    }
}

/// Instantiates the strategy a spec describes.
pub fn selector_for(spec: &SelectorSpec) -> Box<dyn GramSelector> {
    match spec {
        SelectorSpec::Apriori { c } => Box::new(AprioriSelector { c: *c }),
        SelectorSpec::Trigram { k } => Box::new(TrigramSelector { k: *k }),
        SelectorSpec::Budgeted { budget, c, steps } => Box::new(BudgetedSelector {
            budget: *budget,
            c: *c,
            steps: *steps,
        }),
        SelectorSpec::Workload { qlog, c, max_grams } => Box::new(WorkloadSelector {
            qlog: qlog.clone(),
            c: *c,
            max_grams: *max_grams,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_defaults() {
        assert_eq!(
            SelectorSpec::parse("apriori").unwrap(),
            SelectorSpec::Apriori { c: None }
        );
        assert_eq!(
            SelectorSpec::parse("trigram").unwrap(),
            SelectorSpec::Trigram { k: 3 }
        );
    }

    #[test]
    fn parse_with_params() {
        assert_eq!(
            SelectorSpec::parse("apriori:c=0.05").unwrap(),
            SelectorSpec::Apriori { c: Some(0.05) }
        );
        assert_eq!(
            SelectorSpec::parse("trigram:k=4").unwrap(),
            SelectorSpec::Trigram { k: 4 }
        );
        assert_eq!(
            SelectorSpec::parse("budgeted:budget=64m,c=0.2,steps=4").unwrap(),
            SelectorSpec::Budgeted {
                budget: 64 * 1024 * 1024,
                c: Some(0.2),
                steps: 4
            }
        );
        assert_eq!(
            SelectorSpec::parse("workload:qlog=/tmp/qlog,max_grams=100").unwrap(),
            SelectorSpec::Workload {
                qlog: PathBuf::from("/tmp/qlog"),
                c: None,
                max_grams: 100
            }
        );
    }

    #[test]
    fn display_round_trips() {
        for spec in [
            SelectorSpec::Apriori { c: None },
            SelectorSpec::Apriori { c: Some(0.25) },
            SelectorSpec::Trigram { k: 3 },
            SelectorSpec::Budgeted {
                budget: 123_456,
                c: None,
                steps: 8,
            },
            SelectorSpec::Workload {
                qlog: PathBuf::from("logs/q"),
                c: Some(0.1),
                max_grams: 0,
            },
        ] {
            let rendered = spec.to_string();
            assert_eq!(
                SelectorSpec::parse(&rendered).unwrap(),
                spec,
                "round-trip failed for {rendered:?}"
            );
            assert!(spec.validate().is_ok(), "{rendered}");
        }
    }

    #[test]
    fn degenerate_params_rejected_at_parse_time() {
        for (bad, needle) in [
            ("trigram:k=0", "between 1 and"),
            ("trigram:k=999", "between 1 and"),
            ("apriori:c=0", "(0, 1]"),
            ("apriori:c=0.0", "(0, 1]"),
            ("apriori:c=1.5", "(0, 1]"),
            ("apriori:c=-0.1", "(0, 1]"),
            ("budgeted:budget=0", "at least 1 byte"),
            ("budgeted", "requires a budget"),
            ("budgeted:budget=1k,steps=1", "between 2 and 64"),
            ("workload", "requires a qlog"),
            ("workload:qlog=", "empty value"),
            ("nonsense", "unknown selector"),
            ("apriori:k=3", "unknown parameter"),
            ("trigram:k", "not key=value"),
        ] {
            let err = SelectorSpec::parse(bad).unwrap_err().to_string();
            assert!(err.contains(needle), "{bad:?} → {err}");
        }
    }

    #[test]
    fn budget_suffixes() {
        assert_eq!(
            SelectorSpec::parse("budgeted:budget=2k").unwrap(),
            SelectorSpec::Budgeted {
                budget: 2048,
                c: None,
                steps: DEFAULT_SWEEP_STEPS
            }
        );
        assert_eq!(
            SelectorSpec::parse("budgeted:budget=1g").unwrap(),
            SelectorSpec::Budgeted {
                budget: 1024 * 1024 * 1024,
                c: None,
                steps: DEFAULT_SWEEP_STEPS
            }
        );
    }

    #[test]
    fn default_is_apriori() {
        assert!(SelectorSpec::default().is_default());
        assert!(!SelectorSpec::Trigram { k: 3 }.is_default());
        assert_eq!(SelectorSpec::default().to_string(), "apriori");
    }

    #[test]
    fn factory_matches_spec() {
        for s in ["apriori", "trigram:k=5", "budgeted:budget=1m,steps=4"] {
            let spec = SelectorSpec::parse(s).unwrap();
            let sel = selector_for(&spec);
            assert_eq!(sel.name(), spec.name());
            assert_eq!(SelectorSpec::parse(&sel.spec_string()).unwrap(), spec);
        }
    }
}
