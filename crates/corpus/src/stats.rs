//! Corpus statistics.

use crate::Corpus;

/// Summary statistics over a corpus, gathered in one sequential scan.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CorpusStats {
    /// Number of data units (the paper's `N`).
    pub num_docs: usize,
    /// Total bytes (the paper's `|D|`).
    pub total_bytes: u64,
    /// Smallest data unit in bytes.
    pub min_doc_bytes: u64,
    /// Largest data unit in bytes.
    pub max_doc_bytes: u64,
    /// Mean data-unit size in bytes.
    pub mean_doc_bytes: f64,
}

impl CorpusStats {
    /// Gathers statistics with a full scan.
    pub fn gather<C: Corpus>(corpus: &C) -> CorpusStats {
        let mut stats = CorpusStats {
            num_docs: 0,
            total_bytes: 0,
            min_doc_bytes: u64::MAX,
            max_doc_bytes: 0,
            mean_doc_bytes: 0.0,
        };
        let _ = corpus.scan(&mut |_, bytes| {
            let len = bytes.len() as u64;
            stats.num_docs += 1;
            stats.total_bytes += len;
            stats.min_doc_bytes = stats.min_doc_bytes.min(len);
            stats.max_doc_bytes = stats.max_doc_bytes.max(len);
            true
        });
        if stats.num_docs == 0 {
            stats.min_doc_bytes = 0;
        } else {
            stats.mean_doc_bytes = stats.total_bytes as f64 / stats.num_docs as f64;
        }
        stats
    }
}

impl core::fmt::Display for CorpusStats {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{} data units, {} bytes total (min {} / mean {:.0} / max {} per unit)",
            self.num_docs,
            self.total_bytes,
            self.min_doc_bytes,
            self.mean_doc_bytes,
            self.max_doc_bytes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemCorpus;

    #[test]
    fn gather_basic() {
        let c = MemCorpus::from_docs(vec![b"ab".to_vec(), b"abcd".to_vec(), b"abcdef".to_vec()]);
        let s = CorpusStats::gather(&c);
        assert_eq!(s.num_docs, 3);
        assert_eq!(s.total_bytes, 12);
        assert_eq!(s.min_doc_bytes, 2);
        assert_eq!(s.max_doc_bytes, 6);
        assert!((s.mean_doc_bytes - 4.0).abs() < 1e-9);
    }

    #[test]
    fn gather_empty() {
        let c = MemCorpus::new();
        let s = CorpusStats::gather(&c);
        assert_eq!(s.num_docs, 0);
        assert_eq!(s.min_doc_bytes, 0);
        assert_eq!(s.mean_doc_bytes, 0.0);
    }

    #[test]
    fn display() {
        let c = MemCorpus::from_docs(vec![b"xyz".to_vec()]);
        let shown = CorpusStats::gather(&c).to_string();
        assert!(shown.contains("1 data units"));
        assert!(shown.contains("3 bytes"));
    }
}
