//! Deterministic synthetic web corpus.
//!
//! Substitutes for the paper's 700 k-page 1999 web crawl (see DESIGN.md).
//! Pages are HTML-like, with body text drawn Zipf-distributed from a
//! synthetic vocabulary, and rare "features" (MP3 anchors, ZIP codes,
//! Stanford e-mail addresses, …) injected with configurable per-page
//! probabilities chosen so the paper's ten benchmark queries cover the
//! same selectivity spectrum as the original evaluation: from
//! `powerpc`-style needles (best case ≈300× speed-up in the paper) to
//! `zip`/`phone`/`html`-style queries with no useful grams at all (index
//! degenerates to a scan).
//!
//! Generation is deterministic given [`SynthConfig::seed`] and
//! parallel-friendly: each page's RNG is seeded independently from
//! `(seed, doc_id)`.

mod page;
mod vocab;

pub use page::PageFeatures;
pub use vocab::Vocabulary;

use crate::{CorpusWriter, DiskCorpus, MemCorpus, Result};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration for the synthetic corpus generator.
#[derive(Clone, Debug)]
pub struct SynthConfig {
    /// Number of pages to generate.
    pub num_docs: usize,
    /// Master seed; every page derives its own RNG from this.
    pub seed: u64,
    /// Vocabulary size (distinct background words).
    pub vocab_size: usize,
    /// Paragraphs per page (inclusive range).
    pub min_paragraphs: usize,
    /// See [`SynthConfig::min_paragraphs`].
    pub max_paragraphs: usize,
    /// Words per paragraph (inclusive range).
    pub min_words_per_paragraph: usize,
    /// See [`SynthConfig::min_words_per_paragraph`].
    pub max_words_per_paragraph: usize,
    /// Probability a paragraph carries an ordinary anchor (drives
    /// `sel(<a href=) ≈ 1`, the paper's canonical useless gram).
    pub p_plain_anchor: f64,
    /// Probability a page links to an `.mp3` file (query `mp3`).
    pub p_mp3_link: f64,
    /// Probability a page has a `<script>` block (query `script`).
    pub p_script_block: f64,
    /// Probability a page contains invalid HTML (query `html`).
    pub p_invalid_html: f64,
    /// Probability a page shows a ZIP code (query `zip`).
    pub p_zip_code: f64,
    /// Probability a page shows a phone number (query `phone`).
    pub p_phone_number: f64,
    /// Probability a page mentions "william … clinton" (query `clinton`).
    pub p_clinton: f64,
    /// Probability a page mentions a Motorola PowerPC part (query
    /// `powerpc`; the paper's best case).
    pub p_powerpc: f64,
    /// Probability a page links a paper near the word "sigmod" (query
    /// `sigmod`).
    pub p_sigmod: f64,
    /// Probability a page shows a `stanford.edu` address (query
    /// `stanford`).
    pub p_stanford_email: f64,
    /// Probability a page links an eBay auction item (query `ebay`).
    pub p_ebay_item: f64,
    /// Probability of a decoy `.ps`/`.pdf` link with no "sigmod" nearby.
    pub p_decoy_doc_link: f64,
    /// Probability of a generic (non-Stanford) e-mail address.
    pub p_generic_email: f64,
    /// Per-paragraph probability of a background number (keeps digit
    /// grams useless, as on the real web).
    pub p_background_number: f64,
    /// Per-paragraph probability of a parenthetical aside.
    pub p_background_parens: f64,
    /// Per-paragraph probability of a hyphenated word pair.
    pub p_background_hyphen: f64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            num_docs: 10_000,
            seed: 0xF1EE_2002,
            vocab_size: 4_000,
            min_paragraphs: 2,
            max_paragraphs: 6,
            min_words_per_paragraph: 20,
            max_words_per_paragraph: 120,
            p_plain_anchor: 0.9,
            p_mp3_link: 0.005,
            p_script_block: 0.08,
            p_invalid_html: 0.03,
            p_zip_code: 0.05,
            p_phone_number: 0.04,
            p_clinton: 0.002,
            p_powerpc: 0.0008,
            p_sigmod: 0.0015,
            p_stanford_email: 0.01,
            p_ebay_item: 0.003,
            p_decoy_doc_link: 0.01,
            p_generic_email: 0.05,
            p_background_number: 0.5,
            p_background_parens: 0.4,
            p_background_hyphen: 0.5,
        }
    }
}

impl SynthConfig {
    /// A small configuration for unit tests (fast to generate and index).
    pub fn tiny(num_docs: usize, seed: u64) -> SynthConfig {
        SynthConfig {
            num_docs,
            seed,
            vocab_size: 300,
            min_paragraphs: 1,
            max_paragraphs: 3,
            min_words_per_paragraph: 5,
            max_words_per_paragraph: 30,
            // Boost feature rates so small corpora still contain matches.
            p_mp3_link: 0.05,
            p_script_block: 0.15,
            p_invalid_html: 0.08,
            p_zip_code: 0.12,
            p_phone_number: 0.10,
            p_clinton: 0.03,
            p_powerpc: 0.02,
            p_sigmod: 0.03,
            p_stanford_email: 0.05,
            p_ebay_item: 0.04,
            ..SynthConfig::default()
        }
    }
}

/// A generator for synthetic pages. Pages can be pulled one at a time
/// ([`Generator::page`]) or materialized in bulk.
#[derive(Clone, Debug)]
pub struct Generator {
    config: SynthConfig,
    vocab: Vocabulary,
}

impl Generator {
    /// Creates a generator (builds the vocabulary once).
    pub fn new(config: SynthConfig) -> Generator {
        let vocab = Vocabulary::new(config.vocab_size, config.seed);
        Generator { config, vocab }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SynthConfig {
        &self.config
    }

    /// Generates page `doc_id` into `out` (cleared first); deterministic in
    /// `(seed, doc_id)`.
    pub fn page(&self, doc_id: u32, out: &mut Vec<u8>) -> PageFeatures {
        out.clear();
        let mut rng = StdRng::seed_from_u64(
            self.config.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ u64::from(doc_id),
        );
        page::generate_page(&self.config, &self.vocab, &mut rng, out)
    }

    /// Generates the whole corpus in memory, returning per-page features.
    pub fn build_mem(&self) -> (MemCorpus, Vec<PageFeatures>) {
        let mut corpus = MemCorpus::new();
        let mut features = Vec::with_capacity(self.config.num_docs);
        let mut buf = Vec::new();
        for id in 0..self.config.num_docs as u32 {
            features.push(self.page(id, &mut buf));
            corpus.push(buf.clone());
        }
        (corpus, features)
    }

    /// Streams the whole corpus to disk, returning the opened corpus and
    /// per-page features.
    pub fn build_disk(
        &self,
        dir: impl AsRef<std::path::Path>,
    ) -> Result<(DiskCorpus, Vec<PageFeatures>)> {
        let mut writer = CorpusWriter::create(dir)?;
        let mut features = Vec::with_capacity(self.config.num_docs);
        let mut buf = Vec::new();
        for id in 0..self.config.num_docs as u32 {
            features.push(self.page(id, &mut buf));
            writer.append(&buf)?;
        }
        Ok((writer.finish()?, features))
    }

    /// A streaming source over the configured `num_docs` pages. Pages are
    /// produced one at a time into a reused buffer, so multi-GB corpora
    /// can be fed to a consumer (an ingesting index, a sharded builder)
    /// without ever materializing the corpus in memory.
    pub fn stream(&self) -> PageStream<'_> {
        PageStream {
            generator: self,
            next: 0,
            end: self.config.num_docs as u32,
            buf: Vec::new(),
            bytes_emitted: 0,
        }
    }
}

/// Streaming iterator over a generator's pages (see [`Generator::stream`]).
///
/// Not a `std::iter::Iterator`: items borrow the stream's internal buffer,
/// so the lending `next_page` / batched `next_batch` shapes are used
/// instead.
#[derive(Debug)]
pub struct PageStream<'a> {
    generator: &'a Generator,
    next: u32,
    end: u32,
    buf: Vec<u8>,
    bytes_emitted: u64,
}

impl PageStream<'_> {
    /// Produces the next page, or `None` once `num_docs` pages are out.
    /// The returned slice is valid until the next call.
    pub fn next_page(&mut self) -> Option<(u32, &[u8])> {
        if self.next >= self.end {
            return None;
        }
        let id = self.next;
        self.next += 1;
        self.generator.page(id, &mut self.buf);
        self.bytes_emitted += self.buf.len() as u64;
        Some((id, &self.buf))
    }

    /// Fills `out` (cleared first, allocations reused where the capacity
    /// allows) with up to `max_docs` pages. Returns the number of pages
    /// produced; `0` means the stream is exhausted.
    pub fn next_batch(&mut self, max_docs: usize, out: &mut Vec<Vec<u8>>) -> usize {
        let remaining = (self.end - self.next) as usize;
        let take = max_docs.min(remaining);
        out.truncate(take);
        while out.len() < take {
            out.push(Vec::new());
        }
        for slot in out.iter_mut() {
            self.generator.page(self.next, slot);
            self.bytes_emitted += slot.len() as u64;
            self.next += 1;
        }
        take
    }

    /// Total bytes produced so far.
    pub fn bytes_emitted(&self) -> u64 {
        self.bytes_emitted
    }

    /// Pages produced so far.
    pub fn docs_emitted(&self) -> u32 {
        self.next
    }
}

/// Ground-truth counts of injected features, useful for checking query
/// selectivities against generated corpora.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FeatureCounts {
    /// Pages with an MP3 anchor.
    pub mp3_link: usize,
    /// Pages with a script block.
    pub script_block: usize,
    /// Pages with invalid HTML.
    pub invalid_html: usize,
    /// Pages with a ZIP code.
    pub zip_code: usize,
    /// Pages with a phone number.
    pub phone_number: usize,
    /// Pages with a Clinton mention.
    pub clinton: usize,
    /// Pages with a PowerPC part number.
    pub powerpc: usize,
    /// Pages with a SIGMOD paper link.
    pub sigmod: usize,
    /// Pages with a Stanford e-mail address.
    pub stanford_email: usize,
    /// Pages with an eBay item link.
    pub ebay_item: usize,
}

impl FeatureCounts {
    /// Tallies a list of per-page features.
    pub fn tally(features: &[PageFeatures]) -> FeatureCounts {
        let mut c = FeatureCounts::default();
        for f in features {
            c.mp3_link += usize::from(f.mp3_link);
            c.script_block += usize::from(f.script_block);
            c.invalid_html += usize::from(f.invalid_html);
            c.zip_code += usize::from(f.zip_code);
            c.phone_number += usize::from(f.phone_number);
            c.clinton += usize::from(f.clinton);
            c.powerpc += usize::from(f.powerpc);
            c.sigmod += usize::from(f.sigmod);
            c.stanford_email += usize::from(f.stanford_email);
            c.ebay_item += usize::from(f.ebay_item);
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Corpus;

    #[test]
    fn deterministic_generation() {
        let g1 = Generator::new(SynthConfig::tiny(20, 42));
        let g2 = Generator::new(SynthConfig::tiny(20, 42));
        let (c1, f1) = g1.build_mem();
        let (c2, f2) = g2.build_mem();
        assert_eq!(f1, f2);
        for i in 0..20 {
            assert_eq!(c1.get(i).unwrap(), c2.get(i).unwrap());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let (c1, _) = Generator::new(SynthConfig::tiny(5, 1)).build_mem();
        let (c2, _) = Generator::new(SynthConfig::tiny(5, 2)).build_mem();
        assert!((0..5).any(|i| c1.get(i).unwrap() != c2.get(i).unwrap()));
    }

    #[test]
    fn pages_are_html_shaped() {
        let g = Generator::new(SynthConfig::tiny(10, 7));
        let mut buf = Vec::new();
        for id in 0..10 {
            g.page(id, &mut buf);
            let s = String::from_utf8_lossy(&buf);
            assert!(s.starts_with("<html>"), "{s}");
            assert!(s.contains("</body></html>"), "{s}");
            assert!(s.contains("<p>"), "{s}");
        }
    }

    #[test]
    fn features_present_in_bytes() {
        // When a feature flag is set, the raw substring evidence must be in
        // the page.
        let g = Generator::new(SynthConfig::tiny(300, 11));
        let (corpus, features) = g.build_mem();
        let counts = FeatureCounts::tally(&features);
        assert!(counts.mp3_link > 0, "tiny corpus should contain mp3 pages");
        assert!(counts.clinton > 0);
        assert!(counts.powerpc > 0);
        for (i, f) in features.iter().enumerate() {
            let page = corpus.get(i as u32).unwrap();
            let s = String::from_utf8_lossy(&page);
            if f.mp3_link {
                assert!(s.contains(".mp3"), "doc {i}: {s}");
            }
            if f.script_block {
                assert!(s.contains("<script>") && s.contains("</script>"), "doc {i}");
            }
            if f.clinton {
                assert!(s.contains("william") && s.contains("clinton"), "doc {i}");
            }
            if f.powerpc {
                assert!(s.contains("motorola"), "doc {i}");
            }
            if f.stanford_email {
                assert!(s.contains("stanford.edu"), "doc {i}");
            }
            if f.ebay_item {
                assert!(s.contains("ebay.com"), "doc {i}");
            }
            if f.sigmod {
                assert!(s.contains("sigmod"), "doc {i}");
            }
        }
    }

    #[test]
    fn feature_rates_close_to_config() {
        let cfg = SynthConfig {
            num_docs: 4000,
            ..SynthConfig::default()
        };
        let g = Generator::new(cfg.clone());
        let mut buf = Vec::new();
        let mut features = Vec::new();
        for id in 0..cfg.num_docs as u32 {
            features.push(g.page(id, &mut buf));
        }
        let counts = FeatureCounts::tally(&features);
        let rate = |n: usize| n as f64 / cfg.num_docs as f64;
        // 3σ-ish sanity bands.
        assert!((rate(counts.zip_code) - cfg.p_zip_code).abs() < 0.02);
        assert!((rate(counts.script_block) - cfg.p_script_block).abs() < 0.02);
        assert!(rate(counts.powerpc) < 0.01);
    }

    #[test]
    fn stream_agrees_with_bulk_build() {
        let g = Generator::new(SynthConfig::tiny(23, 5));
        let (mem, _) = g.build_mem();
        // One at a time.
        let mut stream = g.stream();
        let mut seen = 0u32;
        while let Some((id, page)) = stream.next_page() {
            assert_eq!(id, seen);
            assert_eq!(page, &mem.get(id).unwrap()[..]);
            seen += 1;
        }
        assert_eq!(seen, 23);
        assert_eq!(stream.docs_emitted(), 23);
        assert!(stream.bytes_emitted() > 0);
        // In batches of 7 (uneven tail on purpose).
        let mut stream = g.stream();
        let mut batch = Vec::new();
        let mut id = 0u32;
        loop {
            let n = stream.next_batch(7, &mut batch);
            if n == 0 {
                break;
            }
            assert_eq!(batch.len(), n);
            for doc in &batch {
                assert_eq!(doc, &mem.get(id).unwrap());
                id += 1;
            }
        }
        assert_eq!(id, 23);
    }

    #[test]
    fn disk_and_mem_builds_agree() {
        let dir = std::env::temp_dir().join(format!("free-synth-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let g = Generator::new(SynthConfig::tiny(25, 3));
        let (mem, f_mem) = g.build_mem();
        let (disk, f_disk) = g.build_disk(&dir).unwrap();
        assert_eq!(f_mem, f_disk);
        assert_eq!(mem.len(), disk.len());
        for i in 0..25u32 {
            assert_eq!(mem.get(i).unwrap(), disk.get(i).unwrap());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
