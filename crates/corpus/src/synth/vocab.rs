//! A deterministic synthetic vocabulary with Zipfian sampling.
//!
//! Web-page text is approximated by words drawn from a fixed vocabulary
//! under a Zipf distribution (frequency ∝ 1/rank), which is the standard
//! model for natural-language word frequencies. Words are built from
//! consonant-vowel syllables, so the *character n-gram* statistics also
//! resemble text: short grams are ubiquitous (useless, in the paper's
//! sense) while longer grams quickly become rare (useful) — exactly the
//! regime the multigram miner is designed for.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A fixed word list plus a precomputed Zipf cumulative distribution.
#[derive(Clone, Debug)]
pub struct Vocabulary {
    words: Vec<String>,
    /// Cumulative Zipf weights, normalized to end at 1.0.
    cumulative: Vec<f64>,
}

const CONSONANTS: &[u8] = b"bcdfghjklmnprstvwz";
const VOWELS: &[u8] = b"aeiou";

impl Vocabulary {
    /// Builds a vocabulary of `size` distinct words, deterministically from
    /// `seed`.
    pub fn new(size: usize, seed: u64) -> Vocabulary {
        assert!(size > 0, "vocabulary must be non-empty");
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_u64);
        let mut words = Vec::with_capacity(size);
        let mut used = std::collections::HashSet::new();
        while words.len() < size {
            let syllables = rng.gen_range(1..=4);
            let mut w = String::new();
            for _ in 0..syllables {
                w.push(CONSONANTS[rng.gen_range(0..CONSONANTS.len())] as char);
                w.push(VOWELS[rng.gen_range(0..VOWELS.len())] as char);
                // Occasionally a coda consonant, for gram diversity.
                if rng.gen_bool(0.25) {
                    w.push(CONSONANTS[rng.gen_range(0..CONSONANTS.len())] as char);
                }
            }
            if used.insert(w.clone()) {
                words.push(w);
            }
        }
        // Zipf CDF: weight of rank r (1-based) is 1/r.
        let mut cumulative = Vec::with_capacity(size);
        let mut acc = 0.0;
        for r in 1..=size {
            acc += 1.0 / r as f64;
            cumulative.push(acc);
        }
        let total = acc;
        for c in &mut cumulative {
            *c /= total;
        }
        Vocabulary { words, cumulative }
    }

    /// Number of distinct words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the vocabulary is empty (never; kept for API symmetry).
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// The word at a given rank (0 = most frequent).
    pub fn word(&self, rank: usize) -> &str {
        &self.words[rank]
    }

    /// Samples a word under the Zipf distribution.
    pub fn sample<'v, R: Rng>(&'v self, rng: &mut R) -> &'v str {
        let u: f64 = rng.gen();
        let idx = self
            .cumulative
            .partition_point(|&c| c < u)
            .min(self.words.len() - 1);
        &self.words[idx]
    }

    /// Samples a word uniformly (used for URL path segments, where the
    /// Zipf head would create misleadingly common grams).
    pub fn sample_uniform<'v, R: Rng>(&'v self, rng: &mut R) -> &'v str {
        let idx = rng.gen_range(0..self.words.len());
        &self.words[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let a = Vocabulary::new(100, 7);
        let b = Vocabulary::new(100, 7);
        for i in 0..100 {
            assert_eq!(a.word(i), b.word(i));
        }
        let c = Vocabulary::new(100, 8);
        assert!((0..100).any(|i| a.word(i) != c.word(i)));
    }

    #[test]
    fn words_are_distinct_and_lowercase() {
        let v = Vocabulary::new(500, 1);
        let set: std::collections::HashSet<&str> = (0..500).map(|i| v.word(i)).collect();
        assert_eq!(set.len(), 500);
        for w in set {
            assert!(w.chars().all(|c| c.is_ascii_lowercase()), "{w}");
            assert!(!w.is_empty());
        }
    }

    #[test]
    fn zipf_head_dominates() {
        let v = Vocabulary::new(1000, 3);
        let mut rng = StdRng::seed_from_u64(99);
        let mut counts = vec![0usize; 1000];
        for _ in 0..100_000 {
            let w = v.sample(&mut rng);
            let rank = (0..1000).find(|&i| v.word(i) == w).unwrap();
            counts[rank] += 1;
        }
        // Rank 0 should be roughly 1/H(1000) ≈ 13% of samples; allow slack.
        assert!(counts[0] > 8_000, "head count {}", counts[0]);
        // The tail half should be collectively rare.
        let tail: usize = counts[500..].iter().sum();
        assert!(tail < 15_000, "tail count {tail}");
        // Monotone-ish: head strictly more frequent than a deep tail rank.
        assert!(counts[0] > counts[900] * 10);
    }

    #[test]
    fn uniform_sampling_covers_tail() {
        let v = Vocabulary::new(50, 3);
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..2_000 {
            seen.insert(v.sample_uniform(&mut rng).to_string());
        }
        assert!(seen.len() > 45, "only {} of 50 words seen", seen.len());
    }
}
