//! Generation of one synthetic HTML-like page.

use super::vocab::Vocabulary;
use super::SynthConfig;
use rand::rngs::StdRng;
use rand::Rng;

/// Which special features were injected into a page. Returned to callers
/// so tests (and ground-truth tooling) can verify query selectivities
/// without re-running a regex engine.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PageFeatures {
    /// Page contains an `<a href="....mp3">` anchor.
    pub mp3_link: bool,
    /// Page contains a `<script>...</script>` block.
    pub script_block: bool,
    /// Page contains a malformed tag (`<` inside an open tag).
    pub invalid_html: bool,
    /// Page contains a 5-digit ZIP code (possibly ZIP+4).
    pub zip_code: bool,
    /// Page contains a US phone number.
    pub phone_number: bool,
    /// Page contains "william `<word>` clinton".
    pub clinton: bool,
    /// Page contains "motorola ... mpc/xpc`<digits>`".
    pub powerpc: bool,
    /// Page contains a `.ps`/`.pdf` link followed closely by "sigmod".
    pub sigmod: bool,
    /// Page contains a `user@...stanford.edu` address.
    pub stanford_email: bool,
    /// Page contains an eBay auction item URL.
    pub ebay_item: bool,
}

/// Emits one page into `out`, returning the injected features.
pub fn generate_page(
    cfg: &SynthConfig,
    vocab: &Vocabulary,
    rng: &mut StdRng,
    out: &mut Vec<u8>,
) -> PageFeatures {
    let f = PageFeatures {
        mp3_link: rng.gen_bool(cfg.p_mp3_link),
        script_block: rng.gen_bool(cfg.p_script_block),
        invalid_html: rng.gen_bool(cfg.p_invalid_html),
        zip_code: rng.gen_bool(cfg.p_zip_code),
        phone_number: rng.gen_bool(cfg.p_phone_number),
        clinton: rng.gen_bool(cfg.p_clinton),
        powerpc: rng.gen_bool(cfg.p_powerpc),
        sigmod: rng.gen_bool(cfg.p_sigmod),
        stanford_email: rng.gen_bool(cfg.p_stanford_email),
        ebay_item: rng.gen_bool(cfg.p_ebay_item),
    };

    let w = |rng: &mut StdRng, out: &mut Vec<u8>, vocab: &Vocabulary| {
        out.extend_from_slice(vocab.sample(rng).as_bytes());
    };

    out.extend_from_slice(b"<html><head><title>");
    for i in 0..rng.gen_range(2..5) {
        if i > 0 {
            out.push(b' ');
        }
        w(rng, out, vocab);
    }
    out.extend_from_slice(b"</title></head>\n<body>\n");

    if f.script_block {
        out.extend_from_slice(b"<script>var ");
        w(rng, out, vocab);
        out.extend_from_slice(b" = \"");
        w(rng, out, vocab);
        out.extend_from_slice(b"\";</script>\n");
    }

    // Paragraphs of Zipfian words with interleaved markup and features.
    let paragraphs = rng.gen_range(cfg.min_paragraphs..=cfg.max_paragraphs);
    // Choose which paragraph hosts each injected feature.
    let pick = |rng: &mut StdRng| rng.gen_range(0..paragraphs);
    let mp3_at = pick(rng);
    let zip_at = pick(rng);
    let phone_at = pick(rng);
    let clinton_at = pick(rng);
    let powerpc_at = pick(rng);
    let sigmod_at = pick(rng);
    let stanford_at = pick(rng);
    let ebay_at = pick(rng);
    let invalid_at = pick(rng);

    for p in 0..paragraphs {
        out.extend_from_slice(b"<p>");
        let words = rng.gen_range(cfg.min_words_per_paragraph..=cfg.max_words_per_paragraph);
        for i in 0..words {
            if i > 0 {
                out.push(b' ');
            }
            w(rng, out, vocab);
        }
        // Every page gets ordinary anchors, making `<a href=` nearly
        // universal — the paper's canonical useless gram (Example 2.1).
        if rng.gen_bool(cfg.p_plain_anchor) {
            emit_plain_anchor(vocab, rng, out);
        }
        if f.mp3_link && p == mp3_at {
            emit_mp3_anchor(vocab, rng, out);
        }
        if f.zip_code && p == zip_at {
            emit_zip(rng, out);
        }
        if f.phone_number && p == phone_at {
            emit_phone(rng, out);
        }
        if f.clinton && p == clinton_at {
            out.extend_from_slice(b" president william ");
            w(rng, out, vocab);
            out.extend_from_slice(b" clinton ");
        }
        if f.powerpc && p == powerpc_at {
            emit_powerpc(vocab, rng, out);
        }
        if f.sigmod && p == sigmod_at {
            emit_sigmod(vocab, rng, out);
        }
        if f.stanford_email && p == stanford_at {
            emit_stanford_email(vocab, rng, out);
        }
        if f.ebay_item && p == ebay_at {
            emit_ebay(rng, out);
        }
        if f.invalid_html && p == invalid_at {
            // An open tag interrupted by another `<`.
            out.extend_from_slice(b"<img src=broken <b>oops</b>");
        }
        // Background numerals and punctuation keep digits, parentheses
        // and hyphens ubiquitous, so digit/punct grams stay useless and
        // the paper's zip/phone/html queries fall back to scans.
        if rng.gen_bool(cfg.p_background_number) {
            out.extend_from_slice(b" item ");
            for _ in 0..rng.gen_range(2..6) {
                out.push(b'0' + rng.gen_range(0..10));
            }
            out.push(b' ');
        }
        if rng.gen_bool(cfg.p_background_parens) {
            out.extend_from_slice(b" (");
            out.extend_from_slice(vocab.sample(rng).as_bytes());
            out.extend_from_slice(b") ");
        }
        if rng.gen_bool(cfg.p_background_hyphen) {
            out.push(b' ');
            out.extend_from_slice(vocab.sample(rng).as_bytes());
            out.push(b'-');
            out.extend_from_slice(vocab.sample(rng).as_bytes());
            out.push(b' ');
        }
        // Decoy document links (.ps/.pdf with no "sigmod" nearby).
        if rng.gen_bool(cfg.p_decoy_doc_link) {
            emit_doc_anchor(vocab, rng, out, false);
        }
        // Generic e-mail addresses at non-stanford hosts.
        if rng.gen_bool(cfg.p_generic_email) {
            out.push(b' ');
            out.extend_from_slice(vocab.sample_uniform(rng).as_bytes());
            out.push(b'@');
            out.extend_from_slice(vocab.sample_uniform(rng).as_bytes());
            out.extend_from_slice(b".com ");
        }
        out.extend_from_slice(b"</p>\n");
    }

    out.extend_from_slice(b"</body></html>\n");
    f
}

fn emit_plain_anchor(vocab: &Vocabulary, rng: &mut StdRng, out: &mut Vec<u8>) {
    let exts = ["html", "htm", "php", "asp", "cgi"];
    out.extend_from_slice(b"<a href=\"http://www.");
    out.extend_from_slice(vocab.sample_uniform(rng).as_bytes());
    out.extend_from_slice(b".com/");
    out.extend_from_slice(vocab.sample_uniform(rng).as_bytes());
    out.push(b'.');
    out.extend_from_slice(exts[rng.gen_range(0..exts.len())].as_bytes());
    out.extend_from_slice(b"\">");
    out.extend_from_slice(vocab.sample(rng).as_bytes());
    out.extend_from_slice(b"</a> ");
}

fn emit_mp3_anchor(vocab: &Vocabulary, rng: &mut StdRng, out: &mut Vec<u8>) {
    let quote: &[u8] = match rng.gen_range(0..3) {
        0 => b"\"",
        1 => b"'",
        _ => b"",
    };
    out.extend_from_slice(b"<a href=");
    out.extend_from_slice(quote);
    out.extend_from_slice(b"http://media.");
    out.extend_from_slice(vocab.sample_uniform(rng).as_bytes());
    out.extend_from_slice(b".com/songs/");
    out.extend_from_slice(vocab.sample_uniform(rng).as_bytes());
    out.extend_from_slice(b".mp3");
    out.extend_from_slice(quote);
    out.extend_from_slice(b">listen</a> ");
}

fn emit_doc_anchor(vocab: &Vocabulary, rng: &mut StdRng, out: &mut Vec<u8>, sigmod: bool) {
    let ext: &[u8] = if rng.gen_bool(0.5) { b".ps" } else { b".pdf" };
    out.extend_from_slice(b"<a href=\"http://db.");
    out.extend_from_slice(vocab.sample_uniform(rng).as_bytes());
    out.extend_from_slice(b".edu/papers/");
    out.extend_from_slice(vocab.sample_uniform(rng).as_bytes());
    out.extend_from_slice(ext);
    out.extend_from_slice(b"\">paper</a> ");
    if sigmod {
        out.extend_from_slice(b"appeared in sigmod ");
    }
}

fn emit_sigmod(vocab: &Vocabulary, rng: &mut StdRng, out: &mut Vec<u8>) {
    emit_doc_anchor(vocab, rng, out, true);
}

fn emit_zip(rng: &mut StdRng, out: &mut Vec<u8>) {
    out.push(b' ');
    for _ in 0..5 {
        out.push(b'0' + rng.gen_range(0..10));
    }
    if rng.gen_bool(0.3) {
        out.push(b'-');
        for _ in 0..4 {
            out.push(b'0' + rng.gen_range(0..10));
        }
    }
    out.push(b' ');
}

fn emit_phone(rng: &mut StdRng, out: &mut Vec<u8>) {
    out.push(b' ');
    if rng.gen_bool(0.5) {
        out.push(b'(');
        for _ in 0..3 {
            out.push(b'0' + rng.gen_range(0..10));
        }
        out.extend_from_slice(b") ");
        for _ in 0..3 {
            out.push(b'0' + rng.gen_range(0..10));
        }
        out.push(b'-');
        for _ in 0..4 {
            out.push(b'0' + rng.gen_range(0..10));
        }
    } else {
        for _ in 0..3 {
            out.push(b'0' + rng.gen_range(0..10));
        }
        out.push(b'-');
        for _ in 0..3 {
            out.push(b'0' + rng.gen_range(0..10));
        }
        out.push(b'-');
        for _ in 0..4 {
            out.push(b'0' + rng.gen_range(0..10));
        }
    }
    out.push(b' ');
}

fn emit_powerpc(vocab: &Vocabulary, rng: &mut StdRng, out: &mut Vec<u8>) {
    out.extend_from_slice(b" motorola ");
    out.extend_from_slice(vocab.sample(rng).as_bytes());
    out.extend_from_slice(b" powerpc ");
    out.extend_from_slice(if rng.gen_bool(0.5) { b"mpc" } else { b"xpc" });
    let digits = rng.gen_range(3..5);
    for _ in 0..digits {
        out.push(b'0' + rng.gen_range(0..10));
    }
    if rng.gen_bool(0.4) {
        out.push(b'e');
    }
    out.push(b' ');
}

fn emit_stanford_email(vocab: &Vocabulary, rng: &mut StdRng, out: &mut Vec<u8>) {
    out.push(b' ');
    out.extend_from_slice(vocab.sample_uniform(rng).as_bytes());
    out.push(b'@');
    if rng.gen_bool(0.5) {
        out.extend_from_slice(b"cs.");
    }
    out.extend_from_slice(b"stanford.edu ");
}

fn emit_ebay(rng: &mut StdRng, out: &mut Vec<u8>) {
    out.extend_from_slice(b"<a href=\"http://cgi.ebay.com/aw-cgi/ebayisapi.dll?viewitem&item=");
    for _ in 0..rng.gen_range(8..11) {
        out.push(b'0' + rng.gen_range(0..10));
    }
    out.extend_from_slice(b"\">auction</a> ");
}
