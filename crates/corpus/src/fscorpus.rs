//! A corpus over an existing directory tree: every matching file is a
//! data unit.
//!
//! FREE's data-unit abstraction deliberately covers "general textual data
//! from any source" (§2). This store indexes files in place — the
//! natural shape for the code-search and log-hunting use cases the
//! multigram idea later became famous for — without copying them into a
//! dedicated corpus file.

use crate::{Corpus, CorpusStats, DocId, Error, Result};
use std::path::{Path, PathBuf};

/// A read-only corpus over files discovered under a root directory.
///
/// The file list is captured at construction (sorted by path, so doc ids
/// are stable for an unchanged tree); file contents are read on demand.
pub struct FsCorpus {
    root: PathBuf,
    files: Vec<PathBuf>,
    total_bytes: u64,
}

impl FsCorpus {
    /// Walks `root` and captures every file whose extension is in
    /// `extensions` (e.g. `&["rs", "toml"]`); an empty list accepts all
    /// files. Directories named in `skip_dirs` (e.g. `target`, `.git`)
    /// are not descended into.
    pub fn open(
        root: impl AsRef<Path>,
        extensions: &[&str],
        skip_dirs: &[&str],
    ) -> Result<FsCorpus> {
        let root = root.as_ref().to_path_buf();
        let mut files = Vec::new();
        walk(&root, extensions, skip_dirs, &mut files)?;
        files.sort();
        let mut total_bytes = 0;
        for f in &files {
            total_bytes += std::fs::metadata(f)
                .map_err(|e| Error::io(format!("stat {}", f.display()), e))?
                .len();
        }
        Ok(FsCorpus {
            root,
            files,
            total_bytes,
        })
    }

    /// Builds a corpus over an explicit file list (paths must exist).
    /// Used to reopen a corpus with exactly the files an index was built
    /// over, immune to tree changes since.
    pub fn from_paths(root: impl AsRef<Path>, files: Vec<PathBuf>) -> Result<FsCorpus> {
        let mut total_bytes = 0;
        for f in &files {
            total_bytes += std::fs::metadata(f)
                .map_err(|e| Error::io(format!("stat {}", f.display()), e))?
                .len();
        }
        Ok(FsCorpus {
            root: root.as_ref().to_path_buf(),
            files,
            total_bytes,
        })
    }

    /// The root the corpus was opened at.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The path backing a data unit.
    pub fn path(&self, id: DocId) -> Option<&Path> {
        self.files.get(id as usize).map(PathBuf::as_path)
    }

    /// All file paths in id order.
    pub fn paths(&self) -> &[PathBuf] {
        &self.files
    }
}

fn walk(dir: &Path, extensions: &[&str], skip_dirs: &[&str], out: &mut Vec<PathBuf>) -> Result<()> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| Error::io(format!("read dir {}", dir.display()), e))?;
    for entry in entries {
        let entry = entry.map_err(|e| Error::io("read dir entry", e))?;
        let path = entry.path();
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if skip_dirs.contains(&name) {
                continue;
            }
            walk(&path, extensions, skip_dirs, out)?;
        } else {
            let ext = path.extension().and_then(|e| e.to_str()).unwrap_or("");
            if extensions.is_empty() || extensions.contains(&ext) {
                out.push(path);
            }
        }
    }
    Ok(())
}

impl Corpus for FsCorpus {
    fn len(&self) -> usize {
        self.files.len()
    }

    fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    fn get(&self, id: DocId) -> Result<Vec<u8>> {
        let path = self.files.get(id as usize).ok_or(Error::DocOutOfRange {
            id,
            len: self.files.len(),
        })?;
        std::fs::read(path).map_err(|e| Error::io(format!("read {}", path.display()), e))
    }

    fn scan(&self, f: &mut dyn FnMut(DocId, &[u8]) -> bool) -> Result<()> {
        for (i, path) in self.files.iter().enumerate() {
            let bytes = std::fs::read(path)
                .map_err(|e| Error::io(format!("scan {}", path.display()), e))?;
            if !f(i as DocId, &bytes) {
                break;
            }
        }
        Ok(())
    }
}

impl std::fmt::Debug for FsCorpus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "FsCorpus({}, {} files, {} bytes)",
            self.root.display(),
            self.files.len(),
            self.total_bytes
        )
    }
}

/// Convenience: stats via a scan (kept off the trait default to avoid a
/// second stat pass).
impl FsCorpus {
    /// Gathers statistics with a full scan.
    pub fn stats(&self) -> CorpusStats {
        CorpusStats::gather(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("free-fs-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.join("sub/deep")).unwrap();
        std::fs::create_dir_all(dir.join("target")).unwrap();
        std::fs::write(dir.join("a.rs"), b"fn a() {}").unwrap();
        std::fs::write(dir.join("b.txt"), b"notes").unwrap();
        std::fs::write(dir.join("sub/c.rs"), b"fn c() {}").unwrap();
        std::fs::write(dir.join("sub/deep/d.rs"), b"fn d() {}").unwrap();
        std::fs::write(dir.join("target/ignored.rs"), b"fn x() {}").unwrap();
        dir
    }

    #[test]
    fn filters_by_extension_and_skips_dirs() {
        let dir = setup("filter");
        let c = FsCorpus::open(&dir, &["rs"], &["target"]).unwrap();
        assert_eq!(c.len(), 3);
        assert_eq!(c.total_bytes(), 27);
        // Sorted by path: a.rs, sub/c.rs, sub/deep/d.rs
        assert!(c.path(0).unwrap().ends_with("a.rs"));
        assert!(c.path(2).unwrap().ends_with("d.rs"));
        assert_eq!(c.get(0).unwrap(), b"fn a() {}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_extension_list_accepts_all() {
        let dir = setup("all");
        let c = FsCorpus::open(&dir, &[], &["target"]).unwrap();
        assert_eq!(c.len(), 4); // includes b.txt
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scan_matches_get_and_stops() {
        let dir = setup("scan");
        let c = FsCorpus::open(&dir, &["rs"], &["target"]).unwrap();
        let mut n = 0;
        c.scan(&mut |id, bytes| {
            assert_eq!(bytes, c.get(id).unwrap());
            n += 1;
            n < 2
        })
        .unwrap();
        assert_eq!(n, 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn out_of_range_and_missing_root() {
        let dir = setup("oor");
        let c = FsCorpus::open(&dir, &["rs"], &[]).unwrap();
        assert!(matches!(c.get(99), Err(Error::DocOutOfRange { .. })));
        assert!(FsCorpus::open(dir.join("nonexistent"), &[], &[]).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn from_paths_preserves_order() {
        let dir = setup("frompaths");
        let walked = FsCorpus::open(&dir, &["rs"], &["target"]).unwrap();
        let paths = walked.paths().to_vec();
        let rebuilt = FsCorpus::from_paths(&dir, paths.clone()).unwrap();
        assert_eq!(rebuilt.len(), walked.len());
        assert_eq!(rebuilt.total_bytes(), walked.total_bytes());
        for i in 0..paths.len() as u32 {
            assert_eq!(rebuilt.get(i).unwrap(), walked.get(i).unwrap());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stats_gather() {
        let dir = setup("stats");
        let c = FsCorpus::open(&dir, &["rs"], &["target"]).unwrap();
        let s = c.stats();
        assert_eq!(s.num_docs, 3);
        assert_eq!(s.total_bytes, 27);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
