//! A small sharded read-through cache of decoded data units.
//!
//! [`DiskCorpus::get`](crate::DiskCorpus) already uses positioned reads
//! on a shared handle, so concurrent readers never contend on seek
//! state — but every call still pays a `pread` syscall. Confirmation
//! under a query server hits the same hot documents over and over
//! (popular patterns match popular pages), so a byte-bounded cache in
//! front of the data file removes most of that syscall traffic.
//!
//! The cache is sharded by doc id: each shard is an independent
//! `Mutex<…>` FIFO, so concurrent readers of *different* documents
//! contend only 1/N of the time and the critical section is a hash
//! lookup plus an `Arc` clone. FIFO (not LRU) keeps the hit path free
//! of writes to shared recency state.

use crate::DocId;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of independent shards. A power of two so the shard of a doc
/// id is a mask away.
const SHARDS: usize = 8;

#[derive(Default)]
struct Shard {
    map: HashMap<DocId, Arc<Vec<u8>>>,
    fifo: VecDeque<DocId>,
    bytes: usize,
}

/// A byte-bounded, sharded, thread-safe document cache.
pub struct DocCache {
    shards: Vec<Mutex<Shard>>,
    /// Per-shard byte budget (total budget / number of shards).
    shard_budget: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl DocCache {
    /// Creates a cache holding at most (approximately) `total_bytes` of
    /// document payload across all shards.
    pub fn new(total_bytes: usize) -> DocCache {
        DocCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            shard_budget: (total_bytes / SHARDS).max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, id: DocId) -> &Mutex<Shard> {
        &self.shards[id as usize & (SHARDS - 1)]
    }

    /// Returns the cached document, counting a hit or miss.
    pub fn get(&self, id: DocId) -> Option<Arc<Vec<u8>>> {
        let shard = self.shard(id).lock().unwrap_or_else(|e| e.into_inner());
        match shard.map.get(&id) {
            Some(doc) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(doc.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a freshly-read document. Documents larger than a whole
    /// shard's budget are not cached; the oldest entries are evicted
    /// until the shard fits its budget again.
    pub fn insert(&self, id: DocId, doc: Arc<Vec<u8>>) {
        if doc.len() > self.shard_budget {
            return;
        }
        let mut shard = self.shard(id).lock().unwrap_or_else(|e| e.into_inner());
        if shard.map.contains_key(&id) {
            return;
        }
        shard.bytes += doc.len();
        shard.map.insert(id, doc);
        shard.fifo.push_back(id);
        while shard.bytes > self.shard_budget {
            let Some(old) = shard.fifo.pop_front() else {
                break;
            };
            if let Some(doc) = shard.map.remove(&old) {
                shard.bytes -= doc.len();
            }
        }
    }

    /// Cache hits served so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses recorded so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of cached documents across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).map.len())
            .sum()
    }

    /// Whether the cache currently holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_insert() {
        let cache = DocCache::new(1024);
        assert!(cache.get(3).is_none());
        cache.insert(3, Arc::new(b"hello".to_vec()));
        assert_eq!(cache.get(3).as_deref(), Some(&b"hello".to_vec()));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn oversized_doc_not_cached() {
        let cache = DocCache::new(SHARDS * 4);
        cache.insert(0, Arc::new(vec![0u8; 64]));
        assert!(cache.get(0).is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn fifo_eviction_bounds_bytes() {
        let cache = DocCache::new(SHARDS * 10);
        // All ids in one shard (multiples of SHARDS); each doc is 4
        // bytes, budget is 10 bytes per shard → at most 2 fit.
        for i in 0..8u32 {
            cache.insert(i * SHARDS as u32, Arc::new(vec![b'x'; 4]));
        }
        assert!(cache.len() <= 2);
        // The newest insert survives.
        assert!(cache.get(7 * SHARDS as u32).is_some());
    }

    #[test]
    fn shards_are_independent() {
        let cache = DocCache::new(SHARDS * 8);
        for id in 0..SHARDS as u32 {
            cache.insert(id, Arc::new(vec![b'y'; 8]));
        }
        // One doc per shard, each exactly at budget: all retained.
        assert_eq!(cache.len(), SHARDS);
    }
}
