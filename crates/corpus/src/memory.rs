//! An in-memory corpus, for tests and small experiments.

use crate::{Corpus, DocId, Error, Result};

/// A corpus whose data units all live in memory.
#[derive(Clone, Debug, Default)]
pub struct MemCorpus {
    docs: Vec<Vec<u8>>,
    total_bytes: u64,
}

impl MemCorpus {
    /// Creates an empty corpus.
    pub fn new() -> MemCorpus {
        MemCorpus::default()
    }

    /// Creates a corpus from a list of data units; ids follow list order.
    pub fn from_docs(docs: Vec<Vec<u8>>) -> MemCorpus {
        let total_bytes = docs.iter().map(|d| d.len() as u64).sum();
        MemCorpus { docs, total_bytes }
    }

    /// Appends a data unit, returning its id.
    pub fn push(&mut self, doc: Vec<u8>) -> DocId {
        let id = self.docs.len() as DocId;
        self.total_bytes += doc.len() as u64;
        self.docs.push(doc);
        id
    }

    /// Borrows a data unit without copying.
    pub fn doc(&self, id: DocId) -> Option<&[u8]> {
        self.docs.get(id as usize).map(Vec::as_slice)
    }

    /// Iterates over `(id, bytes)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (DocId, &[u8])> {
        self.docs
            .iter()
            .enumerate()
            .map(|(i, d)| (i as DocId, d.as_slice()))
    }
}

impl Corpus for MemCorpus {
    fn len(&self) -> usize {
        self.docs.len()
    }

    fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    fn get(&self, id: DocId) -> Result<Vec<u8>> {
        self.docs
            .get(id as usize)
            .cloned()
            .ok_or(Error::DocOutOfRange {
                id,
                len: self.docs.len(),
            })
    }

    fn scan(&self, f: &mut dyn FnMut(DocId, &[u8]) -> bool) -> Result<()> {
        for (i, d) in self.docs.iter().enumerate() {
            if !f(i as DocId, d) {
                break;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get() {
        let mut c = MemCorpus::new();
        assert!(c.is_empty());
        let a = c.push(b"hello".to_vec());
        let b = c.push(b"world!".to_vec());
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(c.len(), 2);
        assert_eq!(c.total_bytes(), 11);
        assert_eq!(c.get(0).unwrap(), b"hello");
        assert_eq!(c.doc(1), Some(&b"world!"[..]));
    }

    #[test]
    fn get_out_of_range() {
        let c = MemCorpus::from_docs(vec![b"x".to_vec()]);
        match c.get(5) {
            Err(Error::DocOutOfRange { id: 5, len: 1 }) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn scan_visits_in_order_and_stops_early() {
        let c = MemCorpus::from_docs(vec![b"a".to_vec(), b"b".to_vec(), b"c".to_vec()]);
        let mut seen = Vec::new();
        c.scan(&mut |id, d| {
            seen.push((id, d.to_vec()));
            id < 1 // stop after the second doc
        })
        .unwrap();
        assert_eq!(seen.len(), 2);
        assert_eq!(seen[0].0, 0);
        assert_eq!(seen[1].1, b"b");
    }

    #[test]
    fn empty_docs_allowed() {
        let mut c = MemCorpus::new();
        c.push(Vec::new());
        assert_eq!(c.len(), 1);
        assert_eq!(c.total_bytes(), 0);
        assert_eq!(c.get(0).unwrap(), Vec::<u8>::new());
    }
}
