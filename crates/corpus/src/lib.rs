//! Corpus substrate for the FREE regular expression indexing engine.
//!
//! The paper's experiments run over 700,000 web pages crawled in 1999
//! (4.5 GB). This crate provides the two things FREE needs from that
//! dataset:
//!
//! 1. **A data-unit store** — the paper partitions raw text into *data
//!    units* (web pages). [`DiskCorpus`] persists data units in a segmented
//!    on-disk layout (a data file plus an offset table) with buffered
//!    sequential scans and random access by [`DocId`]; [`MemCorpus`] is the
//!    in-memory equivalent for tests and small experiments. Both implement
//!    [`Corpus`].
//!
//! 2. **A synthetic web corpus** — the original crawl is unavailable, so
//!    [`synth`] generates deterministic HTML-like pages whose feature
//!    frequencies (MP3 anchors, `<script>` blocks, e-mail addresses, phone
//!    numbers, ZIP codes, product mentions, …) are tuned so the paper's ten
//!    benchmark queries span the same selectivity spectrum as reported in
//!    the evaluation section.

#![forbid(unsafe_code)]

pub mod cache;
pub mod error;
pub mod fscorpus;
pub mod memory;
pub mod stats;
pub mod store;
pub mod synth;

pub use cache::DocCache;
pub use error::{Error, Result};
pub use fscorpus::FsCorpus;
pub use memory::MemCorpus;
pub use stats::CorpusStats;
pub use store::{CorpusWriter, DiskCorpus};

/// Identifier of a data unit within a corpus: a dense index starting at 0,
/// assigned in insertion order.
pub type DocId = u32;

/// Read access to a corpus of data units.
///
/// The two access patterns FREE uses map directly onto the trait: full
/// sequential scans (index construction; the "Scan" baseline) and random
/// access to candidate data units (the confirmation step after an index
/// lookup).
///
/// `Sync` is a supertrait because the engine's parallel confirmation
/// stage fans [`Corpus::get`] calls out to worker threads sharing one
/// `&C`; implementations must use positioned reads or per-call handles
/// rather than shared seek state.
pub trait Corpus: Sync {
    /// Number of data units.
    fn len(&self) -> usize;

    /// Whether the corpus is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total size of all data units in bytes (the paper's `|D|`).
    fn total_bytes(&self) -> u64;

    /// Reads one data unit. The implementation may return a cached or
    /// freshly-read buffer.
    fn get(&self, id: DocId) -> Result<Vec<u8>>;

    /// Sequentially visits every data unit in id order. Implementations
    /// stream with buffered I/O; the callback returning `false` stops the
    /// scan early (used by first-k result queries).
    fn scan(&self, f: &mut dyn FnMut(DocId, &[u8]) -> bool) -> Result<()>;

    /// Convenience: basic corpus statistics.
    fn stats(&self) -> CorpusStats
    where
        Self: Sized,
    {
        CorpusStats::gather(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trait_object_usable() {
        let c = MemCorpus::from_docs(vec![b"one".to_vec(), b"two".to_vec()]);
        let dyn_c: &dyn Corpus = &c;
        assert_eq!(dyn_c.len(), 2);
        assert!(!dyn_c.is_empty());
        assert_eq!(dyn_c.total_bytes(), 6);
    }
}
