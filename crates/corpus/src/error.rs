//! Error type for corpus storage.

use core::fmt;

/// Convenience alias.
pub type Result<T> = core::result::Result<T, Error>;

/// An error reading from or writing to a corpus store.
#[derive(Debug)]
pub enum Error {
    /// An underlying I/O error, annotated with the operation that failed.
    Io {
        /// What the store was doing (e.g. "read data unit 42").
        context: String,
        /// The OS-level error.
        source: std::io::Error,
    },
    /// A document id past the end of the corpus.
    DocOutOfRange {
        /// The requested id.
        id: crate::DocId,
        /// Number of documents actually stored.
        len: usize,
    },
    /// The on-disk files are malformed (bad magic, truncated offsets, …).
    Corrupt(String),
}

impl Error {
    pub(crate) fn io(context: impl Into<String>, source: std::io::Error) -> Error {
        Error::Io {
            context: context.into(),
            source,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io { context, source } => write!(f, "corpus I/O error ({context}): {source}"),
            Error::DocOutOfRange { id, len } => {
                write!(f, "data unit {id} out of range (corpus has {len})")
            }
            Error::Corrupt(msg) => write!(f, "corrupt corpus store: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = Error::io("write data", std::io::Error::other("disk full"));
        assert!(e.to_string().contains("write data"));
        assert!(e.to_string().contains("disk full"));
        let e = Error::DocOutOfRange { id: 9, len: 3 };
        assert!(e.to_string().contains("9"));
        assert!(e.to_string().contains("3"));
        let e = Error::Corrupt("bad magic".into());
        assert!(e.to_string().contains("bad magic"));
    }

    #[test]
    fn source_chain() {
        use std::error::Error as _;
        let e = Error::io("x", std::io::Error::other("inner"));
        assert!(e.source().is_some());
        assert!(Error::Corrupt("y".into()).source().is_none());
    }
}
