//! On-disk data-unit storage.
//!
//! Layout (two files inside a directory):
//!
//! ```text
//! <dir>/corpus.dat   raw data-unit bytes, concatenated in id order
//! <dir>/corpus.idx   header + one table entry per unit
//! ```
//!
//! The version-2 index header is an 8-byte magic, a u32 version, a u64
//! unit count, and a u32 CRC32 of the count's little-endian bytes. Each
//! table entry is the unit's cumulative *end* offset (u64) followed by
//! the CRC32 of the unit's bytes (u32), so data unit `i` occupies
//! `dat[offset[i-1]..offset[i]]` (with `offset[-1] = 0`) and any bit
//! flip in either file is detectable. Version-1 stores (no checksums,
//! 8-byte entries) are still readable and appendable. The full table is
//! loaded into memory on open — 12 bytes per data unit, which for the
//! paper's 700 k pages is under 9 MB.
//!
//! The store is appendable: [`CorpusWriter::open_append`] resumes writing
//! after the last committed unit in O(1) — it reads only the index header
//! and the *tail* offset (never the full table, never the data file), and
//! [`CorpusWriter::finish`] appends the new entries and patches the count
//! (plus its CRC, one positioned write) in place. The count is the commit
//! point: entries are written before the count, so a crash mid-finish
//! leaves the previously committed prefix readable and any torn tail
//! bytes are truncated on the next reopen.
//!
//! Unit CRCs are verified on every [`Corpus::get`] cache miss — the read
//! already paid a syscall, so the check is cheap insurance on the path
//! that serves query results. [`Corpus::scan`] (the mining/merge
//! throughput path, which re-reads the corpus many times per build) does
//! *not* verify; `free fsck` covers scans offline via
//! [`DiskCorpus::verify_units`].

use crate::cache::DocCache;
use crate::{Corpus, DocId, Error, Result};
use free_checksum::crc32;
use std::fs::{File, OpenOptions};
use std::io::{BufReader, BufWriter, Read, Write};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 8] = b"FREECORP";
const VERSION: u32 = 2;
const DATA_FILE: &str = "corpus.dat";
const INDEX_FILE: &str = "corpus.idx";
/// Byte offset of the u64 unit count inside the index file (v1 and v2).
const COUNT_OFFSET: u64 = 12;

/// Byte offset where the entry table starts, by format version (v2 adds
/// a u32 CRC of the count after the count itself).
fn table_offset(version: u32) -> u64 {
    if version >= 2 {
        24
    } else {
        20
    }
}

/// Bytes per table entry: v1 stores the end offset only, v2 appends the
/// unit's CRC32.
fn entry_stride(version: u32) -> u64 {
    if version >= 2 {
        12
    } else {
        8
    }
}

/// Reads and validates the index-file header, returning the format
/// version and unit count. For v2, the count must match its stored CRC.
// `expect`: both `try_into` calls slice fixed ranges of a 20-byte buffer.
#[allow(clippy::expect_used)]
fn read_header(idx: &File, idx_path: &Path) -> Result<(u32, u64)> {
    let mut header = [0u8; 20];
    idx.read_exact_at(&mut header, 0)
        .map_err(|e| Error::io(format!("read header of {}", idx_path.display()), e))?;
    if &header[..8] != MAGIC {
        return Err(Error::Corrupt(format!(
            "bad magic in {}: {:?}",
            idx_path.display(),
            &header[..8]
        )));
    }
    let version = u32::from_le_bytes(header[8..12].try_into().expect("fixed size"));
    if version == 0 || version > VERSION {
        return Err(Error::Corrupt(format!(
            "unsupported corpus version {version}"
        )));
    }
    let count_bytes: [u8; 8] = header[12..20].try_into().expect("fixed size");
    if version >= 2 {
        let mut crc_bytes = [0u8; 4];
        idx.read_exact_at(&mut crc_bytes, 20)
            .map_err(|e| Error::io(format!("read count CRC of {}", idx_path.display()), e))?;
        if u32::from_le_bytes(crc_bytes) != crc32(&count_bytes) {
            return Err(Error::Corrupt(format!(
                "unit count fails its CRC in {}",
                idx_path.display()
            )));
        }
    }
    Ok((version, u64::from_le_bytes(count_bytes)))
}

/// Streaming writer that appends data units to an on-disk corpus.
pub struct CorpusWriter {
    data: BufWriter<File>,
    /// Format version of the store being written (new stores are
    /// [`VERSION`]; `open_append` keeps appending in the file's own
    /// version so legacy stores stay self-consistent).
    version: u32,
    /// End offsets of units appended by *this* writer (absolute positions).
    new_ends: Vec<u64>,
    /// CRC32 of each unit appended by this writer (v2 stores only).
    new_crcs: Vec<u32>,
    /// Units already committed before this writer opened.
    base_count: u64,
    written: u64,
    dir: PathBuf,
}

impl CorpusWriter {
    /// Creates (or truncates) a corpus store in `dir`.
    pub fn create(dir: impl AsRef<Path>) -> Result<CorpusWriter> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)
            .map_err(|e| Error::io(format!("create dir {}", dir.display()), e))?;
        let data_path = dir.join(DATA_FILE);
        let data = File::create(&data_path)
            .map_err(|e| Error::io(format!("create {}", data_path.display()), e))?;
        // Write the header (count 0) up front so `finish` only ever patches
        // the count and appends offsets, in both create and append modes.
        let idx_path = dir.join(INDEX_FILE);
        let idx = File::create(&idx_path)
            .map_err(|e| Error::io(format!("create {}", idx_path.display()), e))?;
        let mut header = Vec::with_capacity(table_offset(VERSION) as usize);
        header.extend_from_slice(MAGIC);
        header.extend_from_slice(&VERSION.to_le_bytes());
        header.extend_from_slice(&0u64.to_le_bytes());
        header.extend_from_slice(&crc32(&0u64.to_le_bytes()).to_le_bytes());
        idx.write_all_at(&header, 0)
            .map_err(|e| Error::io("write header", e))?;
        Ok(CorpusWriter {
            data: BufWriter::new(data),
            version: VERSION,
            new_ends: Vec::new(),
            new_crcs: Vec::new(),
            base_count: 0,
            written: 0,
            dir,
        })
    }

    /// Reopens an existing store for appending in O(1): only the index
    /// header and the last committed offset are read — the offset table is
    /// never scanned and the data file is never rewritten. Uncommitted
    /// bytes past the last committed offset (from a crashed writer) are
    /// truncated away.
    pub fn open_append(dir: impl AsRef<Path>) -> Result<CorpusWriter> {
        let dir = dir.as_ref().to_path_buf();
        let idx_path = dir.join(INDEX_FILE);
        let idx = File::open(&idx_path)
            .map_err(|e| Error::io(format!("open {}", idx_path.display()), e))?;
        let (version, base_count) = read_header(&idx, &idx_path)?;
        let written = if base_count == 0 {
            0
        } else {
            let mut buf8 = [0u8; 8];
            idx.read_exact_at(
                &mut buf8,
                table_offset(version) + (base_count - 1) * entry_stride(version),
            )
            .map_err(|e| Error::io("read tail offset", e))?;
            u64::from_le_bytes(buf8)
        };
        let data_path = dir.join(DATA_FILE);
        let data = OpenOptions::new()
            .write(true)
            .open(&data_path)
            .map_err(|e| Error::io(format!("open {}", data_path.display()), e))?;
        let data_len = data
            .metadata()
            .map_err(|e| Error::io(format!("stat {}", data_path.display()), e))?
            .len();
        if data_len < written {
            return Err(Error::Corrupt(format!(
                "data file shorter than committed offsets ({data_len} < {written})"
            )));
        }
        if data_len > written {
            // Torn tail from a writer that crashed before committing.
            data.set_len(written)
                .map_err(|e| Error::io("truncate torn tail", e))?;
        }
        use std::io::Seek;
        let mut data = data;
        data.seek(std::io::SeekFrom::Start(written))
            .map_err(|e| Error::io("seek to append position", e))?;
        Ok(CorpusWriter {
            data: BufWriter::new(data),
            version,
            new_ends: Vec::new(),
            new_crcs: Vec::new(),
            base_count,
            written,
            dir,
        })
    }

    /// Appends one data unit, returning its id.
    pub fn append(&mut self, doc: &[u8]) -> Result<DocId> {
        let id = (self.base_count + self.new_ends.len() as u64) as DocId;
        self.data
            .write_all(doc)
            .map_err(|e| Error::io(format!("write data unit {id}"), e))?;
        self.written += doc.len() as u64;
        self.new_ends.push(self.written);
        if self.version >= 2 {
            self.new_crcs.push(crc32(doc));
        }
        Ok(id)
    }

    /// Number of data units in the store (committed plus pending).
    pub fn len(&self) -> usize {
        self.base_count as usize + self.new_ends.len()
    }

    /// Whether the store holds no data units at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flushes everything, appends the new entries, and commits them by
    /// patching the unit count (and its CRC, in one positioned write)
    /// in the header. Returns the opened read-side corpus.
    pub fn finish(mut self) -> Result<DiskCorpus> {
        self.data
            .flush()
            .map_err(|e| Error::io("flush data file", e))?;
        let idx_path = self.dir.join(INDEX_FILE);
        let idx = OpenOptions::new()
            .write(true)
            .open(&idx_path)
            .map_err(|e| Error::io(format!("open {}", idx_path.display()), e))?;
        let stride = entry_stride(self.version) as usize;
        let mut table = Vec::with_capacity(self.new_ends.len() * stride);
        for (i, &end) in self.new_ends.iter().enumerate() {
            table.extend_from_slice(&end.to_le_bytes());
            if self.version >= 2 {
                table.extend_from_slice(&self.new_crcs[i].to_le_bytes());
            }
        }
        // Entries first, count last: the count is the commit point.
        idx.write_all_at(
            &table,
            table_offset(self.version) + self.base_count * stride as u64,
        )
        .map_err(|e| Error::io("write offsets", e))?;
        let count_bytes = (self.len() as u64).to_le_bytes();
        let mut commit = Vec::with_capacity(12);
        commit.extend_from_slice(&count_bytes);
        if self.version >= 2 {
            commit.extend_from_slice(&crc32(&count_bytes).to_le_bytes());
        }
        idx.write_all_at(&commit, COUNT_OFFSET)
            .map_err(|e| Error::io("write count", e))?;
        DiskCorpus::open(&self.dir)
    }
}

/// A read-only on-disk corpus.
pub struct DiskCorpus {
    data_path: PathBuf,
    /// Open handle used for random access via positioned reads
    /// (`read_exact_at`), so concurrent `get` calls share it without
    /// seek-state races or per-call `open` overhead.
    data: File,
    /// Cumulative end offsets; `ends[i]` is one past the last byte of doc i.
    ends: Vec<u64>,
    /// Per-unit CRC32s, present for v2 stores (absent for legacy v1).
    crcs: Option<Vec<u32>>,
    /// Optional read-through document cache (see [`DocCache`]).
    cache: Option<DocCache>,
}

impl DiskCorpus {
    /// Enables a sharded read-through document cache of approximately
    /// `total_bytes`, so repeated `get` calls for hot documents skip
    /// the `pread` syscall. See [`DocCache`].
    pub fn with_cache(mut self, total_bytes: usize) -> DiskCorpus {
        self.cache = Some(DocCache::new(total_bytes));
        self
    }

    /// Cache `(hits, misses)` counters, if a cache is enabled.
    pub fn cache_stats(&self) -> Option<(u64, u64)> {
        self.cache.as_ref().map(|c| (c.hits(), c.misses()))
    }
    /// Opens an existing corpus store in `dir`.
    pub fn open(dir: impl AsRef<Path>) -> Result<DiskCorpus> {
        let dir = dir.as_ref();
        let idx_path = dir.join(INDEX_FILE);
        let idx = File::open(&idx_path)
            .map_err(|e| Error::io(format!("open {}", idx_path.display()), e))?;
        let mut r = BufReader::new(idx);
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)
            .map_err(|e| Error::io("read magic", e))?;
        if &magic != MAGIC {
            return Err(Error::Corrupt(format!(
                "bad magic in {}: {magic:?}",
                idx_path.display()
            )));
        }
        let mut buf4 = [0u8; 4];
        r.read_exact(&mut buf4)
            .map_err(|e| Error::io("read version", e))?;
        let version = u32::from_le_bytes(buf4);
        if version == 0 || version > VERSION {
            return Err(Error::Corrupt(format!(
                "unsupported corpus version {version}"
            )));
        }
        let mut buf8 = [0u8; 8];
        r.read_exact(&mut buf8)
            .map_err(|e| Error::io("read count", e))?;
        let count = u64::from_le_bytes(buf8) as usize;
        if version >= 2 {
            let count_bytes = buf8;
            r.read_exact(&mut buf4)
                .map_err(|e| Error::io("read count CRC", e))?;
            if u32::from_le_bytes(buf4) != crc32(&count_bytes) {
                return Err(Error::Corrupt(format!(
                    "unit count fails its CRC in {}",
                    idx_path.display()
                )));
            }
        }
        let mut ends = Vec::with_capacity(count);
        let mut crcs = (version >= 2).then(|| Vec::with_capacity(count));
        let mut prev = 0u64;
        for i in 0..count {
            r.read_exact(&mut buf8)
                .map_err(|e| Error::io(format!("read offset {i}"), e))?;
            let end = u64::from_le_bytes(buf8);
            if end < prev {
                return Err(Error::Corrupt(format!(
                    "offsets not monotone at {i}: {end} < {prev}"
                )));
            }
            ends.push(end);
            prev = end;
            if let Some(crcs) = &mut crcs {
                r.read_exact(&mut buf4)
                    .map_err(|e| Error::io(format!("read unit CRC {i}"), e))?;
                crcs.push(u32::from_le_bytes(buf4));
            }
        }
        let data_path = dir.join(DATA_FILE);
        let data_len = std::fs::metadata(&data_path)
            .map_err(|e| Error::io(format!("stat {}", data_path.display()), e))?
            .len();
        let last_end = ends.last().copied().unwrap_or(0);
        if last_end > data_len {
            return Err(Error::Corrupt(format!(
                "offset table points past end of data file ({last_end} > {data_len})"
            )));
        }
        let data = File::open(&data_path)
            .map_err(|e| Error::io(format!("open {}", data_path.display()), e))?;
        Ok(DiskCorpus {
            data_path,
            data,
            ends,
            crcs,
            cache: None,
        })
    }

    /// Whether the store carries per-unit checksums (format v2+). Legacy
    /// v1 stores stay readable; `free fsck` reports them as an advisory.
    pub fn checksummed(&self) -> bool {
        self.crcs.is_some()
    }

    /// Re-reads every unit sequentially and checks its stored CRC32,
    /// returning one `(id, detail)` pair per corrupted unit. Empty on a
    /// clean store; always empty for legacy v1 stores (nothing to check).
    /// This is `free fsck`'s offline scan — the hot [`Corpus::scan`] path
    /// deliberately skips these checks.
    pub fn verify_units(&self) -> Result<Vec<(DocId, String)>> {
        let Some(crcs) = &self.crcs else {
            return Ok(Vec::new());
        };
        let file = File::open(&self.data_path)
            .map_err(|e| Error::io(format!("open {}", self.data_path.display()), e))?;
        let mut r = BufReader::with_capacity(1 << 20, file);
        let mut buf = Vec::new();
        let mut bad = Vec::new();
        let mut prev = 0u64;
        for (i, &end) in self.ends.iter().enumerate() {
            buf.resize((end - prev) as usize, 0);
            r.read_exact(&mut buf)
                .map_err(|e| Error::io(format!("verify data unit {i}"), e))?;
            prev = end;
            let actual = crc32(&buf);
            if actual != crcs[i] {
                bad.push((
                    i as DocId,
                    format!(
                        "data unit {i} fails its CRC (stored {:08x}, actual {actual:08x})",
                        crcs[i]
                    ),
                ));
            }
        }
        Ok(bad)
    }

    fn bounds(&self, id: DocId) -> Result<(u64, u64)> {
        let i = id as usize;
        if i >= self.ends.len() {
            return Err(Error::DocOutOfRange {
                id,
                len: self.ends.len(),
            });
        }
        let start = if i == 0 { 0 } else { self.ends[i - 1] };
        Ok((start, self.ends[i]))
    }
}

impl Corpus for DiskCorpus {
    fn len(&self) -> usize {
        self.ends.len()
    }

    fn total_bytes(&self) -> u64 {
        self.ends.last().copied().unwrap_or(0)
    }

    fn get(&self, id: DocId) -> Result<Vec<u8>> {
        let (start, end) = self.bounds(id)?;
        if let Some(cache) = &self.cache {
            if let Some(doc) = cache.get(id) {
                return Ok((*doc).clone());
            }
        }
        let mut buf = vec![0u8; (end - start) as usize];
        self.data
            .read_exact_at(&mut buf, start)
            .map_err(|e| Error::io(format!("read data unit {id}"), e))?;
        if let Some(crcs) = &self.crcs {
            if crc32(&buf) != crcs[id as usize] {
                return Err(Error::Corrupt(format!(
                    "data unit {id} fails its CRC in {}",
                    self.data_path.display()
                )));
            }
        }
        if let Some(cache) = &self.cache {
            cache.insert(id, std::sync::Arc::new(buf.clone()));
        }
        Ok(buf)
    }

    fn scan(&self, f: &mut dyn FnMut(DocId, &[u8]) -> bool) -> Result<()> {
        let file = File::open(&self.data_path)
            .map_err(|e| Error::io(format!("open {}", self.data_path.display()), e))?;
        let mut r = BufReader::with_capacity(1 << 20, file);
        let mut buf = Vec::new();
        let mut prev = 0u64;
        for (i, &end) in self.ends.iter().enumerate() {
            let len = (end - prev) as usize;
            buf.resize(len, 0);
            r.read_exact(&mut buf)
                .map_err(|e| Error::io(format!("scan data unit {i}"), e))?;
            prev = end;
            if !f(i as DocId, &buf) {
                break;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("free-corpus-test-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn roundtrip() {
        let dir = tmpdir("roundtrip");
        let mut w = CorpusWriter::create(&dir).unwrap();
        let docs: Vec<Vec<u8>> = vec![
            b"first page".to_vec(),
            Vec::new(),
            b"third page with more bytes".to_vec(),
        ];
        for d in &docs {
            w.append(d).unwrap();
        }
        assert_eq!(w.len(), 3);
        let c = w.finish().unwrap();
        assert_eq!(c.len(), 3);
        assert_eq!(c.total_bytes(), 36);
        for (i, d) in docs.iter().enumerate() {
            assert_eq!(&c.get(i as DocId).unwrap(), d);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen() {
        let dir = tmpdir("reopen");
        let mut w = CorpusWriter::create(&dir).unwrap();
        w.append(b"persisted").unwrap();
        drop(w.finish().unwrap());
        let c = DiskCorpus::open(&dir).unwrap();
        assert_eq!(c.get(0).unwrap(), b"persisted");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scan_matches_get() {
        let dir = tmpdir("scan");
        let mut w = CorpusWriter::create(&dir).unwrap();
        for i in 0..50u32 {
            w.append(format!("document number {i} {}", "x".repeat(i as usize)).as_bytes())
                .unwrap();
        }
        let c = w.finish().unwrap();
        let mut count = 0;
        c.scan(&mut |id, bytes| {
            assert_eq!(bytes, c.get(id).unwrap());
            count += 1;
            true
        })
        .unwrap();
        assert_eq!(count, 50);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scan_early_stop() {
        let dir = tmpdir("early");
        let mut w = CorpusWriter::create(&dir).unwrap();
        for _ in 0..10 {
            w.append(b"doc").unwrap();
        }
        let c = w.finish().unwrap();
        let mut n = 0;
        c.scan(&mut |_, _| {
            n += 1;
            n < 4
        })
        .unwrap();
        assert_eq!(n, 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn out_of_range() {
        let dir = tmpdir("oor");
        let w = CorpusWriter::create(&dir).unwrap();
        let c = w.finish().unwrap();
        assert!(matches!(c.get(0), Err(Error::DocOutOfRange { .. })));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_magic_rejected() {
        let dir = tmpdir("corrupt");
        let mut w = CorpusWriter::create(&dir).unwrap();
        w.append(b"data").unwrap();
        drop(w.finish().unwrap());
        std::fs::write(dir.join(INDEX_FILE), b"NOTMAGIC????????").unwrap();
        assert!(matches!(DiskCorpus::open(&dir), Err(Error::Corrupt(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_data_rejected() {
        let dir = tmpdir("trunc");
        let mut w = CorpusWriter::create(&dir).unwrap();
        w.append(b"some bytes here").unwrap();
        drop(w.finish().unwrap());
        // Chop the data file shorter than the offsets claim.
        std::fs::write(dir.join(DATA_FILE), b"x").unwrap();
        assert!(matches!(DiskCorpus::open(&dir), Err(Error::Corrupt(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_gets_agree() {
        let dir = tmpdir("parget");
        let mut w = CorpusWriter::create(&dir).unwrap();
        for i in 0..200u32 {
            w.append(format!("unit {i} {}", "y".repeat((i % 17) as usize)).as_bytes())
                .unwrap();
        }
        let c = std::sync::Arc::new(w.finish().unwrap());
        let mut handles = Vec::new();
        for t in 0..4u32 {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                for i in (t..200).step_by(4) {
                    let want = format!("unit {i} {}", "y".repeat((i % 17) as usize));
                    assert_eq!(c.get(i).unwrap(), want.as_bytes());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_append_resumes_ids_and_bytes() {
        let dir = tmpdir("append");
        let mut w = CorpusWriter::create(&dir).unwrap();
        assert_eq!(w.append(b"one").unwrap(), 0);
        assert_eq!(w.append(b"two").unwrap(), 1);
        drop(w.finish().unwrap());
        // Three reopen cycles, each adding one unit.
        for round in 0..3u32 {
            let mut w = CorpusWriter::open_append(&dir).unwrap();
            assert_eq!(w.len(), 2 + round as usize);
            let id = w.append(format!("round {round}").as_bytes()).unwrap();
            assert_eq!(id, 2 + round);
            let c = w.finish().unwrap();
            assert_eq!(c.len(), 3 + round as usize);
        }
        let c = DiskCorpus::open(&dir).unwrap();
        assert_eq!(c.get(0).unwrap(), b"one");
        assert_eq!(c.get(1).unwrap(), b"two");
        for round in 0..3u32 {
            assert_eq!(
                c.get(2 + round).unwrap(),
                format!("round {round}").as_bytes()
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_append_on_empty_store() {
        let dir = tmpdir("append-empty");
        drop(CorpusWriter::create(&dir).unwrap().finish().unwrap());
        let mut w = CorpusWriter::open_append(&dir).unwrap();
        assert!(w.is_empty());
        w.append(b"first").unwrap();
        let c = w.finish().unwrap();
        assert_eq!(c.get(0).unwrap(), b"first");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_append_truncates_torn_tail() {
        let dir = tmpdir("append-torn");
        let mut w = CorpusWriter::create(&dir).unwrap();
        w.append(b"committed").unwrap();
        drop(w.finish().unwrap());
        // Simulate a writer that crashed after writing data bytes but
        // before committing the offsets: raw bytes past the last offset.
        {
            use std::io::Write;
            let mut f = OpenOptions::new()
                .append(true)
                .open(dir.join(DATA_FILE))
                .unwrap();
            f.write_all(b"torn garbage").unwrap();
        }
        let mut w = CorpusWriter::open_append(&dir).unwrap();
        assert_eq!(w.len(), 1);
        w.append(b"after crash").unwrap();
        let c = w.finish().unwrap();
        assert_eq!(c.get(0).unwrap(), b"committed");
        assert_eq!(c.get(1).unwrap(), b"after crash");
        assert_eq!(c.total_bytes(), 9 + 11);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Hand-crafts a version-1 store (8-byte entries, no CRCs).
    fn write_v1_store(dir: &Path, docs: &[&[u8]]) {
        std::fs::create_dir_all(dir).unwrap();
        let mut data = Vec::new();
        let mut idx = Vec::new();
        idx.extend_from_slice(MAGIC);
        idx.extend_from_slice(&1u32.to_le_bytes());
        idx.extend_from_slice(&(docs.len() as u64).to_le_bytes());
        for d in docs {
            data.extend_from_slice(d);
            idx.extend_from_slice(&(data.len() as u64).to_le_bytes());
        }
        std::fs::write(dir.join(DATA_FILE), data).unwrap();
        std::fs::write(dir.join(INDEX_FILE), idx).unwrap();
    }

    #[test]
    fn version1_stores_still_readable_and_appendable() {
        let dir = tmpdir("v1compat");
        write_v1_store(&dir, &[b"legacy one", b"legacy two"]);
        let c = DiskCorpus::open(&dir).unwrap();
        assert!(!c.checksummed());
        assert_eq!(c.get(0).unwrap(), b"legacy one");
        assert_eq!(c.get(1).unwrap(), b"legacy two");
        assert!(c.verify_units().unwrap().is_empty());
        // Appends keep the file's own (v1) format self-consistent.
        let mut w = CorpusWriter::open_append(&dir).unwrap();
        w.append(b"appended").unwrap();
        let c = w.finish().unwrap();
        assert!(!c.checksummed());
        assert_eq!(c.get(2).unwrap(), b"appended");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn new_stores_are_checksummed() {
        let dir = tmpdir("v2crc");
        let mut w = CorpusWriter::create(&dir).unwrap();
        w.append(b"guarded bytes").unwrap();
        let c = w.finish().unwrap();
        assert!(c.checksummed());
        assert!(c.verify_units().unwrap().is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn flipped_data_byte_fails_get_and_verify() {
        let dir = tmpdir("flip");
        let mut w = CorpusWriter::create(&dir).unwrap();
        w.append(b"aaaa").unwrap();
        w.append(b"bbbb").unwrap();
        drop(w.finish().unwrap());
        // Flip one bit inside unit 1's bytes.
        let mut data = std::fs::read(dir.join(DATA_FILE)).unwrap();
        data[5] ^= 0x10;
        std::fs::write(dir.join(DATA_FILE), &data).unwrap();
        let c = DiskCorpus::open(&dir).unwrap();
        assert_eq!(c.get(0).unwrap(), b"aaaa");
        assert!(matches!(c.get(1), Err(Error::Corrupt(_))));
        let bad = c.verify_units().unwrap();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].0, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn flipped_count_rejected_at_open() {
        let dir = tmpdir("count-crc");
        let mut w = CorpusWriter::create(&dir).unwrap();
        w.append(b"doc").unwrap();
        drop(w.finish().unwrap());
        let mut idx = std::fs::read(dir.join(INDEX_FILE)).unwrap();
        idx[COUNT_OFFSET as usize] ^= 1;
        std::fs::write(dir.join(INDEX_FILE), &idx).unwrap();
        assert!(matches!(DiskCorpus::open(&dir), Err(Error::Corrupt(_))));
        assert!(matches!(
            CorpusWriter::open_append(&dir),
            Err(Error::Corrupt(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_append_missing_store_is_io_error() {
        assert!(matches!(
            CorpusWriter::open_append("/nonexistent/path/xyz"),
            Err(Error::Io { .. })
        ));
    }

    #[test]
    fn missing_dir_is_io_error() {
        assert!(matches!(
            DiskCorpus::open("/nonexistent/path/xyz"),
            Err(Error::Io { .. })
        ));
    }
}
