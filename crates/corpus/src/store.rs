//! On-disk data-unit storage.
//!
//! Layout (two files inside a directory):
//!
//! ```text
//! <dir>/corpus.dat   raw data-unit bytes, concatenated in id order
//! <dir>/corpus.idx   header + one u64 little-endian *end* offset per unit
//! ```
//!
//! The index header is a 8-byte magic plus a u32 version. Offsets are
//! cumulative ends, so data unit `i` occupies
//! `dat[offset[i-1]..offset[i]]` (with `offset[-1] = 0`). The full offset
//! table is loaded into memory on open — 8 bytes per data unit, which for
//! the paper's 700 k pages is under 6 MB.

use crate::{Corpus, DocId, Error, Result};
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 8] = b"FREECORP";
const VERSION: u32 = 1;
const DATA_FILE: &str = "corpus.dat";
const INDEX_FILE: &str = "corpus.idx";

/// Streaming writer that appends data units to an on-disk corpus.
pub struct CorpusWriter {
    data: BufWriter<File>,
    ends: Vec<u64>,
    written: u64,
    dir: PathBuf,
}

impl CorpusWriter {
    /// Creates (or truncates) a corpus store in `dir`.
    pub fn create(dir: impl AsRef<Path>) -> Result<CorpusWriter> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)
            .map_err(|e| Error::io(format!("create dir {}", dir.display()), e))?;
        let data_path = dir.join(DATA_FILE);
        let data = File::create(&data_path)
            .map_err(|e| Error::io(format!("create {}", data_path.display()), e))?;
        Ok(CorpusWriter {
            data: BufWriter::new(data),
            ends: Vec::new(),
            written: 0,
            dir,
        })
    }

    /// Appends one data unit, returning its id.
    pub fn append(&mut self, doc: &[u8]) -> Result<DocId> {
        let id = self.ends.len() as DocId;
        self.data
            .write_all(doc)
            .map_err(|e| Error::io(format!("write data unit {id}"), e))?;
        self.written += doc.len() as u64;
        self.ends.push(self.written);
        Ok(id)
    }

    /// Number of data units appended so far.
    pub fn len(&self) -> usize {
        self.ends.len()
    }

    /// Whether nothing has been appended yet.
    pub fn is_empty(&self) -> bool {
        self.ends.is_empty()
    }

    /// Flushes everything and writes the offset table. Returns the opened
    /// read-side corpus.
    pub fn finish(mut self) -> Result<DiskCorpus> {
        self.data
            .flush()
            .map_err(|e| Error::io("flush data file", e))?;
        let idx_path = self.dir.join(INDEX_FILE);
        let idx = File::create(&idx_path)
            .map_err(|e| Error::io(format!("create {}", idx_path.display()), e))?;
        let mut w = BufWriter::new(idx);
        w.write_all(MAGIC)
            .map_err(|e| Error::io("write magic", e))?;
        w.write_all(&VERSION.to_le_bytes())
            .map_err(|e| Error::io("write version", e))?;
        w.write_all(&(self.ends.len() as u64).to_le_bytes())
            .map_err(|e| Error::io("write count", e))?;
        for &end in &self.ends {
            w.write_all(&end.to_le_bytes())
                .map_err(|e| Error::io("write offset", e))?;
        }
        w.flush().map_err(|e| Error::io("flush index file", e))?;
        DiskCorpus::open(&self.dir)
    }
}

/// A read-only on-disk corpus.
pub struct DiskCorpus {
    data_path: PathBuf,
    /// Open handle used for random access via positioned reads
    /// (`read_exact_at`), so concurrent `get` calls share it without
    /// seek-state races or per-call `open` overhead.
    data: File,
    /// Cumulative end offsets; `ends[i]` is one past the last byte of doc i.
    ends: Vec<u64>,
}

impl DiskCorpus {
    /// Opens an existing corpus store in `dir`.
    pub fn open(dir: impl AsRef<Path>) -> Result<DiskCorpus> {
        let dir = dir.as_ref();
        let idx_path = dir.join(INDEX_FILE);
        let idx = File::open(&idx_path)
            .map_err(|e| Error::io(format!("open {}", idx_path.display()), e))?;
        let mut r = BufReader::new(idx);
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)
            .map_err(|e| Error::io("read magic", e))?;
        if &magic != MAGIC {
            return Err(Error::Corrupt(format!(
                "bad magic in {}: {magic:?}",
                idx_path.display()
            )));
        }
        let mut buf4 = [0u8; 4];
        r.read_exact(&mut buf4)
            .map_err(|e| Error::io("read version", e))?;
        let version = u32::from_le_bytes(buf4);
        if version != VERSION {
            return Err(Error::Corrupt(format!(
                "unsupported corpus version {version}"
            )));
        }
        let mut buf8 = [0u8; 8];
        r.read_exact(&mut buf8)
            .map_err(|e| Error::io("read count", e))?;
        let count = u64::from_le_bytes(buf8) as usize;
        let mut ends = Vec::with_capacity(count);
        let mut prev = 0u64;
        for i in 0..count {
            r.read_exact(&mut buf8)
                .map_err(|e| Error::io(format!("read offset {i}"), e))?;
            let end = u64::from_le_bytes(buf8);
            if end < prev {
                return Err(Error::Corrupt(format!(
                    "offsets not monotone at {i}: {end} < {prev}"
                )));
            }
            ends.push(end);
            prev = end;
        }
        let data_path = dir.join(DATA_FILE);
        let data_len = std::fs::metadata(&data_path)
            .map_err(|e| Error::io(format!("stat {}", data_path.display()), e))?
            .len();
        if ends.last().copied().unwrap_or(0) > data_len {
            return Err(Error::Corrupt(format!(
                "offset table points past end of data file ({} > {data_len})",
                ends.last().unwrap()
            )));
        }
        let data = File::open(&data_path)
            .map_err(|e| Error::io(format!("open {}", data_path.display()), e))?;
        Ok(DiskCorpus {
            data_path,
            data,
            ends,
        })
    }

    fn bounds(&self, id: DocId) -> Result<(u64, u64)> {
        let i = id as usize;
        if i >= self.ends.len() {
            return Err(Error::DocOutOfRange {
                id,
                len: self.ends.len(),
            });
        }
        let start = if i == 0 { 0 } else { self.ends[i - 1] };
        Ok((start, self.ends[i]))
    }
}

impl Corpus for DiskCorpus {
    fn len(&self) -> usize {
        self.ends.len()
    }

    fn total_bytes(&self) -> u64 {
        self.ends.last().copied().unwrap_or(0)
    }

    fn get(&self, id: DocId) -> Result<Vec<u8>> {
        let (start, end) = self.bounds(id)?;
        let mut buf = vec![0u8; (end - start) as usize];
        self.data
            .read_exact_at(&mut buf, start)
            .map_err(|e| Error::io(format!("read data unit {id}"), e))?;
        Ok(buf)
    }

    fn scan(&self, f: &mut dyn FnMut(DocId, &[u8]) -> bool) -> Result<()> {
        let file = File::open(&self.data_path)
            .map_err(|e| Error::io(format!("open {}", self.data_path.display()), e))?;
        let mut r = BufReader::with_capacity(1 << 20, file);
        let mut buf = Vec::new();
        let mut prev = 0u64;
        for (i, &end) in self.ends.iter().enumerate() {
            let len = (end - prev) as usize;
            buf.resize(len, 0);
            r.read_exact(&mut buf)
                .map_err(|e| Error::io(format!("scan data unit {i}"), e))?;
            prev = end;
            if !f(i as DocId, &buf) {
                break;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("free-corpus-test-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn roundtrip() {
        let dir = tmpdir("roundtrip");
        let mut w = CorpusWriter::create(&dir).unwrap();
        let docs: Vec<Vec<u8>> = vec![
            b"first page".to_vec(),
            Vec::new(),
            b"third page with more bytes".to_vec(),
        ];
        for d in &docs {
            w.append(d).unwrap();
        }
        assert_eq!(w.len(), 3);
        let c = w.finish().unwrap();
        assert_eq!(c.len(), 3);
        assert_eq!(c.total_bytes(), 36);
        for (i, d) in docs.iter().enumerate() {
            assert_eq!(&c.get(i as DocId).unwrap(), d);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen() {
        let dir = tmpdir("reopen");
        let mut w = CorpusWriter::create(&dir).unwrap();
        w.append(b"persisted").unwrap();
        drop(w.finish().unwrap());
        let c = DiskCorpus::open(&dir).unwrap();
        assert_eq!(c.get(0).unwrap(), b"persisted");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scan_matches_get() {
        let dir = tmpdir("scan");
        let mut w = CorpusWriter::create(&dir).unwrap();
        for i in 0..50u32 {
            w.append(format!("document number {i} {}", "x".repeat(i as usize)).as_bytes())
                .unwrap();
        }
        let c = w.finish().unwrap();
        let mut count = 0;
        c.scan(&mut |id, bytes| {
            assert_eq!(bytes, c.get(id).unwrap());
            count += 1;
            true
        })
        .unwrap();
        assert_eq!(count, 50);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scan_early_stop() {
        let dir = tmpdir("early");
        let mut w = CorpusWriter::create(&dir).unwrap();
        for _ in 0..10 {
            w.append(b"doc").unwrap();
        }
        let c = w.finish().unwrap();
        let mut n = 0;
        c.scan(&mut |_, _| {
            n += 1;
            n < 4
        })
        .unwrap();
        assert_eq!(n, 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn out_of_range() {
        let dir = tmpdir("oor");
        let w = CorpusWriter::create(&dir).unwrap();
        let c = w.finish().unwrap();
        assert!(matches!(c.get(0), Err(Error::DocOutOfRange { .. })));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_magic_rejected() {
        let dir = tmpdir("corrupt");
        let mut w = CorpusWriter::create(&dir).unwrap();
        w.append(b"data").unwrap();
        drop(w.finish().unwrap());
        std::fs::write(dir.join(INDEX_FILE), b"NOTMAGIC????????").unwrap();
        assert!(matches!(DiskCorpus::open(&dir), Err(Error::Corrupt(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_data_rejected() {
        let dir = tmpdir("trunc");
        let mut w = CorpusWriter::create(&dir).unwrap();
        w.append(b"some bytes here").unwrap();
        drop(w.finish().unwrap());
        // Chop the data file shorter than the offsets claim.
        std::fs::write(dir.join(DATA_FILE), b"x").unwrap();
        assert!(matches!(DiskCorpus::open(&dir), Err(Error::Corrupt(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_gets_agree() {
        let dir = tmpdir("parget");
        let mut w = CorpusWriter::create(&dir).unwrap();
        for i in 0..200u32 {
            w.append(format!("unit {i} {}", "y".repeat((i % 17) as usize)).as_bytes())
                .unwrap();
        }
        let c = std::sync::Arc::new(w.finish().unwrap());
        let mut handles = Vec::new();
        for t in 0..4u32 {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                for i in (t..200).step_by(4) {
                    let want = format!("unit {i} {}", "y".repeat((i % 17) as usize));
                    assert_eq!(c.get(i).unwrap(), want.as_bytes());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_dir_is_io_error() {
        assert!(matches!(
            DiskCorpus::open("/nonexistent/path/xyz"),
            Err(Error::Io { .. })
        ));
    }
}
