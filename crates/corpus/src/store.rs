//! On-disk data-unit storage.
//!
//! Layout (two files inside a directory):
//!
//! ```text
//! <dir>/corpus.dat   raw data-unit bytes, concatenated in id order
//! <dir>/corpus.idx   header + one u64 little-endian *end* offset per unit
//! ```
//!
//! The index header is a 8-byte magic plus a u32 version plus a u64 unit
//! count. Offsets are cumulative ends, so data unit `i` occupies
//! `dat[offset[i-1]..offset[i]]` (with `offset[-1] = 0`). The full offset
//! table is loaded into memory on open — 8 bytes per data unit, which for
//! the paper's 700 k pages is under 6 MB.
//!
//! The store is appendable: [`CorpusWriter::open_append`] resumes writing
//! after the last committed unit in O(1) — it reads only the index header
//! and the *tail* offset (never the full table, never the data file), and
//! [`CorpusWriter::finish`] appends the new offsets and patches the count
//! in place. The count is the commit point: offsets are written before the
//! count, so a crash mid-finish leaves the previously committed prefix
//! readable and any torn tail bytes are truncated on the next reopen.

use crate::cache::DocCache;
use crate::{Corpus, DocId, Error, Result};
use std::fs::{File, OpenOptions};
use std::io::{BufReader, BufWriter, Read, Write};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 8] = b"FREECORP";
const VERSION: u32 = 1;
const DATA_FILE: &str = "corpus.dat";
const INDEX_FILE: &str = "corpus.idx";
/// Byte offset of the u64 unit count inside the index file.
const COUNT_OFFSET: u64 = 12;
/// Byte offset where the offset table starts inside the index file.
const TABLE_OFFSET: u64 = 20;

/// Reads and validates the index-file header, returning the unit count.
fn read_header(idx: &File, idx_path: &Path) -> Result<u64> {
    let mut header = [0u8; TABLE_OFFSET as usize];
    idx.read_exact_at(&mut header, 0)
        .map_err(|e| Error::io(format!("read header of {}", idx_path.display()), e))?;
    if &header[..8] != MAGIC {
        return Err(Error::Corrupt(format!(
            "bad magic in {}: {:?}",
            idx_path.display(),
            &header[..8]
        )));
    }
    let version = u32::from_le_bytes(header[8..12].try_into().unwrap());
    if version != VERSION {
        return Err(Error::Corrupt(format!(
            "unsupported corpus version {version}"
        )));
    }
    Ok(u64::from_le_bytes(header[12..20].try_into().unwrap()))
}

/// Streaming writer that appends data units to an on-disk corpus.
pub struct CorpusWriter {
    data: BufWriter<File>,
    /// End offsets of units appended by *this* writer (absolute positions).
    new_ends: Vec<u64>,
    /// Units already committed before this writer opened.
    base_count: u64,
    written: u64,
    dir: PathBuf,
}

impl CorpusWriter {
    /// Creates (or truncates) a corpus store in `dir`.
    pub fn create(dir: impl AsRef<Path>) -> Result<CorpusWriter> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)
            .map_err(|e| Error::io(format!("create dir {}", dir.display()), e))?;
        let data_path = dir.join(DATA_FILE);
        let data = File::create(&data_path)
            .map_err(|e| Error::io(format!("create {}", data_path.display()), e))?;
        // Write the header (count 0) up front so `finish` only ever patches
        // the count and appends offsets, in both create and append modes.
        let idx_path = dir.join(INDEX_FILE);
        let idx = File::create(&idx_path)
            .map_err(|e| Error::io(format!("create {}", idx_path.display()), e))?;
        let mut header = Vec::with_capacity(TABLE_OFFSET as usize);
        header.extend_from_slice(MAGIC);
        header.extend_from_slice(&VERSION.to_le_bytes());
        header.extend_from_slice(&0u64.to_le_bytes());
        idx.write_all_at(&header, 0)
            .map_err(|e| Error::io("write header", e))?;
        Ok(CorpusWriter {
            data: BufWriter::new(data),
            new_ends: Vec::new(),
            base_count: 0,
            written: 0,
            dir,
        })
    }

    /// Reopens an existing store for appending in O(1): only the index
    /// header and the last committed offset are read — the offset table is
    /// never scanned and the data file is never rewritten. Uncommitted
    /// bytes past the last committed offset (from a crashed writer) are
    /// truncated away.
    pub fn open_append(dir: impl AsRef<Path>) -> Result<CorpusWriter> {
        let dir = dir.as_ref().to_path_buf();
        let idx_path = dir.join(INDEX_FILE);
        let idx = File::open(&idx_path)
            .map_err(|e| Error::io(format!("open {}", idx_path.display()), e))?;
        let base_count = read_header(&idx, &idx_path)?;
        let written = if base_count == 0 {
            0
        } else {
            let mut buf8 = [0u8; 8];
            idx.read_exact_at(&mut buf8, TABLE_OFFSET + (base_count - 1) * 8)
                .map_err(|e| Error::io("read tail offset", e))?;
            u64::from_le_bytes(buf8)
        };
        let data_path = dir.join(DATA_FILE);
        let data = OpenOptions::new()
            .write(true)
            .open(&data_path)
            .map_err(|e| Error::io(format!("open {}", data_path.display()), e))?;
        let data_len = data
            .metadata()
            .map_err(|e| Error::io(format!("stat {}", data_path.display()), e))?
            .len();
        if data_len < written {
            return Err(Error::Corrupt(format!(
                "data file shorter than committed offsets ({data_len} < {written})"
            )));
        }
        if data_len > written {
            // Torn tail from a writer that crashed before committing.
            data.set_len(written)
                .map_err(|e| Error::io("truncate torn tail", e))?;
        }
        use std::io::Seek;
        let mut data = data;
        data.seek(std::io::SeekFrom::Start(written))
            .map_err(|e| Error::io("seek to append position", e))?;
        Ok(CorpusWriter {
            data: BufWriter::new(data),
            new_ends: Vec::new(),
            base_count,
            written,
            dir,
        })
    }

    /// Appends one data unit, returning its id.
    pub fn append(&mut self, doc: &[u8]) -> Result<DocId> {
        let id = (self.base_count + self.new_ends.len() as u64) as DocId;
        self.data
            .write_all(doc)
            .map_err(|e| Error::io(format!("write data unit {id}"), e))?;
        self.written += doc.len() as u64;
        self.new_ends.push(self.written);
        Ok(id)
    }

    /// Number of data units in the store (committed plus pending).
    pub fn len(&self) -> usize {
        self.base_count as usize + self.new_ends.len()
    }

    /// Whether the store holds no data units at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flushes everything, appends the new offsets, and commits them by
    /// patching the unit count in the header. Returns the opened read-side
    /// corpus.
    pub fn finish(mut self) -> Result<DiskCorpus> {
        self.data
            .flush()
            .map_err(|e| Error::io("flush data file", e))?;
        let idx_path = self.dir.join(INDEX_FILE);
        let idx = OpenOptions::new()
            .write(true)
            .open(&idx_path)
            .map_err(|e| Error::io(format!("open {}", idx_path.display()), e))?;
        let mut table = Vec::with_capacity(self.new_ends.len() * 8);
        for &end in &self.new_ends {
            table.extend_from_slice(&end.to_le_bytes());
        }
        // Offsets first, count last: the count is the commit point.
        idx.write_all_at(&table, TABLE_OFFSET + self.base_count * 8)
            .map_err(|e| Error::io("write offsets", e))?;
        idx.write_all_at(&(self.len() as u64).to_le_bytes(), COUNT_OFFSET)
            .map_err(|e| Error::io("write count", e))?;
        DiskCorpus::open(&self.dir)
    }
}

/// A read-only on-disk corpus.
pub struct DiskCorpus {
    data_path: PathBuf,
    /// Open handle used for random access via positioned reads
    /// (`read_exact_at`), so concurrent `get` calls share it without
    /// seek-state races or per-call `open` overhead.
    data: File,
    /// Cumulative end offsets; `ends[i]` is one past the last byte of doc i.
    ends: Vec<u64>,
    /// Optional read-through document cache (see [`DocCache`]).
    cache: Option<DocCache>,
}

impl DiskCorpus {
    /// Enables a sharded read-through document cache of approximately
    /// `total_bytes`, so repeated `get` calls for hot documents skip
    /// the `pread` syscall. See [`DocCache`].
    pub fn with_cache(mut self, total_bytes: usize) -> DiskCorpus {
        self.cache = Some(DocCache::new(total_bytes));
        self
    }

    /// Cache `(hits, misses)` counters, if a cache is enabled.
    pub fn cache_stats(&self) -> Option<(u64, u64)> {
        self.cache.as_ref().map(|c| (c.hits(), c.misses()))
    }
    /// Opens an existing corpus store in `dir`.
    pub fn open(dir: impl AsRef<Path>) -> Result<DiskCorpus> {
        let dir = dir.as_ref();
        let idx_path = dir.join(INDEX_FILE);
        let idx = File::open(&idx_path)
            .map_err(|e| Error::io(format!("open {}", idx_path.display()), e))?;
        let mut r = BufReader::new(idx);
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)
            .map_err(|e| Error::io("read magic", e))?;
        if &magic != MAGIC {
            return Err(Error::Corrupt(format!(
                "bad magic in {}: {magic:?}",
                idx_path.display()
            )));
        }
        let mut buf4 = [0u8; 4];
        r.read_exact(&mut buf4)
            .map_err(|e| Error::io("read version", e))?;
        let version = u32::from_le_bytes(buf4);
        if version != VERSION {
            return Err(Error::Corrupt(format!(
                "unsupported corpus version {version}"
            )));
        }
        let mut buf8 = [0u8; 8];
        r.read_exact(&mut buf8)
            .map_err(|e| Error::io("read count", e))?;
        let count = u64::from_le_bytes(buf8) as usize;
        let mut ends = Vec::with_capacity(count);
        let mut prev = 0u64;
        for i in 0..count {
            r.read_exact(&mut buf8)
                .map_err(|e| Error::io(format!("read offset {i}"), e))?;
            let end = u64::from_le_bytes(buf8);
            if end < prev {
                return Err(Error::Corrupt(format!(
                    "offsets not monotone at {i}: {end} < {prev}"
                )));
            }
            ends.push(end);
            prev = end;
        }
        let data_path = dir.join(DATA_FILE);
        let data_len = std::fs::metadata(&data_path)
            .map_err(|e| Error::io(format!("stat {}", data_path.display()), e))?
            .len();
        if ends.last().copied().unwrap_or(0) > data_len {
            return Err(Error::Corrupt(format!(
                "offset table points past end of data file ({} > {data_len})",
                ends.last().unwrap()
            )));
        }
        let data = File::open(&data_path)
            .map_err(|e| Error::io(format!("open {}", data_path.display()), e))?;
        Ok(DiskCorpus {
            data_path,
            data,
            ends,
            cache: None,
        })
    }

    fn bounds(&self, id: DocId) -> Result<(u64, u64)> {
        let i = id as usize;
        if i >= self.ends.len() {
            return Err(Error::DocOutOfRange {
                id,
                len: self.ends.len(),
            });
        }
        let start = if i == 0 { 0 } else { self.ends[i - 1] };
        Ok((start, self.ends[i]))
    }
}

impl Corpus for DiskCorpus {
    fn len(&self) -> usize {
        self.ends.len()
    }

    fn total_bytes(&self) -> u64 {
        self.ends.last().copied().unwrap_or(0)
    }

    fn get(&self, id: DocId) -> Result<Vec<u8>> {
        let (start, end) = self.bounds(id)?;
        if let Some(cache) = &self.cache {
            if let Some(doc) = cache.get(id) {
                return Ok((*doc).clone());
            }
        }
        let mut buf = vec![0u8; (end - start) as usize];
        self.data
            .read_exact_at(&mut buf, start)
            .map_err(|e| Error::io(format!("read data unit {id}"), e))?;
        if let Some(cache) = &self.cache {
            cache.insert(id, std::sync::Arc::new(buf.clone()));
        }
        Ok(buf)
    }

    fn scan(&self, f: &mut dyn FnMut(DocId, &[u8]) -> bool) -> Result<()> {
        let file = File::open(&self.data_path)
            .map_err(|e| Error::io(format!("open {}", self.data_path.display()), e))?;
        let mut r = BufReader::with_capacity(1 << 20, file);
        let mut buf = Vec::new();
        let mut prev = 0u64;
        for (i, &end) in self.ends.iter().enumerate() {
            let len = (end - prev) as usize;
            buf.resize(len, 0);
            r.read_exact(&mut buf)
                .map_err(|e| Error::io(format!("scan data unit {i}"), e))?;
            prev = end;
            if !f(i as DocId, &buf) {
                break;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("free-corpus-test-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn roundtrip() {
        let dir = tmpdir("roundtrip");
        let mut w = CorpusWriter::create(&dir).unwrap();
        let docs: Vec<Vec<u8>> = vec![
            b"first page".to_vec(),
            Vec::new(),
            b"third page with more bytes".to_vec(),
        ];
        for d in &docs {
            w.append(d).unwrap();
        }
        assert_eq!(w.len(), 3);
        let c = w.finish().unwrap();
        assert_eq!(c.len(), 3);
        assert_eq!(c.total_bytes(), 36);
        for (i, d) in docs.iter().enumerate() {
            assert_eq!(&c.get(i as DocId).unwrap(), d);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen() {
        let dir = tmpdir("reopen");
        let mut w = CorpusWriter::create(&dir).unwrap();
        w.append(b"persisted").unwrap();
        drop(w.finish().unwrap());
        let c = DiskCorpus::open(&dir).unwrap();
        assert_eq!(c.get(0).unwrap(), b"persisted");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scan_matches_get() {
        let dir = tmpdir("scan");
        let mut w = CorpusWriter::create(&dir).unwrap();
        for i in 0..50u32 {
            w.append(format!("document number {i} {}", "x".repeat(i as usize)).as_bytes())
                .unwrap();
        }
        let c = w.finish().unwrap();
        let mut count = 0;
        c.scan(&mut |id, bytes| {
            assert_eq!(bytes, c.get(id).unwrap());
            count += 1;
            true
        })
        .unwrap();
        assert_eq!(count, 50);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scan_early_stop() {
        let dir = tmpdir("early");
        let mut w = CorpusWriter::create(&dir).unwrap();
        for _ in 0..10 {
            w.append(b"doc").unwrap();
        }
        let c = w.finish().unwrap();
        let mut n = 0;
        c.scan(&mut |_, _| {
            n += 1;
            n < 4
        })
        .unwrap();
        assert_eq!(n, 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn out_of_range() {
        let dir = tmpdir("oor");
        let w = CorpusWriter::create(&dir).unwrap();
        let c = w.finish().unwrap();
        assert!(matches!(c.get(0), Err(Error::DocOutOfRange { .. })));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_magic_rejected() {
        let dir = tmpdir("corrupt");
        let mut w = CorpusWriter::create(&dir).unwrap();
        w.append(b"data").unwrap();
        drop(w.finish().unwrap());
        std::fs::write(dir.join(INDEX_FILE), b"NOTMAGIC????????").unwrap();
        assert!(matches!(DiskCorpus::open(&dir), Err(Error::Corrupt(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_data_rejected() {
        let dir = tmpdir("trunc");
        let mut w = CorpusWriter::create(&dir).unwrap();
        w.append(b"some bytes here").unwrap();
        drop(w.finish().unwrap());
        // Chop the data file shorter than the offsets claim.
        std::fs::write(dir.join(DATA_FILE), b"x").unwrap();
        assert!(matches!(DiskCorpus::open(&dir), Err(Error::Corrupt(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_gets_agree() {
        let dir = tmpdir("parget");
        let mut w = CorpusWriter::create(&dir).unwrap();
        for i in 0..200u32 {
            w.append(format!("unit {i} {}", "y".repeat((i % 17) as usize)).as_bytes())
                .unwrap();
        }
        let c = std::sync::Arc::new(w.finish().unwrap());
        let mut handles = Vec::new();
        for t in 0..4u32 {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                for i in (t..200).step_by(4) {
                    let want = format!("unit {i} {}", "y".repeat((i % 17) as usize));
                    assert_eq!(c.get(i).unwrap(), want.as_bytes());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_append_resumes_ids_and_bytes() {
        let dir = tmpdir("append");
        let mut w = CorpusWriter::create(&dir).unwrap();
        assert_eq!(w.append(b"one").unwrap(), 0);
        assert_eq!(w.append(b"two").unwrap(), 1);
        drop(w.finish().unwrap());
        // Three reopen cycles, each adding one unit.
        for round in 0..3u32 {
            let mut w = CorpusWriter::open_append(&dir).unwrap();
            assert_eq!(w.len(), 2 + round as usize);
            let id = w.append(format!("round {round}").as_bytes()).unwrap();
            assert_eq!(id, 2 + round);
            let c = w.finish().unwrap();
            assert_eq!(c.len(), 3 + round as usize);
        }
        let c = DiskCorpus::open(&dir).unwrap();
        assert_eq!(c.get(0).unwrap(), b"one");
        assert_eq!(c.get(1).unwrap(), b"two");
        for round in 0..3u32 {
            assert_eq!(
                c.get(2 + round).unwrap(),
                format!("round {round}").as_bytes()
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_append_on_empty_store() {
        let dir = tmpdir("append-empty");
        drop(CorpusWriter::create(&dir).unwrap().finish().unwrap());
        let mut w = CorpusWriter::open_append(&dir).unwrap();
        assert!(w.is_empty());
        w.append(b"first").unwrap();
        let c = w.finish().unwrap();
        assert_eq!(c.get(0).unwrap(), b"first");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_append_truncates_torn_tail() {
        let dir = tmpdir("append-torn");
        let mut w = CorpusWriter::create(&dir).unwrap();
        w.append(b"committed").unwrap();
        drop(w.finish().unwrap());
        // Simulate a writer that crashed after writing data bytes but
        // before committing the offsets: raw bytes past the last offset.
        {
            use std::io::Write;
            let mut f = OpenOptions::new()
                .append(true)
                .open(dir.join(DATA_FILE))
                .unwrap();
            f.write_all(b"torn garbage").unwrap();
        }
        let mut w = CorpusWriter::open_append(&dir).unwrap();
        assert_eq!(w.len(), 1);
        w.append(b"after crash").unwrap();
        let c = w.finish().unwrap();
        assert_eq!(c.get(0).unwrap(), b"committed");
        assert_eq!(c.get(1).unwrap(), b"after crash");
        assert_eq!(c.total_bytes(), 9 + 11);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_append_missing_store_is_io_error() {
        assert!(matches!(
            CorpusWriter::open_append("/nonexistent/path/xyz"),
            Err(Error::Io { .. })
        ));
    }

    #[test]
    fn missing_dir_is_io_error() {
        assert!(matches!(
            DiskCorpus::open("/nonexistent/path/xyz"),
            Err(Error::Io { .. })
        ));
    }
}
