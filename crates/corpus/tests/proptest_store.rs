//! Property tests for the on-disk corpus store: arbitrary binary documents
//! (including empty ones) must round-trip exactly, in order, via both
//! random access and sequential scan.

use free_corpus::{Corpus, CorpusWriter, DiskCorpus};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn disk_roundtrip(docs in prop::collection::vec(
        prop::collection::vec(any::<u8>(), 0..200), 0..30
    ), case_id in 0u64..u64::MAX) {
        let dir = std::env::temp_dir().join(
            format!("free-store-pt-{}-{case_id}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut w = CorpusWriter::create(&dir).unwrap();
        for d in &docs {
            w.append(d).unwrap();
        }
        let c = w.finish().unwrap();
        prop_assert_eq!(c.len(), docs.len());
        prop_assert_eq!(c.total_bytes(), docs.iter().map(|d| d.len() as u64).sum::<u64>());
        for (i, d) in docs.iter().enumerate() {
            prop_assert_eq!(&c.get(i as u32).unwrap(), d);
        }
        let mut scanned: Vec<Vec<u8>> = Vec::new();
        c.scan(&mut |_, bytes| { scanned.push(bytes.to_vec()); true }).unwrap();
        prop_assert_eq!(&scanned, &docs);

        // Cold reopen sees identical content.
        drop(c);
        let c = DiskCorpus::open(&dir).unwrap();
        for (i, d) in docs.iter().enumerate() {
            prop_assert_eq!(&c.get(i as u32).unwrap(), d);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
