//! `free fsck` — a deep static verifier for on-disk index state
//! (`FA400`–`FA499`).
//!
//! Layered checks, cheapest first:
//!
//! * **L0 structural** — magics, versions, offset bounds, and the CRC32
//!   checksums carried by the version-3 index format, version-2 corpus
//!   stores, and version-2 live-index metadata. Artifacts predating the
//!   checksummed revisions stay readable and are reported as an `FA400`
//!   advisory, not an error.
//! * **L1 intra-file semantic** — postings doc-id monotonicity, skip
//!   tables consistent with their blocks, sequence-map ascent, directory
//!   doc counts vs decoded payloads.
//! * **L2 cross-structure** — manifest ↔ files-on-disk agreement (no
//!   dangling or orphaned segments), WAL epoch staleness, corpus offset
//!   tables, key-directory shape.
//! * **L3 sampled semantic** (`--deep`) — re-mines sampled documents
//!   with the Aho-Corasick gram scanner and proves the index's
//!   no-false-negative guarantee: every sampled document containing an
//!   indexed gram appears in that gram's postings.
//!
//! Everything here reads artifacts *directly* — never through
//! [`free_live::LiveIndex::open`], which repairs state as a side effect
//! (orphan removal, WAL reset, tombstone rewrite) and would hide exactly
//! the damage fsck exists to report.

use crate::diagnostics::{codes, diagnostic_json, json_string, Diagnostic, Severity};
use free_corpus::{Corpus, DiskCorpus, DocId};
use free_engine::grams::GramMatcher;
use free_index::{IndexRead, IndexReader, VerifyIssueKind};
use free_live::{Manifest, SegmentMeta};
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::path::Path;

/// Options for [`fsck`].
#[derive(Clone, Copy, Debug)]
pub struct FsckOptions {
    /// Run the sampled deep check (L3): re-mine sampled documents and
    /// prove postings completeness.
    pub deep: bool,
    /// Documents to sample per segment in the deep check.
    pub sample: usize,
}

impl Default for FsckOptions {
    fn default() -> FsckOptions {
        FsckOptions {
            deep: false,
            sample: 64,
        }
    }
}

/// The result of one fsck run.
#[derive(Clone, Debug)]
pub struct FsckReport {
    /// The path that was checked, verbatim.
    pub target: String,
    /// What the target was detected as: `live`, `batch`, `index`,
    /// `corpus`, or `qlog`.
    pub kind: &'static str,
    /// Artifacts (files / stores) examined.
    pub artifacts_checked: usize,
    /// Documents re-mined by the deep check (0 without `--deep`).
    pub docs_sampled: usize,
    /// All findings, in layer order.
    pub diagnostics: Vec<Diagnostic>,
}

impl FsckReport {
    /// Whether any finding is an [`Severity::Error`].
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Findings with the given code.
    pub fn with_code(&self, code: &str) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.code == code).collect()
    }

    /// Renders the report for terminal consumption.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        let n = self.diagnostics.len();
        let _ = writeln!(
            out,
            "fsck {} ({}): {} artifact(s) checked, {} doc(s) sampled, {} finding{}",
            self.target,
            self.kind,
            self.artifacts_checked,
            self.docs_sampled,
            n,
            if n == 1 { "" } else { "s" }
        );
        for d in &self.diagnostics {
            let _ = writeln!(out, "{}[{}]: {}", d.severity, d.code, d.message);
            if let Some(s) = &d.suggestion {
                let _ = writeln!(out, "  help: {s}");
            }
        }
        if !self.has_errors() {
            let _ = writeln!(out, "ok: no integrity errors");
        }
        out
    }

    /// Renders the report as one JSON object (hand-rolled; the workspace
    /// carries no serialization dependency).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push('{');
        let _ = write!(out, "\"target\":{}", json_string(&self.target));
        let _ = write!(out, ",\"kind\":{}", json_string(self.kind));
        let _ = write!(out, ",\"artifacts_checked\":{}", self.artifacts_checked);
        let _ = write!(out, ",\"docs_sampled\":{}", self.docs_sampled);
        let _ = write!(out, ",\"errors\":{}", self.has_errors());
        out.push_str(",\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&diagnostic_json(d));
        }
        out.push_str("]}");
        out
    }
}

/// Verifies the on-disk state at `path`, auto-detecting what it is:
///
/// * a sharded live index directory (contains `sharded.manifest`; every
///   shard is recursively verified as a live index, then the cross-shard
///   routing invariant is checked),
/// * a live index directory (contains `live.manifest`),
/// * a batch index directory (contains `idx.free`),
/// * a corpus store directory (contains `corpus.idx`),
/// * a durable query-log directory (contains `qlog-*.jsonl` segments),
/// * a bare index file (`free-index` format).
///
/// Damage is reported as diagnostics, not errors; `Err` is reserved for
/// targets that cannot be identified at all.
pub fn fsck(path: &Path, opts: &FsckOptions) -> std::io::Result<FsckReport> {
    let target = path.display().to_string();
    if path.is_dir() {
        if path.join(free_live::SHARDED_MANIFEST_FILE).is_file() {
            return Ok(fsck_sharded(path, opts, target));
        }
        if path.join(free_live::manifest::MANIFEST_FILE).is_file() {
            return Ok(fsck_live(path, opts, target));
        }
        if path.join("idx.free").is_file() {
            return Ok(fsck_batch(path, opts, target));
        }
        if path.join("corpus.idx").is_file() {
            let mut r = FsckReport {
                target,
                kind: "corpus",
                artifacts_checked: 0,
                docs_sampled: 0,
                diagnostics: Vec::new(),
            };
            check_corpus(path, "corpus store", &mut r);
            return Ok(r);
        }
        if free_trace::qlog::is_log_dir(path) {
            return fsck_qlog(path, target);
        }
    } else if path.is_file() {
        let mut r = FsckReport {
            target,
            kind: "index",
            artifacts_checked: 0,
            docs_sampled: 0,
            diagnostics: Vec::new(),
        };
        check_index_file(path, "index", None, &mut r);
        return Ok(r);
    }
    Err(std::io::Error::new(
        std::io::ErrorKind::NotFound,
        format!(
            "{} is not a live index, batch index, corpus store, query log, or index file",
            path.display()
        ),
    ))
}

/// Verifies a durable query-log directory: every segment's CRC footer,
/// the may-only-the-last-be-unsealed invariant, and torn trailing
/// fragments. A torn tail is a *warning* — the shape a crash mid-append
/// legitimately leaves; readers (`free log`, `free replay`) skip the
/// fragment and trust every whole line before it. A failed CRC on a
/// sealed segment is an error: sealed bytes must never change.
fn fsck_qlog(path: &Path, target: String) -> std::io::Result<FsckReport> {
    use free_trace::qlog::SegmentStatus;
    let mut r = FsckReport {
        target,
        kind: "qlog",
        artifacts_checked: 0,
        docs_sampled: 0,
        diagnostics: Vec::new(),
    };
    let segments = free_trace::qlog::read_dir(path)?;
    let last_seq = segments.last().map(|s| s.seq);
    for seg in &segments {
        r.artifacts_checked += 1;
        match &seg.status {
            SegmentStatus::Sealed => {}
            SegmentStatus::Unsealed { torn_bytes } => {
                if Some(seg.seq) != last_seq {
                    r.diagnostics.push(diag(
                        codes::QLOG_UNSEALED,
                        Severity::Warning,
                        format!(
                            "query-log segment {} is unsealed but not the newest: \
                             the writer crashed before rotation sealed it \
                             ({} trusted record(s) remain readable)",
                            seg.path.display(),
                            seg.records.len()
                        ),
                    ));
                }
                if *torn_bytes > 0 {
                    r.diagnostics.push(diag(
                        codes::QLOG_TORN_TAIL,
                        Severity::Warning,
                        format!(
                            "query-log segment {} ends in a torn {torn_bytes}-byte \
                             fragment (crash mid-append); readers skip it and keep \
                             the {} whole record(s) before it",
                            seg.path.display(),
                            seg.records.len()
                        ),
                    ));
                }
            }
            SegmentStatus::Corrupt { detail } => {
                r.diagnostics.push(diag(
                    damage_code(detail),
                    Severity::Error,
                    format!(
                        "query-log segment {} is corrupt: {detail}",
                        seg.path.display()
                    ),
                ));
            }
        }
    }
    Ok(r)
}

fn diag(code: &'static str, severity: Severity, message: String) -> Diagnostic {
    Diagnostic::new(code, severity, None, message)
}

/// Maps an open/read error to FA401 (structural) or FA402 (checksum),
/// depending on what the format layer reported.
fn damage_code(message: &str) -> &'static str {
    if message.contains("checksum") {
        codes::CHECKSUM_MISMATCH
    } else {
        codes::STRUCTURAL_DAMAGE
    }
}

/// L0+L1 over one index file. `doc_bound` bounds valid doc ids when the
/// caller knows the corpus size. Returns the opened reader for further
/// (L3) checks when the file is readable.
fn check_index_file(
    path: &Path,
    what: &str,
    doc_bound: Option<DocId>,
    r: &mut FsckReport,
) -> Option<IndexReader> {
    r.artifacts_checked += 1;
    let idx = match IndexReader::open(path) {
        Ok(idx) => idx,
        Err(e) => {
            let msg = e.to_string();
            r.diagnostics.push(diag(
                damage_code(&msg),
                Severity::Error,
                format!("{what} {} unreadable: {msg}", path.display()),
            ));
            return None;
        }
    };
    if !idx.checksummed() {
        r.diagnostics.push(diag(
            codes::LEGACY_FORMAT,
            Severity::Info,
            format!(
                "{what} {} predates the checksummed format (v3); bit rot is undetectable",
                path.display()
            ),
        ));
    }
    match idx.verify(doc_bound) {
        Ok(issues) => {
            for issue in issues {
                let (code, severity) = match issue.kind {
                    VerifyIssueKind::Checksum => (codes::CHECKSUM_MISMATCH, Severity::Error),
                    VerifyIssueKind::Decode => (codes::STRUCTURAL_DAMAGE, Severity::Error),
                    VerifyIssueKind::Order | VerifyIssueKind::DocRange => {
                        (codes::POSTINGS_ORDER, Severity::Error)
                    }
                    VerifyIssueKind::SkipTable => (codes::SKIP_TABLE, Severity::Error),
                    VerifyIssueKind::DocCount => (codes::SEQ_MAP, Severity::Error),
                };
                r.diagnostics.push(diag(
                    code,
                    severity,
                    format!("{what} {}: {}", path.display(), issue.detail),
                ));
            }
        }
        Err(e) => {
            r.diagnostics.push(diag(
                codes::STRUCTURAL_DAMAGE,
                Severity::Error,
                format!("{what} {} verify aborted: {e}", path.display()),
            ));
        }
    }
    check_prefix_free(&idx, path, what, r);
    Some(idx)
}

/// L2 key-directory shape: the miner's key set is prefix-free (a gram
/// and its extension are never both useful). A compacted segment's union
/// key set legitimately violates this, so it is advisory only.
fn check_prefix_free(idx: &IndexReader, path: &Path, what: &str, r: &mut FsckReport) {
    let keys = idx.keys();
    let violations = keys
        .windows(2)
        .filter(|w| w[1].starts_with(&w[0][..]))
        .count();
    if violations > 0 {
        r.diagnostics.push(diag(
            codes::PREFIX_FREE,
            Severity::Info,
            format!(
                "{what} {}: key directory is not prefix-free ({violations} key(s) extend \
                 another key); expected for merged segments, unexpected for a fresh build",
                path.display()
            ),
        ));
    }
}

/// L2 selector ↔ key-directory cross-check (`FA425`): when a manifest
/// records the gram-selection strategy, every key in the dictionary must
/// be one that selector could have produced (a fixed-k index must hold
/// only k-byte keys). The index still answers correctly — the planner
/// consults the actual key set — but an error here means rebuilds and
/// compaction re-mining will not reproduce this dictionary, so the
/// recorded provenance is wrong.
fn check_selector(idx: &IndexReader, spec: &str, what: &str, r: &mut FsckReport) {
    let parsed = match free_engine::SelectorSpec::parse(spec) {
        Ok(p) => p,
        Err(e) => {
            r.diagnostics.push(diag(
                codes::SELECTOR_MISMATCH,
                Severity::Error,
                format!("{what}: manifest records unusable selector {spec:?}: {e}"),
            ));
            return;
        }
    };
    let selector = free_engine::selector_for(&parsed);
    let mut violations = 0usize;
    let mut examples: Vec<String> = Vec::new();
    for key in idx.keys() {
        if let Some(why) = selector.check_key(key) {
            violations += 1;
            if examples.len() < 3 {
                examples.push(format!("{:?} ({why})", printable(key)));
            }
        }
    }
    if violations > 0 {
        r.diagnostics.push(diag(
            codes::SELECTOR_MISMATCH,
            Severity::Error,
            format!(
                "{what}: {violations} key(s) could not have been produced by the \
                 recorded selector {spec}, e.g. {}",
                examples.join(", ")
            ),
        ));
    }
}

/// L0 over one corpus store. Returns the opened store for cross-checks.
fn check_corpus(dir: &Path, what: &str, r: &mut FsckReport) -> Option<DiskCorpus> {
    r.artifacts_checked += 1;
    let corpus = match DiskCorpus::open(dir) {
        Ok(c) => c,
        Err(e) => {
            let msg = e.to_string();
            let code = if msg.contains("monotone") || msg.contains("offset table") {
                codes::CORPUS_OFFSETS
            } else {
                damage_code(&msg)
            };
            r.diagnostics.push(diag(
                code,
                Severity::Error,
                format!("{what} {} unreadable: {msg}", dir.display()),
            ));
            return None;
        }
    };
    if !corpus.checksummed() {
        r.diagnostics.push(diag(
            codes::LEGACY_FORMAT,
            Severity::Info,
            format!(
                "{what} {} predates the checksummed format (v2); bit rot is undetectable",
                dir.display()
            ),
        ));
        return Some(corpus);
    }
    match corpus.verify_units() {
        Ok(bad) => {
            for (id, detail) in bad.iter().take(5) {
                r.diagnostics.push(diag(
                    codes::CHECKSUM_MISMATCH,
                    Severity::Error,
                    format!("{what} {}: unit {id}: {detail}", dir.display()),
                ));
            }
            if bad.len() > 5 {
                r.diagnostics.push(diag(
                    codes::CHECKSUM_MISMATCH,
                    Severity::Error,
                    format!(
                        "{what} {}: {} more unit(s) fail their checksums",
                        dir.display(),
                        bad.len() - 5
                    ),
                ));
            }
        }
        Err(e) => {
            r.diagnostics.push(diag(
                codes::STRUCTURAL_DAMAGE,
                Severity::Error,
                format!("{what} {} verify aborted: {e}", dir.display()),
            ));
        }
    }
    Some(corpus)
}

/// Deterministic evenly-spaced sample of `want` out of `n` local ids.
fn sample_ids(n: usize, want: usize) -> Vec<DocId> {
    if n == 0 || want == 0 {
        return Vec::new();
    }
    let want = want.min(n);
    let step = n as f64 / want as f64;
    let mut out: Vec<DocId> = (0..want).map(|i| (i as f64 * step) as DocId).collect();
    out.dedup();
    out
}

/// L3: re-mines `sample` documents with the gram scanner and proves the
/// postings invariant both ways. `get_doc` resolves a local id to bytes.
fn check_deep(
    idx: &IndexReader,
    what: &str,
    num_docs: usize,
    sample: usize,
    get_doc: &mut dyn FnMut(DocId) -> Result<Vec<u8>, String>,
    r: &mut FsckReport,
) {
    let keys = idx.keys().to_vec();
    if keys.is_empty() {
        return;
    }
    let sampled = sample_ids(num_docs, sample);
    if sampled.is_empty() {
        return;
    }
    // One automaton pass per sampled doc records which keys it contains.
    let mut matcher = GramMatcher::new(&keys);
    let mut present: Vec<BTreeSet<DocId>> = vec![BTreeSet::new(); keys.len()];
    for &id in &sampled {
        let bytes = match get_doc(id) {
            Ok(b) => b,
            Err(e) => {
                r.diagnostics.push(diag(
                    codes::STRUCTURAL_DAMAGE,
                    Severity::Error,
                    format!("{what}: cannot read sampled doc {id}: {e}"),
                ));
                continue;
            }
        };
        matcher.match_distinct(&bytes, u64::from(id), &mut |pi| {
            present[pi as usize].insert(id);
        });
        r.docs_sampled += 1;
    }
    let sampled_set: BTreeSet<DocId> = sampled.iter().copied().collect();
    // Then each key's postings, restricted to the sample, must agree.
    for (ki, key) in keys.iter().enumerate() {
        let postings = match idx.postings(key) {
            Ok(Some(p)) => p,
            Ok(None) => Vec::new(),
            Err(e) => {
                r.diagnostics.push(diag(
                    codes::STRUCTURAL_DAMAGE,
                    Severity::Error,
                    format!("{what}: postings for {:?} unreadable: {e}", printable(key)),
                ));
                continue;
            }
        };
        let in_postings: BTreeSet<DocId> = postings
            .into_iter()
            .filter(|d| sampled_set.contains(d))
            .collect();
        for &id in present[ki].difference(&in_postings) {
            r.diagnostics.push(diag(
                codes::POSTINGS_INCOMPLETE,
                Severity::Error,
                format!(
                    "{what}: doc {id} contains indexed gram {:?} but is missing from its \
                     postings — queries can silently miss it (no-false-negative \
                     guarantee broken)",
                    printable(key)
                ),
            ));
        }
        for &id in in_postings.difference(&present[ki]) {
            r.diagnostics.push(diag(
                codes::POSTINGS_EXTRA,
                Severity::Warning,
                format!(
                    "{what}: postings for gram {:?} claim doc {id}, which does not \
                     contain it — harmless for answers, wasted confirmation work",
                    printable(key)
                ),
            ));
        }
    }
}

fn printable(key: &[u8]) -> String {
    String::from_utf8_lossy(key).into_owned()
}

/// fsck over a sharded live index directory: the sharded manifest (L0),
/// every committed shard recursively verified as an ordinary live index
/// (all layers, with findings prefixed `shard N:`), orphaned `shard-K`
/// directories beyond the committed count (L2), and the cross-shard
/// round-robin routing invariant (L2): each shard's local sequence count
/// must match what round-robin assignment of the reconstructed global
/// count would give it — anything else means a global sequence is
/// missing from, or claimed by, more than one shard (`FA504`, a
/// warning when reopening the index can repair it by truncating a
/// still-buffered tail, an error otherwise).
fn fsck_sharded(dir: &Path, opts: &FsckOptions, target: String) -> FsckReport {
    let mut r = FsckReport {
        target,
        kind: "sharded",
        artifacts_checked: 0,
        docs_sampled: 0,
        diagnostics: Vec::new(),
    };
    r.artifacts_checked += 1;
    let manifest = match free_live::ShardedManifest::load(dir) {
        Ok(m) => m,
        Err(e) => {
            let msg = e.to_string();
            r.diagnostics.push(diag(
                damage_code(&msg),
                Severity::Error,
                format!("sharded manifest in {} unreadable: {msg}", dir.display()),
            ));
            return r;
        }
    };
    let mut locals: Vec<Option<(DocId, DocId)>> = Vec::with_capacity(manifest.shards);
    for s in 0..manifest.shards {
        let sdir = free_live::shard_dir(dir, s);
        if !sdir.join(free_live::manifest::MANIFEST_FILE).is_file() {
            r.diagnostics.push(diag(
                codes::SHARD_MISSING,
                Severity::Error,
                format!(
                    "shard {s} is committed by the sharded manifest but {} is missing \
                     or not a live index directory",
                    sdir.display()
                ),
            ));
            locals.push(None);
            continue;
        }
        match fsck(&sdir, opts) {
            Ok(sub) => {
                r.artifacts_checked += sub.artifacts_checked;
                r.docs_sampled += sub.docs_sampled;
                for mut d in sub.diagnostics {
                    d.message = format!("shard {s}: {}", d.message);
                    r.diagnostics.push(d);
                }
            }
            Err(e) => {
                r.diagnostics.push(diag(
                    codes::STRUCTURAL_DAMAGE,
                    Severity::Error,
                    format!("shard {s}: cannot be verified: {e}"),
                ));
            }
        }
        // L2: the shard must mine with the strategy the sharded manifest
        // commits — a divergence means future flushes in that shard use a
        // different gram dictionary than its siblings (FA425).
        if let Ok(sm) = Manifest::load(&sdir) {
            if sm.selector != manifest.selector {
                r.diagnostics.push(diag(
                    codes::SELECTOR_MISMATCH,
                    Severity::Error,
                    format!(
                        "shard {s} records selector {} but the sharded manifest \
                         commits {}; flushes in that shard mine with a different \
                         strategy than its siblings",
                        sm.selector.as_deref().unwrap_or("<default apriori>"),
                        manifest.selector.as_deref().unwrap_or("<default apriori>"),
                    ),
                ));
            }
        }
        locals.push(shard_next_seq(&sdir));
    }
    // L2: shard-K directories on disk the manifest does not commit.
    let mut orphans: Vec<String> = Vec::new();
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            if let Some(k) = name
                .strip_prefix("shard-")
                .and_then(|k| k.parse::<usize>().ok())
            {
                if k >= manifest.shards && entry.path().is_dir() {
                    orphans.push(name);
                }
            }
        }
    }
    if !orphans.is_empty() {
        orphans.sort();
        r.diagnostics.push(diag(
            codes::ORPHANED_SHARD,
            Severity::Warning,
            format!(
                "{} shard directorie(s) on disk beyond the committed count of {}: {}; \
                 no query will ever consult them",
                orphans.len(),
                manifest.shards,
                orphans.join(", ")
            ),
        ));
    }
    // L2: the cross-shard routing invariant, when every shard's local
    // sequence count could be determined.
    let known: Vec<(DocId, DocId)> = locals.iter().copied().flatten().collect();
    if known.len() == manifest.shards {
        let counts: Vec<DocId> = known.iter().map(|&(next, _)| next).collect();
        if let Err(e) = free_live::derive_next_seq(&counts) {
            // An interrupted parallel batch commit strands its excess in
            // shard WALs only (auto-flush is deferred until the whole
            // batch is durable), so a divergence whose excess is all
            // buffered is repaired by reopening the index; excess sealed
            // into segments means damage with no automatic repair.
            let g = free_live::recoverable_next_seq(&counts);
            let recoverable = known.iter().enumerate().all(|(s, &(next, wal_base))| {
                let target = free_live::shard_local_count(g, s, manifest.shards);
                next <= target || target >= wal_base
            });
            if recoverable {
                r.diagnostics.push(diag(
                    codes::SHARD_ROUTING,
                    Severity::Warning,
                    format!(
                        "{e}; the excess is still buffered in shard WALs — the shape \
                         an interrupted parallel batch commit leaves — and reopening \
                         the index truncates the unacknowledged tail back to a \
                         consistent global count of {g}"
                    ),
                ));
            } else {
                r.diagnostics.push(diag(
                    codes::SHARD_ROUTING,
                    Severity::Error,
                    format!(
                        "{e}; the excess is sealed into segments, so a document was \
                         lost or double-assigned across shards with no automatic repair"
                    ),
                ));
            }
        }
    }
    r
}

/// A shard's local next-sequence count and flush frontier (`wal_base`),
/// read directly from its committed manifest and WAL store (never
/// through `LiveIndex::open`, which repairs). `None` when either
/// artifact is unreadable — those cases already carry their own
/// findings from the per-shard recursion.
fn shard_next_seq(sdir: &Path) -> Option<(DocId, DocId)> {
    let manifest = Manifest::load(sdir).ok()?;
    let wal = DiskCorpus::open(sdir.join(free_live::WAL_DIR)).ok()?;
    Some((manifest.wal_base + wal.len() as DocId, manifest.wal_base))
}

/// fsck over a live index directory: manifest, every segment (seqs +
/// corpus + index, cross-checked), the WAL, the epoch stamp, the
/// tombstone log, and orphaned files.
fn fsck_live(dir: &Path, opts: &FsckOptions, target: String) -> FsckReport {
    let mut r = FsckReport {
        target,
        kind: "live",
        artifacts_checked: 0,
        docs_sampled: 0,
        diagnostics: Vec::new(),
    };
    r.artifacts_checked += 1;
    let manifest = match Manifest::load_with_format(dir) {
        Ok((m, checksummed)) => {
            if !checksummed {
                r.diagnostics.push(diag(
                    codes::LEGACY_FORMAT,
                    Severity::Info,
                    format!(
                        "manifest in {} predates the checksummed format (FREELIVE 2); \
                         torn rewrites are undetectable",
                        dir.display()
                    ),
                ));
            }
            m
        }
        Err(e) => {
            let msg = e.to_string();
            r.diagnostics.push(diag(
                damage_code(&msg),
                Severity::Error,
                format!("manifest in {} unreadable: {msg}", dir.display()),
            ));
            return r;
        }
    };
    // L2: the recorded gram-selection strategy must be usable — reopening
    // the index parses it, and every flush/compaction re-mines with it.
    let mut selector: Option<&str> = None;
    if let Some(spec) = &manifest.selector {
        match free_engine::SelectorSpec::parse(spec) {
            Ok(_) => selector = Some(spec),
            Err(e) => {
                r.diagnostics.push(diag(
                    codes::SELECTOR_MISMATCH,
                    Severity::Error,
                    format!(
                        "manifest in {} records unusable selector {spec:?}: {e}; the \
                         index will refuse to open",
                        dir.display()
                    ),
                ));
            }
        }
    }
    let seg_root = dir.join(free_live::SEGMENTS_DIR);
    for meta in &manifest.segments {
        check_segment(&seg_root, meta, selector, opts, &mut r);
    }
    // L2: segment files on disk the manifest does not name.
    let orphans = free_live::orphan_segment_ids(&seg_root, &manifest);
    if !orphans.is_empty() {
        r.diagnostics.push(diag(
            codes::ORPHANED_FILES,
            Severity::Warning,
            format!(
                "{} orphaned segment id(s) on disk not named by the manifest: {:?}; \
                 leaked by a crashed compaction, removed on next open",
                orphans.len(),
                orphans
            ),
        ));
    }
    // L2: the WAL and its epoch stamp.
    let wal_dir = dir.join(free_live::WAL_DIR);
    let wal_len = if wal_dir.join("corpus.idx").is_file() {
        check_corpus(&wal_dir, "WAL corpus", &mut r).map(|c| c.len())
    } else {
        r.diagnostics.push(diag(
            codes::MISSING_SEGMENT_FILES,
            Severity::Error,
            format!("WAL corpus store missing under {}", wal_dir.display()),
        ));
        None
    };
    r.artifacts_checked += 1;
    let epoch_path = dir.join(free_live::WAL_EPOCH_FILE);
    match std::fs::read_to_string(&epoch_path) {
        Ok(s) => match s.trim().parse::<u64>() {
            Ok(epoch) if epoch != manifest.wal_epoch => {
                r.diagnostics.push(diag(
                    codes::STALE_WAL_EPOCH,
                    Severity::Error,
                    format!(
                        "WAL epoch stamp is {epoch} but the manifest commits epoch {}; the \
                         WAL's {} buffered doc(s) will be discarded on the next open",
                        manifest.wal_epoch,
                        wal_len.unwrap_or(0)
                    ),
                ));
            }
            Ok(_) => {}
            Err(_) => {
                r.diagnostics.push(diag(
                    codes::STRUCTURAL_DAMAGE,
                    Severity::Error,
                    format!("WAL epoch stamp {} is not a number", epoch_path.display()),
                ));
            }
        },
        Err(e) => {
            r.diagnostics.push(diag(
                codes::STALE_WAL_EPOCH,
                Severity::Error,
                format!(
                    "WAL epoch stamp {} unreadable ({e}); the WAL will be discarded on \
                     the next open",
                    epoch_path.display()
                ),
            ));
        }
    }
    // L1/L2: the tombstone log.
    r.artifacts_checked += 1;
    let tomb_path = dir.join(free_live::TOMBSTONES_FILE);
    match free_live::read_tombstones(&tomb_path) {
        Ok((seqs, checksummed)) => {
            if !checksummed {
                r.diagnostics.push(diag(
                    codes::LEGACY_FORMAT,
                    Severity::Info,
                    format!(
                        "tombstone log {} has unchecksummed entries (legacy format)",
                        tomb_path.display()
                    ),
                ));
            }
            let wal_end = wal_len.map(|n| manifest.wal_base + n as DocId);
            for seq in seqs {
                let in_segment = manifest
                    .segments
                    .iter()
                    .any(|s| s.first_seq <= seq && seq <= s.last_seq);
                let in_wal = seq >= manifest.wal_base && wal_end.is_some_and(|e| seq < e);
                if !in_segment && !in_wal {
                    r.diagnostics.push(diag(
                        codes::BAD_TOMBSTONE,
                        Severity::Warning,
                        format!(
                            "tombstone for seq {seq} references no stored document \
                             (stale after compaction; rewritten on next open)"
                        ),
                    ));
                }
            }
        }
        Err(free_live::Error::NotFound(_)) => {
            r.diagnostics.push(diag(
                codes::MISSING_SEGMENT_FILES,
                Severity::Error,
                format!("tombstone log {} is missing", tomb_path.display()),
            ));
        }
        Err(e) => {
            let msg = e.to_string();
            r.diagnostics.push(diag(
                damage_code(&msg),
                Severity::Error,
                format!("tombstone log {} unreadable: {msg}", tomb_path.display()),
            ));
        }
    }
    r
}

/// All layers over one sealed segment. `selector` is the live manifest's
/// recorded (and already parse-checked) gram-selection strategy, when any.
fn check_segment(
    seg_root: &Path,
    meta: &SegmentMeta,
    selector: Option<&str>,
    opts: &FsckOptions,
    r: &mut FsckReport,
) {
    let what = format!("segment {}", meta.id);
    let idx_path = free_live::segment::index_path(seg_root, meta.id);
    let seqs_path = free_live::segment::seqs_path(seg_root, meta.id);
    let corpus_dir = free_live::segment::corpus_dir(seg_root, meta.id);
    let mut missing = Vec::new();
    for (p, is_dir) in [(&idx_path, false), (&seqs_path, false), (&corpus_dir, true)] {
        if (is_dir && !p.is_dir()) || (!is_dir && !p.is_file()) {
            missing.push(p.display().to_string());
        }
    }
    if !missing.is_empty() {
        r.diagnostics.push(diag(
            codes::MISSING_SEGMENT_FILES,
            Severity::Error,
            format!(
                "{what} is committed by the manifest but missing file(s): {}",
                missing.join(", ")
            ),
        ));
        return;
    }
    // L0/L1: the sequence map.
    r.artifacts_checked += 1;
    match free_live::segment::read_seqs_with_format(&seqs_path) {
        Ok((seqs, checksummed)) => {
            if !checksummed {
                r.diagnostics.push(diag(
                    codes::LEGACY_FORMAT,
                    Severity::Info,
                    format!(
                        "{what} sequence map {} predates the checksummed format (FREESEQ2)",
                        seqs_path.display()
                    ),
                ));
            }
            if seqs.len() != meta.num_docs as usize
                || seqs.first() != Some(&meta.first_seq)
                || seqs.last() != Some(&meta.last_seq)
            {
                r.diagnostics.push(diag(
                    codes::SEQ_MAP,
                    Severity::Error,
                    format!(
                        "{what} sequence map disagrees with the manifest: {} seq(s) \
                         [{:?}..{:?}] vs committed {} docs [{}..{}]",
                        seqs.len(),
                        seqs.first(),
                        seqs.last(),
                        meta.num_docs,
                        meta.first_seq,
                        meta.last_seq
                    ),
                ));
            }
        }
        Err(e) => {
            let msg = e.to_string();
            r.diagnostics.push(diag(
                damage_code(&msg),
                Severity::Error,
                format!("{what} sequence map unreadable: {msg}"),
            ));
        }
    }
    // L0/L2: the corpus store, cross-checked against the manifest.
    let corpus = check_corpus(&corpus_dir, &what, r);
    if let Some(c) = &corpus {
        if c.len() != meta.num_docs as usize {
            r.diagnostics.push(diag(
                codes::SEQ_MAP,
                Severity::Error,
                format!(
                    "{what} corpus stores {} doc(s) but the manifest commits {}",
                    c.len(),
                    meta.num_docs
                ),
            ));
        }
    }
    // L0/L1: the index, with doc ids bounded by the committed count.
    let idx = check_index_file(&idx_path, &what, Some(meta.num_docs), r);
    // L2: keys must be producible by the recorded selector (FA425).
    if let (Some(idx), Some(spec)) = (&idx, selector) {
        check_selector(idx, spec, &what, r);
    }
    // L3: sampled re-mining.
    if opts.deep {
        if let (Some(idx), Some(corpus)) = (idx, corpus) {
            check_deep(
                &idx,
                &what,
                corpus.len(),
                opts.sample,
                &mut |id| corpus.get(id).map_err(|e| e.to_string()),
                r,
            );
        }
    }
}

/// fsck over a batch (`freegrep index`) directory: the manifest's file
/// list, the optional index checksum line, and the index itself.
fn fsck_batch(dir: &Path, opts: &FsckOptions, target: String) -> FsckReport {
    let mut r = FsckReport {
        target,
        kind: "batch",
        artifacts_checked: 0,
        docs_sampled: 0,
        diagnostics: Vec::new(),
    };
    let manifest_path = dir.join("manifest.txt");
    let idx_path = dir.join("idx.free");
    let mut files: Vec<std::path::PathBuf> = Vec::new();
    let mut checksum: Option<String> = None;
    let mut selector: Option<String> = None;
    r.artifacts_checked += 1;
    match std::fs::read_to_string(&manifest_path) {
        Ok(text) => {
            for line in text.lines() {
                match line.split_once('=') {
                    Some(("file", v)) => files.push(v.into()),
                    Some(("checksum", v)) => checksum = Some(v.trim().to_string()),
                    Some(("selector", v)) => selector = Some(v.trim().to_string()),
                    Some(_) => {}
                    None => {
                        r.diagnostics.push(diag(
                            codes::STRUCTURAL_DAMAGE,
                            Severity::Error,
                            format!(
                                "manifest {} has a non key=value line: {line:?}",
                                manifest_path.display()
                            ),
                        ));
                    }
                }
            }
        }
        Err(e) => {
            r.diagnostics.push(diag(
                codes::STRUCTURAL_DAMAGE,
                Severity::Error,
                format!("manifest {} unreadable: {e}", manifest_path.display()),
            ));
        }
    }
    // L0: whole-file checksum of the index, when the manifest records one.
    match &checksum {
        Some(hex) => match (u32::from_str_radix(hex, 16), std::fs::read(&idx_path)) {
            (Ok(expected), Ok(bytes)) => {
                let actual = free_checksum::crc32(&bytes);
                if actual != expected {
                    r.diagnostics.push(diag(
                        codes::CHECKSUM_MISMATCH,
                        Severity::Error,
                        format!(
                            "index file {} fails the manifest checksum: recorded \
                             {expected:08x}, computed {actual:08x}",
                            idx_path.display()
                        ),
                    ));
                }
            }
            (Err(_), _) => {
                r.diagnostics.push(diag(
                    codes::STRUCTURAL_DAMAGE,
                    Severity::Error,
                    format!("manifest checksum {hex:?} is not hex"),
                ));
            }
            (_, Err(e)) => {
                r.diagnostics.push(diag(
                    codes::STRUCTURAL_DAMAGE,
                    Severity::Error,
                    format!("index file {} unreadable: {e}", idx_path.display()),
                ));
            }
        },
        None => {
            r.diagnostics.push(diag(
                codes::LEGACY_FORMAT,
                Severity::Info,
                format!(
                    "manifest {} records no index checksum (pre-checksum build)",
                    manifest_path.display()
                ),
            ));
        }
    }
    // L2: the pinned file list must still exist on disk.
    let mut missing = 0usize;
    for f in &files {
        if !f.is_file() {
            missing += 1;
            if missing <= 5 {
                r.diagnostics.push(diag(
                    codes::MISSING_SEGMENT_FILES,
                    Severity::Error,
                    format!("indexed file {} no longer exists", f.display()),
                ));
            }
        }
    }
    if missing > 5 {
        r.diagnostics.push(diag(
            codes::MISSING_SEGMENT_FILES,
            Severity::Error,
            format!("{} more indexed file(s) no longer exist", missing - 5),
        ));
    }
    let doc_bound = if files.is_empty() {
        None
    } else {
        Some(files.len() as DocId)
    };
    let idx = check_index_file(&idx_path, "index", doc_bound, &mut r);
    if let (Some(idx), Some(spec)) = (&idx, &selector) {
        check_selector(idx, spec, "index", &mut r);
    }
    if opts.deep {
        if let Some(idx) = idx {
            let files = files.clone();
            check_deep(
                &idx,
                "index",
                files.len(),
                opts.sample,
                &mut |id| {
                    std::fs::read(&files[id as usize])
                        .map_err(|e| format!("{}: {e}", files[id as usize].display()))
                },
                &mut r,
            );
        }
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use free_corpus::CorpusWriter;
    use free_index::{IndexWriter, Postings};
    use std::path::PathBuf;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("free-fsck-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn clean_index_file_has_no_findings() {
        let dir = tmpdir("clean-idx");
        let path = dir.join("x.idx");
        let mut w = IndexWriter::create(&path).unwrap();
        w.add(b"abc", &Postings::from_sorted(&[0, 2])).unwrap();
        drop(w.finish().unwrap());
        let r = fsck(&path, &FsckOptions::default()).unwrap();
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
        assert!(!r.has_errors());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_index_file_is_flagged() {
        let dir = tmpdir("bad-idx");
        let path = dir.join("x.idx");
        let ids: Vec<DocId> = (0..500).collect();
        let mut w = IndexWriter::create(&path).unwrap();
        w.add(b"abc", &Postings::from_sorted(&ids)).unwrap();
        drop(w.finish().unwrap());
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() - 40;
        bytes[mid] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        let r = fsck(&path, &FsckOptions::default()).unwrap();
        assert!(r.has_errors(), "{}", r.render_human());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn clean_corpus_store_has_no_findings() {
        let dir = tmpdir("clean-corpus");
        let store = dir.join("store");
        let mut w = CorpusWriter::create(&store).unwrap();
        w.append(b"hello world").unwrap();
        w.append(b"second doc").unwrap();
        w.finish().unwrap();
        let r = fsck(&store, &FsckOptions::default()).unwrap();
        assert_eq!(r.kind, "corpus");
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_corpus_unit_is_flagged() {
        let dir = tmpdir("bad-corpus");
        let store = dir.join("store");
        let mut w = CorpusWriter::create(&store).unwrap();
        w.append(b"some document content here").unwrap();
        w.finish().unwrap();
        let data = store.join("corpus.dat");
        let mut bytes = std::fs::read(&data).unwrap();
        bytes[3] ^= 0x08;
        std::fs::write(&data, &bytes).unwrap();
        let r = fsck(&store, &FsckOptions::default()).unwrap();
        assert!(r.has_errors());
        assert!(!r.with_code(codes::CHECKSUM_MISMATCH).is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unknown_target_is_an_error() {
        let dir = tmpdir("unknown");
        assert!(fsck(&dir, &FsckOptions::default()).is_err());
        assert!(fsck(&dir.join("nope"), &FsckOptions::default()).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sampling_is_deterministic_and_bounded() {
        assert_eq!(sample_ids(0, 8), Vec::<DocId>::new());
        assert_eq!(sample_ids(10, 0), Vec::<DocId>::new());
        assert_eq!(sample_ids(3, 8), vec![0, 1, 2]);
        let s = sample_ids(1000, 10);
        assert_eq!(s.len(), 10);
        assert_eq!(s, sample_ids(1000, 10));
        assert!(s.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn sharded_index_recurses_and_checks_routing() {
        let dir = tmpdir("sharded");
        let root = dir.join("idx");
        let config = free_live::LiveConfig::default();
        let mut idx = free_live::ShardedLiveIndex::create(&root, config.clone(), 3).unwrap();
        let docs: Vec<Vec<u8>> = (0..9u8).map(|i| vec![b'a' + (i % 4); 12]).collect();
        idx.add_batch(&docs).unwrap();
        idx.flush().unwrap();
        drop(idx);
        let r = fsck(&root, &FsckOptions::default()).unwrap();
        assert_eq!(r.kind, "sharded");
        assert!(!r.has_errors(), "{}", r.render_human());
        // One sharded manifest + three shards' worth of artifacts.
        assert!(r.artifacts_checked > 3, "{}", r.artifacts_checked);

        // An extra shard directory beyond the committed count is flagged.
        std::fs::create_dir_all(root.join("shard-7")).unwrap();
        let r = fsck(&root, &FsckOptions::default()).unwrap();
        assert_eq!(r.with_code(codes::ORPHANED_SHARD).len(), 1);
        std::fs::remove_dir_all(root.join("shard-7")).unwrap();

        // Losing a committed shard directory is an error.
        let moved = dir.join("stash");
        std::fs::rename(root.join("shard-1"), &moved).unwrap();
        let r = fsck(&root, &FsckOptions::default()).unwrap();
        assert!(r.has_errors());
        assert_eq!(r.with_code(codes::SHARD_MISSING).len(), 1);
        std::fs::rename(&moved, root.join("shard-1")).unwrap();

        // A shard holding the wrong share of the sequence space breaks
        // the routing invariant: grow shard 2's WAL behind the router's
        // back. Buffered excess is the interrupted-batch-commit shape,
        // which reopening repairs, so it is a warning rather than an
        // error.
        {
            let mut lone =
                free_live::LiveIndex::open(root.join("shard-2"), config.clone()).unwrap();
            lone.add(b"interloper document").unwrap();
        }
        let r = fsck(&root, &FsckOptions::default()).unwrap();
        let routing = r.with_code(codes::SHARD_ROUTING);
        assert_eq!(routing.len(), 1, "{}", r.render_human());
        assert_eq!(
            routing[0].severity,
            Severity::Warning,
            "{}",
            r.render_human()
        );
        assert!(!r.has_errors(), "{}", r.render_human());

        // Sealing the excess into a segment removes the repair path:
        // now a document really was lost or double-assigned.
        {
            let mut lone =
                free_live::LiveIndex::open(root.join("shard-2"), config.clone()).unwrap();
            lone.flush().unwrap();
        }
        let r = fsck(&root, &FsckOptions::default()).unwrap();
        let routing = r.with_code(codes::SHARD_ROUTING);
        assert_eq!(routing.len(), 1, "{}", r.render_human());
        assert_eq!(routing[0].severity, Severity::Error, "{}", r.render_human());
        assert!(r.has_errors(), "{}", r.render_human());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_shard_surfaces_with_prefix() {
        let dir = tmpdir("sharded-corrupt");
        let root = dir.join("idx");
        let mut idx =
            free_live::ShardedLiveIndex::create(&root, free_live::LiveConfig::default(), 2)
                .unwrap();
        idx.add_batch(&[b"alpha beta gamma".as_slice(), b"delta epsilon zeta"])
            .unwrap();
        idx.flush().unwrap();
        drop(idx);
        // Flip a byte in shard 0's segment corpus payload.
        let data = root.join("shard-0/segments/seg-0.corpus/corpus.dat");
        let mut bytes = std::fs::read(&data).unwrap();
        bytes[3] ^= 0x08;
        std::fs::write(&data, &bytes).unwrap();
        let r = fsck(&root, &FsckOptions::default()).unwrap();
        assert!(r.has_errors(), "{}", r.render_human());
        let hits = r.with_code(codes::CHECKSUM_MISMATCH);
        assert!(!hits.is_empty(), "{}", r.render_human());
        assert!(
            hits.iter().all(|d| d.message.starts_with("shard 0:")),
            "{}",
            r.render_human()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn selector_mismatch_is_flagged() {
        let dir = tmpdir("selector");
        // A batch manifest recording a trigram selector over an index
        // whose dictionary holds a 2-byte key: the provenance is wrong.
        let mut w = IndexWriter::create(dir.join("idx.free")).unwrap();
        w.add(b"ab", &Postings::from_sorted(&[0])).unwrap();
        w.add(b"abc", &Postings::from_sorted(&[0])).unwrap();
        drop(w.finish().unwrap());
        std::fs::write(
            dir.join("manifest.txt"),
            "version=1\nselector=trigram:k=3\n",
        )
        .unwrap();
        let r = fsck(&dir, &FsckOptions::default()).unwrap();
        assert_eq!(r.kind, "batch");
        let hits = r.with_code(codes::SELECTOR_MISMATCH);
        assert_eq!(hits.len(), 1, "{}", r.render_human());
        assert_eq!(hits[0].severity, Severity::Error);
        assert!(hits[0].message.contains("\"ab\""), "{}", hits[0].message);

        // An all-3-byte dictionary is consistent with the selector.
        let mut w = IndexWriter::create(dir.join("idx.free")).unwrap();
        w.add(b"abc", &Postings::from_sorted(&[0])).unwrap();
        drop(w.finish().unwrap());
        let r = fsck(&dir, &FsckOptions::default()).unwrap();
        assert_eq!(
            r.with_code(codes::SELECTOR_MISMATCH).len(),
            0,
            "{}",
            r.render_human()
        );

        // A recorded selector that no longer parses is itself an error.
        std::fs::write(
            dir.join("manifest.txt"),
            "version=1\nselector=trigram:k=0\n",
        )
        .unwrap();
        let r = fsck(&dir, &FsckOptions::default()).unwrap();
        assert_eq!(
            r.with_code(codes::SELECTOR_MISMATCH).len(),
            1,
            "{}",
            r.render_human()
        );
        assert!(r.has_errors());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shard_selector_divergence_is_flagged() {
        let dir = tmpdir("selector-shard");
        let root = dir.join("idx");
        let idx = free_live::ShardedLiveIndex::create(&root, free_live::LiveConfig::default(), 2)
            .unwrap();
        drop(idx);
        let r = fsck(&root, &FsckOptions::default()).unwrap();
        assert_eq!(
            r.with_code(codes::SELECTOR_MISMATCH).len(),
            0,
            "{}",
            r.render_human()
        );
        // Rewrite shard 0's manifest to claim a different strategy than
        // the sharded manifest commits.
        let sdir = free_live::shard_dir(&root, 0);
        let mut m = Manifest::load(&sdir).unwrap();
        m.selector = Some("trigram:k=3".into());
        m.store(&sdir).unwrap();
        let r = fsck(&root, &FsckOptions::default()).unwrap();
        let hits = r.with_code(codes::SELECTOR_MISMATCH);
        assert_eq!(hits.len(), 1, "{}", r.render_human());
        assert!(r.has_errors());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn report_json_shape() {
        let r = FsckReport {
            target: "x".into(),
            kind: "index",
            artifacts_checked: 1,
            docs_sampled: 0,
            diagnostics: vec![diag(
                codes::CHECKSUM_MISMATCH,
                Severity::Error,
                "boom".into(),
            )],
        };
        let json = r.to_json();
        assert!(json.contains("\"code\":\"FA402\""), "{json}");
        assert!(json.contains("\"errors\":true"), "{json}");
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
    }
}
