//! **free-analyze** — static analysis of regex queries against the FREE
//! multigram index cost model.
//!
//! Cho & Rajagopalan's engine degrades gracefully — a query whose plan
//! collapses to NULL still *runs*, it just scans the whole corpus
//! (§5.3's `zip`, `phone`, and `html` queries). Graceful degradation is
//! also silent degradation: nothing tells the user their query threw the
//! index away, or why. This crate is the missing diagnostic layer. Five
//! engines, the first three purely static (no corpus access required):
//!
//! 1. **Query linter** ([`lint`]) — walks the span-carrying parse tree
//!    and predicts index pathologies before planning: NULL-collapsing
//!    constructs (Table 2), edge `.*`, over-wide classes, unindexable
//!    alternation branches, counted-repetition blowup, nested
//!    quantifiers.
//! 2. **Plan soundness verifier** ([`soundness`]) — proves, per required
//!    gram, the Algorithm 4.1 invariant that the gram is a factor of
//!    every string in the query's language (via the derivative × KMP
//!    product construction in [`free_regex::factor`]).
//! 3. **Cost classifier** ([`cost`]) — labels the plan INDEXED, WEAK, or
//!    SCAN, from plan shape alone or against a concrete index.
//! 4. **On-disk verifier** ([`mod@fsck`]) — checks stored index state
//!    (checksums, postings invariants, manifest ↔ disk agreement, and a
//!    sampled re-mining proof) without mutating anything; this one reads
//!    disk, never the query.
//! 5. **Workload miner** ([`workload`]) — reads the durable query log
//!    (`free search`/`free serve --query-log`) back and reports
//!    workload-level pathologies: hot SCAN patterns, aggregate
//!    selectivity drift, slow-query concentration (`FA6xx`).
//!
//! Findings carry stable `FAxxx` codes (see [`diagnostics::codes`]) and
//! render both human-readable and as JSON. The `freegrep`/`free` CLI
//! exposes all of this as `free analyze <pattern>`.

#![forbid(unsafe_code)]

pub mod cost;
pub mod diagnostics;
pub mod fsck;
pub mod lint;
pub mod live;
pub mod soundness;
pub mod workload;

pub use diagnostics::{codes, Diagnostic, Report, Severity};
pub use fsck::{fsck, FsckOptions, FsckReport};
pub use lint::predicts_null;
pub use live::{
    analyze_live, analyze_shards, LiveAnalysisConfig, LiveHealth, ShardAnalysisConfig, ShardHealth,
};
pub use soundness::SoundnessSummary;
pub use workload::{analyze_workload, QueryRecord, WorkloadOptions, WorkloadReport};

use free_engine::plan::logical::LogicalPlan;
use free_index::IndexRead;
use free_regex::factor::DEFAULT_STATE_BUDGET;
use free_regex::{parse_spanned, Span};

/// Tunables for the analyzer. Defaults track
/// [`EngineConfig::default`](free_engine::EngineConfig::default) so the
/// linter predicts what the engine will actually do.
#[derive(Clone, Debug)]
pub struct AnalysisConfig {
    /// Classes with more members than this collapse to NULL during
    /// planning (mirrors `EngineConfig::class_expand_limit`).
    pub class_expand_limit: usize,
    /// Derivative-state budget per gram for the soundness verifier.
    pub soundness_state_budget: usize,
    /// `FA005` fires when a counted repetition expands an exact literal
    /// beyond this many bytes.
    pub repeat_literal_limit: usize,
    /// `FA005` fires when a repetition's upper bound exceeds this.
    pub repeat_count_limit: u32,
    /// Whether to run the (comparatively expensive) soundness verifier.
    pub check_soundness: bool,
}

impl Default for AnalysisConfig {
    fn default() -> AnalysisConfig {
        AnalysisConfig {
            class_expand_limit: free_engine::EngineConfig::default().class_expand_limit,
            soundness_state_budget: DEFAULT_STATE_BUDGET,
            repeat_literal_limit: 64,
            repeat_count_limit: 256,
            check_soundness: true,
        }
    }
}

/// Analyzes `pattern` without an index: parse, lint, plan, verify
/// soundness, classify. Parse failures become an `FA000` diagnostic in
/// the report rather than an error — the analyzer always has something
/// to say.
pub fn analyze(pattern: &str, cfg: &AnalysisConfig) -> Report {
    let tree = match parse_spanned(pattern) {
        Ok(tree) => tree,
        Err(e) => {
            let at = e.offset().min(pattern.len());
            let end = (at + 1).min(pattern.len().max(at));
            return Report {
                pattern: pattern.to_string(),
                plan: None,
                class: None,
                diagnostics: vec![diagnostics::Diagnostic::new(
                    codes::PARSE_ERROR,
                    Severity::Error,
                    Some(Span::new(at, end.max(at))),
                    format!("pattern does not parse: {}", e.kind()),
                )],
            };
        }
    };
    let mut diags = lint::lint(&tree, cfg);
    let ast = tree.to_ast();
    let plan = LogicalPlan::from_ast(&ast, cfg.class_expand_limit);
    if cfg.check_soundness {
        diags.extend(soundness::verify_plan(&ast, &plan, cfg.soundness_state_budget).diagnostics);
    }
    let class = cost::classify_logical(&plan);
    diags.push(cost::class_diagnostic(class));
    Report {
        pattern: pattern.to_string(),
        plan: Some(format!("{plan:?}")),
        class: Some(class),
        diagnostics: diags,
    }
}

/// Like [`analyze`], but classifies against a concrete index directory
/// and corpus size, using the physical plan's candidate estimate (the
/// same judgment the engine records in its query stats).
pub fn analyze_with_index<I: IndexRead>(
    pattern: &str,
    index: &I,
    num_docs: usize,
    cfg: &AnalysisConfig,
) -> Report {
    let mut report = analyze(pattern, cfg);
    let Some(_) = &report.plan else {
        return report; // parse error: nothing more to classify
    };
    let Ok(tree) = parse_spanned(pattern) else {
        return report;
    };
    let ast = tree.to_ast();
    let plan = LogicalPlan::from_ast(&ast, cfg.class_expand_limit);
    let (class, _estimate) = cost::classify_physical(&plan, index, num_docs);
    // Replace the shape-only judgment with the estimate-backed one.
    report.diagnostics.retain(|d| !d.code.starts_with("FA2"));
    report.diagnostics.push(cost::class_diagnostic(class));
    report.class = Some(class);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use free_engine::PlanClass;

    #[test]
    fn analyze_star_reports_null_plan_and_scan_class() {
        let r = analyze("a*", &AnalysisConfig::default());
        assert_eq!(r.class, Some(PlanClass::Scan));
        assert_eq!(r.plan.as_deref(), Some("NULL"));
        assert_eq!(r.with_code(codes::NULL_PLAN).len(), 1);
        assert_eq!(r.with_code(codes::CLASS_SCAN).len(), 1);
        assert!(!r.has_errors());
    }

    #[test]
    fn analyze_clean_pattern_is_quiet() {
        let r = analyze("Clinton", &AnalysisConfig::default());
        assert_eq!(r.class, Some(PlanClass::Indexed));
        assert_eq!(r.plan.as_deref(), Some("\"Clinton\""));
        // Only the class note remains.
        assert_eq!(r.diagnostics.len(), 1);
        assert_eq!(r.diagnostics[0].code, codes::CLASS_INDEXED);
    }

    #[test]
    fn analyze_parse_error_is_a_diagnostic() {
        let r = analyze("(", &AnalysisConfig::default());
        assert!(r.has_errors());
        assert_eq!(r.plan, None);
        assert_eq!(r.class, None);
        let d = &r.with_code(codes::PARSE_ERROR)[0].clone();
        assert!(d.message.contains("unclosed group"), "{}", d.message);
    }

    #[test]
    fn analyze_paper_query_is_indexed_and_sound() {
        let r = analyze(
            r#"<a href=("|')?.*\.mp3("|')?>"#,
            &AnalysisConfig::default(),
        );
        assert_eq!(r.class, Some(PlanClass::Indexed));
        assert!(r.with_code(codes::UNSOUND_GRAM).is_empty());
    }

    #[test]
    fn analyze_with_index_refines_the_class() {
        let mut idx = free_index::MemIndex::new();
        for d in 0..8 {
            idx.add(b"th", d);
        }
        let cfg = AnalysisConfig::default();
        // Shape-only: "th" is a 2-byte gram → INDEXED. Against an index
        // where "th" hits 8 of 10 docs, the estimate says WEAK.
        assert_eq!(analyze("th", &cfg).class, Some(PlanClass::Indexed));
        let r = analyze_with_index("th", &idx, 10, &cfg);
        assert_eq!(r.class, Some(PlanClass::Weak));
        assert_eq!(r.with_code(codes::CLASS_WEAK).len(), 1);
        assert_eq!(r.with_code(codes::CLASS_INDEXED).len(), 0);
        // Parse errors pass through untouched.
        assert!(analyze_with_index("(", &idx, 10, &cfg).has_errors());
    }
}
