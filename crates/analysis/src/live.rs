//! Live-index health analysis (`FA301`–`FA399`).
//!
//! The batch analyzers judge *queries*; these judge the *index shape* of
//! a live (incrementally updated) index. The caller summarizes the index
//! into a [`LiveHealth`] — this module deliberately has no dependency on
//! the live-index crate, so the analysis stays a pure function of plain
//! numbers and is trivially testable.
//!
//! | Code | Finding |
//! |---|---|
//! | `FA301` | over-fragmented: too many sealed segments |
//! | `FA302` | key-set drift: new docs escape the mined key sets |
//! | `FA303` | tombstone debt: deleted docs dominate stored docs |
//! | `FA304` | snapshot staleness: retired segment files linger, or the published snapshot trails the writer |
//!
//! [`analyze_shards`] extends the same idea to a *sharded* live index
//! (`FA501`): round-robin routing keeps stored documents balanced by
//! construction, so a heavily imbalanced live-document distribution
//! means skewed deletes concentrated query and compaction cost on a few
//! shards.

use crate::diagnostics::{codes, Diagnostic, Severity};

/// A shape summary of a live index, as computed by its owner.
#[derive(Clone, Copy, Debug)]
pub struct LiveHealth {
    /// Sealed segments on disk.
    pub num_segments: usize,
    /// Documents in the write buffer (including tombstoned ones).
    pub memtable_docs: usize,
    /// Live (queryable) documents.
    pub live_docs: usize,
    /// Tombstoned documents not yet reclaimed by compaction.
    pub tombstoned_docs: usize,
    /// Fraction of live write-buffer documents containing a candidate
    /// gram absent from every sealed segment's key set (see the live
    /// crate's drift probe).
    pub drift_fraction: f64,
    /// Segment files on disk that no manifest entry references (retired
    /// by compaction but never unlinked — leaked disk).
    pub retired_segment_files: usize,
    /// Writer generation minus the published snapshot's generation; any
    /// nonzero value means readers are served a stale view.
    pub snapshot_lag: u64,
}

/// Thresholds for [`analyze_live`].
#[derive(Clone, Copy, Debug)]
pub struct LiveAnalysisConfig {
    /// Flag `FA301` when more than this many segments exist.
    pub max_segments: usize,
    /// Flag `FA302` when the drift fraction exceeds this.
    pub drift_threshold: f64,
    /// Flag `FA303` when tombstones exceed this fraction of stored docs.
    pub tombstone_threshold: f64,
}

impl Default for LiveAnalysisConfig {
    fn default() -> LiveAnalysisConfig {
        LiveAnalysisConfig {
            max_segments: 8,
            drift_threshold: 0.25,
            tombstone_threshold: 0.3,
        }
    }
}

/// Analyzes a live index's shape, returning zero or more diagnostics.
pub fn analyze_live(health: &LiveHealth, cfg: &LiveAnalysisConfig) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if health.num_segments > cfg.max_segments {
        out.push(
            Diagnostic::new(
                codes::OVER_FRAGMENTED,
                Severity::Warning,
                None,
                format!(
                    "index is split across {} segments (threshold {}); every query \
                     plans and merges one candidate stream per segment",
                    health.num_segments, cfg.max_segments
                ),
            )
            .with_suggestion("run `free compact` to merge segments into one"),
        );
    }
    if health.drift_fraction > cfg.drift_threshold {
        out.push(
            Diagnostic::new(
                codes::KEY_SET_DRIFT,
                Severity::Warning,
                None,
                format!(
                    "{:.0}% of buffered documents contain candidate grams no sealed \
                     segment ever mined (threshold {:.0}%); queries over new content \
                     degrade toward scans",
                    health.drift_fraction * 100.0,
                    cfg.drift_threshold * 100.0
                ),
            )
            .with_suggestion(
                "run `free compact` to seal the buffer and unify key sets, or \
                 rebuild to re-mine keys over the full corpus",
            ),
        );
    }
    let stored = health.live_docs + health.tombstoned_docs;
    if stored > 0 {
        let frac = health.tombstoned_docs as f64 / stored as f64;
        if frac > cfg.tombstone_threshold {
            out.push(
                Diagnostic::new(
                    codes::TOMBSTONE_DEBT,
                    Severity::Warning,
                    None,
                    format!(
                        "{:.0}% of stored documents are tombstoned (threshold {:.0}%); \
                         postings and storage are mostly dead weight",
                        frac * 100.0,
                        cfg.tombstone_threshold * 100.0
                    ),
                )
                .with_suggestion("run `free compact` to reclaim tombstoned documents"),
            );
        }
    }
    if health.retired_segment_files > 0 || health.snapshot_lag > 0 {
        let mut parts = Vec::new();
        if health.retired_segment_files > 0 {
            parts.push(format!(
                "{} retired segment file(s) linger on disk",
                health.retired_segment_files
            ));
        }
        if health.snapshot_lag > 0 {
            parts.push(format!(
                "published snapshot trails the writer by {} generation(s)",
                health.snapshot_lag
            ));
        }
        // Lingering files are only leaked disk (Warning); a lagging
        // snapshot means readers are actively served stale results — a
        // publication bug, so it escalates to Error.
        let severity = if health.snapshot_lag > 0 {
            Severity::Error
        } else {
            Severity::Warning
        };
        out.push(
            Diagnostic::new(
                codes::SNAPSHOT_STALENESS,
                severity,
                None,
                format!(
                    "{}; readers may see stale data and disk is not reclaimed",
                    parts.join("; ")
                ),
            )
            .with_suggestion(
                "reopen the index to republish and sweep orphans; if this \
                 persists, a writer crashed between commit and publish",
            ),
        );
    }
    out
}

/// A shape summary of a sharded live index: live-document counts per
/// shard, indexed by shard number.
#[derive(Clone, Debug)]
pub struct ShardHealth {
    /// Live (queryable) documents in each shard.
    pub live_docs_per_shard: Vec<usize>,
}

/// Thresholds for [`analyze_shards`].
#[derive(Clone, Copy, Debug)]
pub struct ShardAnalysisConfig {
    /// Flag `FA501` when the fullest shard holds more than this multiple
    /// of the mean live-document count.
    pub imbalance_ratio: f64,
    /// Suppress `FA501` below this many total live documents (tiny
    /// indexes are trivially "imbalanced").
    pub min_docs: usize,
}

impl Default for ShardAnalysisConfig {
    fn default() -> ShardAnalysisConfig {
        ShardAnalysisConfig {
            imbalance_ratio: 2.0,
            min_docs: 64,
        }
    }
}

/// Analyzes a sharded live index's balance, returning zero or more
/// diagnostics.
pub fn analyze_shards(health: &ShardHealth, cfg: &ShardAnalysisConfig) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let n = health.live_docs_per_shard.len();
    let total: usize = health.live_docs_per_shard.iter().sum();
    if n < 2 || total < cfg.min_docs {
        return out;
    }
    let mean = total as f64 / n as f64;
    let (fullest, &max) = health
        .live_docs_per_shard
        .iter()
        .enumerate()
        .max_by_key(|(_, &d)| d)
        .unwrap_or((0, &0));
    if max as f64 > cfg.imbalance_ratio * mean {
        out.push(
            Diagnostic::new(
                codes::SHARD_IMBALANCE,
                Severity::Warning,
                None,
                format!(
                    "shard {fullest} holds {max} live doc(s), {:.1}x the per-shard mean \
                     of {mean:.0} across {n} shards; queries and compaction bottleneck \
                     on it",
                    max as f64 / mean
                ),
            )
            .with_suggestion(
                "deletes are concentrated on a few shards; run `free compact` to \
                 reclaim tombstones, or rebuild with a different shard count to \
                 re-balance",
            ),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn healthy() -> LiveHealth {
        LiveHealth {
            num_segments: 2,
            memtable_docs: 10,
            live_docs: 100,
            tombstoned_docs: 5,
            drift_fraction: 0.05,
            retired_segment_files: 0,
            snapshot_lag: 0,
        }
    }

    #[test]
    fn healthy_index_is_clean() {
        let diags = analyze_live(&healthy(), &LiveAnalysisConfig::default());
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn fragmentation_flags_fa301() {
        let health = LiveHealth {
            num_segments: 20,
            ..healthy()
        };
        let diags = analyze_live(&health, &LiveAnalysisConfig::default());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, codes::OVER_FRAGMENTED);
    }

    #[test]
    fn drift_flags_fa302() {
        let health = LiveHealth {
            drift_fraction: 0.8,
            ..healthy()
        };
        let diags = analyze_live(&health, &LiveAnalysisConfig::default());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, codes::KEY_SET_DRIFT);
        assert!(diags[0].message.contains("80%"), "{}", diags[0].message);
    }

    #[test]
    fn tombstone_debt_flags_fa303() {
        let health = LiveHealth {
            live_docs: 10,
            tombstoned_docs: 90,
            ..healthy()
        };
        let diags = analyze_live(&health, &LiveAnalysisConfig::default());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, codes::TOMBSTONE_DEBT);
    }

    #[test]
    fn empty_index_divides_safely() {
        let health = LiveHealth {
            num_segments: 0,
            memtable_docs: 0,
            live_docs: 0,
            tombstoned_docs: 0,
            drift_fraction: 0.0,
            retired_segment_files: 0,
            snapshot_lag: 0,
        };
        assert!(analyze_live(&health, &LiveAnalysisConfig::default()).is_empty());
    }

    #[test]
    fn retired_files_flag_fa304() {
        let health = LiveHealth {
            retired_segment_files: 3,
            ..healthy()
        };
        let diags = analyze_live(&health, &LiveAnalysisConfig::default());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, codes::SNAPSHOT_STALENESS);
        assert_eq!(diags[0].severity, Severity::Warning);
        assert!(
            diags[0].message.contains("3 retired segment file(s)"),
            "{}",
            diags[0].message
        );
    }

    #[test]
    fn snapshot_lag_flags_fa304() {
        let health = LiveHealth {
            snapshot_lag: 2,
            ..healthy()
        };
        let diags = analyze_live(&health, &LiveAnalysisConfig::default());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, codes::SNAPSHOT_STALENESS);
        assert_eq!(diags[0].severity, Severity::Error);
        assert!(
            diags[0].message.contains("trails the writer by 2"),
            "{}",
            diags[0].message
        );
    }

    #[test]
    fn balanced_shards_are_clean() {
        let h = ShardHealth {
            live_docs_per_shard: vec![100, 98, 101, 99],
        };
        assert!(analyze_shards(&h, &ShardAnalysisConfig::default()).is_empty());
    }

    #[test]
    fn imbalance_flags_fa501() {
        let h = ShardHealth {
            live_docs_per_shard: vec![500, 10, 10, 10],
        };
        let diags = analyze_shards(&h, &ShardAnalysisConfig::default());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, codes::SHARD_IMBALANCE);
        assert_eq!(diags[0].severity, Severity::Warning);
        assert!(diags[0].message.contains("shard 0"), "{}", diags[0].message);
    }

    #[test]
    fn tiny_and_single_shard_indexes_are_exempt() {
        let tiny = ShardHealth {
            live_docs_per_shard: vec![5, 0, 0, 0],
        };
        assert!(analyze_shards(&tiny, &ShardAnalysisConfig::default()).is_empty());
        let single = ShardHealth {
            live_docs_per_shard: vec![10_000],
        };
        assert!(analyze_shards(&single, &ShardAnalysisConfig::default()).is_empty());
    }

    #[test]
    fn all_findings_can_fire_together() {
        let health = LiveHealth {
            num_segments: 50,
            memtable_docs: 100,
            live_docs: 10,
            tombstoned_docs: 90,
            drift_fraction: 0.9,
            retired_segment_files: 1,
            snapshot_lag: 1,
        };
        let diags = analyze_live(&health, &LiveAnalysisConfig::default());
        let codes_found: Vec<&str> = diags.iter().map(|d| d.code).collect();
        assert_eq!(
            codes_found,
            vec![
                codes::OVER_FRAGMENTED,
                codes::KEY_SET_DRIFT,
                codes::TOMBSTONE_DEBT,
                codes::SNAPSHOT_STALENESS
            ]
        );
    }
}
