//! The plan soundness verifier.
//!
//! Algorithm 4.1's correctness rests on one invariant: every gram the
//! logical plan *requires* (the root gram, or the gram children of a
//! root AND) must be a factor — a contiguous substring — of **every**
//! string in the query's language. If some matching string lacks the
//! gram, the index filters out data units containing only that string
//! and the engine silently drops answers.
//!
//! This module checks the invariant with the decision procedure in
//! [`free_regex::factor`] (Brzozowski derivatives × a KMP automaton for
//! the gram) and reports violations as `FA101` diagnostics, complete
//! with a concrete witness string that matches the query but does not
//! contain the gram.

use crate::diagnostics::{codes, Diagnostic, Severity};
use free_engine::plan::logical::LogicalPlan;
use free_regex::factor::{gram_is_factor, FactorCheck};
use free_regex::Ast;

/// Outcome counts plus any violations found.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SoundnessSummary {
    /// Required grams examined.
    pub checked: usize,
    /// Grams proved to be factors of every matching string.
    pub proved: usize,
    /// Grams whose check exhausted the state budget (no verdict).
    pub unknown: usize,
    /// One `FA101` diagnostic per violated gram.
    pub diagnostics: Vec<Diagnostic>,
}

impl SoundnessSummary {
    /// Whether every checked gram was proved sound.
    pub fn all_proved(&self) -> bool {
        self.proved == self.checked
    }
}

/// Verifies the required grams of `plan` against the language of `ast`.
///
/// `state_budget` bounds the derivative-state exploration per gram; an
/// exhausted budget counts as `unknown`, never as a violation.
pub fn verify_plan(ast: &Ast, plan: &LogicalPlan, state_budget: usize) -> SoundnessSummary {
    let mut summary = SoundnessSummary::default();
    for gram in plan.required_grams() {
        summary.checked += 1;
        match gram_is_factor(ast, gram, state_budget) {
            FactorCheck::Proved => summary.proved += 1,
            FactorCheck::Unknown { .. } => summary.unknown += 1,
            FactorCheck::Violated { witness } => {
                summary.diagnostics.push(
                    Diagnostic::new(
                        codes::UNSOUND_GRAM,
                        Severity::Error,
                        None,
                        format!(
                            "plan soundness violation: the plan requires gram \
                             {:?}, but the matching string {:?} does not \
                             contain it — the index would drop that answer",
                            String::from_utf8_lossy(gram),
                            String::from_utf8_lossy(&witness),
                        ),
                    )
                    .with_suggestion(
                        "this indicates a planner bug; please report the \
                         pattern",
                    ),
                );
            }
        }
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;
    use free_regex::factor::DEFAULT_STATE_BUDGET;
    use free_regex::parse;

    fn plan_for(pattern: &str) -> (Ast, LogicalPlan) {
        let ast = parse(pattern).unwrap();
        let plan = LogicalPlan::from_ast(&ast, 16);
        (ast, plan)
    }

    #[test]
    fn compiler_plans_are_sound() {
        for p in [
            "Clinton",
            "(Bill|William).*Clinton",
            "bb.*cc.*dd.+zz",
            "x(ab)+y",
            r#"<a href=("|')?.*\.mp3("|')?>"#,
        ] {
            let (ast, plan) = plan_for(p);
            let s = verify_plan(&ast, &plan, DEFAULT_STATE_BUDGET);
            assert!(s.diagnostics.is_empty(), "{p:?}: {:?}", s.diagnostics);
            assert!(s.all_proved(), "{p:?}: {s:?}");
            assert!(s.checked > 0, "{p:?}");
        }
    }

    #[test]
    fn hand_built_bad_plan_is_caught() {
        // (Bill|William) with a plan demanding "Bill": "William" is a
        // witness that matches but lacks the gram.
        let ast = parse("(Bill|William)").unwrap();
        let bad = LogicalPlan::Gram(b"Bill".to_vec());
        let s = verify_plan(&ast, &bad, DEFAULT_STATE_BUDGET);
        assert_eq!(s.diagnostics.len(), 1);
        let d = &s.diagnostics[0];
        assert_eq!(d.code, codes::UNSOUND_GRAM);
        assert_eq!(d.severity, Severity::Error);
        assert!(d.message.contains("\"Bill\""), "{}", d.message);
        assert!(d.message.contains("William"), "{}", d.message);
        assert!(!s.all_proved());
    }

    #[test]
    fn null_plan_checks_nothing() {
        let (ast, plan) = plan_for("a*");
        assert!(plan.is_null());
        let s = verify_plan(&ast, &plan, DEFAULT_STATE_BUDGET);
        assert_eq!(s.checked, 0);
        assert!(s.all_proved());
    }

    #[test]
    fn budget_exhaustion_is_unknown_not_violation() {
        let ast = parse(".{0,50}needle").unwrap();
        let plan = LogicalPlan::Gram(b"needle".to_vec());
        let s = verify_plan(&ast, &plan, 8);
        assert_eq!(s.unknown, 1);
        assert!(s.diagnostics.is_empty());
    }
}
