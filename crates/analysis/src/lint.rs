//! The query linter: index pathologies visible in the parse tree.
//!
//! Works on the span-carrying [`SpannedAst`] so every finding can point
//! at the offending bytes of the pattern. The centerpiece is
//! [`predicts_null`], an *independent* reimplementation of the
//! NULL-collapsing rules of Algorithm 4.1 (Table 2): it predicts, from
//! the parse tree alone, whether [`LogicalPlan::from_ast`] will reduce
//! the query to NULL. The two implementations are checked against each
//! other property-wise in the workspace test suite, which is exactly why
//! this one is written from scratch rather than delegating to the
//! planner.
//!
//! [`LogicalPlan::from_ast`]: free_engine::plan::logical::LogicalPlan::from_ast

use crate::diagnostics::{codes, Diagnostic, Severity};
use crate::AnalysisConfig;
use free_regex::{SpannedAst, SpannedKind};

/// What the NULL predictor knows about a subexpression: whether its
/// logical plan collapses to NULL, and — when the subexpression matches
/// exactly one string — that string (literal merging across
/// concatenation changes which grams survive, so exactness must be
/// tracked to predict correctly).
struct NullInfo {
    null: bool,
    exact: Option<Vec<u8>>,
}

fn null_info(t: &SpannedAst, limit: usize) -> NullInfo {
    match &t.kind {
        SpannedKind::Empty => NullInfo {
            null: true,
            exact: Some(Vec::new()),
        },
        SpannedKind::Class(c) => {
            if let Some(b) = c.as_singleton() {
                NullInfo {
                    null: false,
                    exact: Some(vec![b]),
                }
            } else if c.len() <= limit {
                // Expanded to an OR of single-byte grams: constrains.
                NullInfo {
                    null: false,
                    exact: None,
                }
            } else {
                // Too wide to expand: Step [1] sends it to NULL.
                NullInfo {
                    null: true,
                    exact: None,
                }
            }
        }
        SpannedKind::Group(inner) => null_info(inner, limit),
        SpannedKind::Concat(ns) => {
            // Mirrors the planner's literal-merging walk: adjacent exact
            // literals fuse into one gram; any non-empty fused literal or
            // any non-NULL child plan constrains the conjunction.
            let mut pending = 0usize;
            let mut constrained = false;
            let mut all_exact: Option<Vec<u8>> = Some(Vec::new());
            for n in ns {
                let info = null_info(n, limit);
                match (&info.exact, &mut all_exact) {
                    (Some(e), Some(acc)) => acc.extend_from_slice(e),
                    _ => all_exact = None,
                }
                match info.exact {
                    Some(e) => pending += e.len(),
                    None => {
                        if pending > 0 {
                            constrained = true;
                        }
                        pending = 0;
                        if !info.null {
                            constrained = true;
                        }
                    }
                }
            }
            if pending > 0 {
                constrained = true;
            }
            NullInfo {
                null: !constrained,
                exact: all_exact,
            }
        }
        SpannedKind::Alternate(ns) => NullInfo {
            // Table 2: x OR NULL = NULL — one unconstrained branch
            // unconstrains the whole alternation.
            null: ns.iter().any(|n| null_info(n, limit).null),
            exact: None,
        },
        SpannedKind::Repeat { node, min, max } => {
            if *min == 0 {
                // Step [3]: zero repetitions allowed ⇒ NULL.
                return NullInfo {
                    null: true,
                    exact: if *max == Some(0) {
                        Some(Vec::new())
                    } else {
                        None
                    },
                };
            }
            let inner = null_info(node, limit);
            match (&inner.exact, max) {
                (Some(e), Some(m)) if *m == *min => {
                    let lit = e.repeat(*min as usize);
                    NullInfo {
                        null: lit.is_empty(),
                        exact: Some(lit),
                    }
                }
                (Some(e), _) => NullInfo {
                    null: e.is_empty(),
                    exact: None,
                },
                (None, _) => NullInfo {
                    null: inner.null,
                    exact: None,
                },
            }
        }
    }
}

/// Predicts whether Algorithm 4.1 reduces `tree` to the NULL plan,
/// without building the plan. Agreement with the planner itself is a
/// property-tested invariant of the workspace.
pub fn predicts_null(tree: &SpannedAst, class_expand_limit: usize) -> bool {
    null_info(tree, class_expand_limit).null
}

/// Strips grouping parentheses.
fn peel_groups(mut t: &SpannedAst) -> &SpannedAst {
    while let SpannedKind::Group(inner) = &t.kind {
        t = inner;
    }
    t
}

/// Runs every lint over the tree, in code order.
pub fn lint(tree: &SpannedAst, cfg: &AnalysisConfig) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if predicts_null(tree, cfg.class_expand_limit) {
        out.push(
            Diagnostic::new(
                codes::NULL_PLAN,
                Severity::Warning,
                Some(tree.span),
                "Algorithm 4.1 reduces this query to the NULL plan: \
                 no gram is required, so every data unit must be scanned",
            )
            .with_suggestion(
                "require at least one literal outside optional, starred, or \
                 wide-class regions",
            ),
        );
    }
    lint_edge_stars(tree, &mut out);
    let mut ctx = LintCtx {
        cfg,
        out: &mut out,
        in_null_repeat: false,
        in_unbounded_repeat: false,
    };
    lint_walk(tree, &mut ctx);
    ctx.out.sort_by_key(|d| d.code);
    out
}

/// FA002: a leading or trailing `min == 0` repetition at the top level of
/// the pattern. It cannot constrain the index (the plan drops it), and —
/// because index queries already match anywhere inside a data unit — it
/// usually signals a user porting an anchored-scan mindset.
fn lint_edge_stars(tree: &SpannedAst, out: &mut Vec<Diagnostic>) {
    let root = peel_groups(tree);
    let SpannedKind::Concat(parts) = &root.kind else {
        return;
    };
    let edges = [(parts.first(), "leading"), (parts.last(), "trailing")];
    for (part, which) in edges {
        let Some(part) = part else { continue };
        if let SpannedKind::Repeat { min: 0, .. } = peel_groups(part).kind {
            out.push(
                Diagnostic::new(
                    codes::EDGE_STAR,
                    Severity::Info,
                    Some(part.span),
                    format!(
                        "{which} unbounded repetition contributes no grams and \
                         is dropped from the plan"
                    ),
                )
                .with_suggestion(
                    "index queries match anywhere in a data unit; the edge \
                     repetition can be removed without changing the candidate set",
                ),
            );
        }
    }
}

struct LintCtx<'a> {
    cfg: &'a AnalysisConfig,
    out: &'a mut Vec<Diagnostic>,
    /// Inside a `min == 0` repetition: the region is already NULL, so
    /// per-node findings inside it would be noise.
    in_null_repeat: bool,
    /// Inside an unbounded (`max == None`) repetition.
    in_unbounded_repeat: bool,
}

fn lint_walk(t: &SpannedAst, ctx: &mut LintCtx<'_>) {
    match &t.kind {
        SpannedKind::Empty => {}
        SpannedKind::Class(c) => {
            // FA003: wider than class_expand_limit ⇒ the class cannot be
            // rewritten as an OR of its members and becomes NULL.
            if c.len() > ctx.cfg.class_expand_limit && !ctx.in_null_repeat {
                let what = if c.len() == 256 {
                    "`.` (any byte)".to_string()
                } else {
                    format!("character class with {} members", c.len())
                };
                ctx.out.push(
                    Diagnostic::new(
                        codes::WIDE_CLASS,
                        Severity::Warning,
                        Some(t.span),
                        format!(
                            "{what} exceeds class_expand_limit ({}) and \
                             contributes no grams",
                            ctx.cfg.class_expand_limit
                        ),
                    )
                    .with_suggestion(
                        "narrow the class, or rely on neighbouring literals to \
                         constrain the plan",
                    ),
                );
            }
        }
        SpannedKind::Concat(ns) => {
            for n in ns {
                lint_walk(n, ctx);
            }
        }
        SpannedKind::Alternate(ns) => {
            // FA004: one unconstrained branch nullifies the alternation.
            if !ctx.in_null_repeat {
                for n in ns {
                    if predicts_null(n, ctx.cfg.class_expand_limit) {
                        ctx.out.push(
                            Diagnostic::new(
                                codes::NULL_BRANCH,
                                Severity::Warning,
                                Some(n.span),
                                "this alternation branch requires no grams, so \
                                 the entire alternation is unindexable \
                                 (x OR NULL = NULL)",
                            )
                            .with_suggestion(
                                "make every branch contain a literal, or split \
                                 the query into separate searches",
                            ),
                        );
                    }
                }
            }
            for n in ns {
                lint_walk(n, ctx);
            }
        }
        SpannedKind::Repeat { node, min, max } => {
            lint_repeat(t, node, *min, *max, ctx);
            let saved = (ctx.in_null_repeat, ctx.in_unbounded_repeat);
            ctx.in_null_repeat |= *min == 0;
            ctx.in_unbounded_repeat |= max.is_none();
            lint_walk(node, ctx);
            (ctx.in_null_repeat, ctx.in_unbounded_repeat) = saved;
        }
        SpannedKind::Group(inner) => lint_walk(inner, ctx),
    }
}

fn lint_repeat(
    t: &SpannedAst,
    node: &SpannedAst,
    min: u32,
    max: Option<u32>,
    ctx: &mut LintCtx<'_>,
) {
    // FA006: nested unbounded quantifiers, the classic `(a+)+` ambiguity.
    // Every match has exponentially many parses; backtracking matchers go
    // superlinear and the plan gains nothing from the outer repeat.
    if max.is_none() && ctx.in_unbounded_repeat {
        ctx.out.push(
            Diagnostic::new(
                codes::NESTED_QUANTIFIER,
                Severity::Warning,
                Some(t.span),
                "unbounded repetition nested inside another unbounded \
                 repetition is ambiguous and adds nothing to the plan",
            )
            .with_suggestion("remove the inner or outer quantifier"),
        );
    }
    // FA005: counted-repetition blowup, two flavours. A huge count makes
    // the compiled automaton enormous; an exactly-counted literal body is
    // expanded into one gram of len(body)·min bytes, which no index
    // stores (the paper caps gram length at 10).
    if ctx.in_null_repeat {
        return;
    }
    if let Some(m) = max {
        if m > ctx.cfg.repeat_count_limit {
            ctx.out.push(
                Diagnostic::new(
                    codes::REPEAT_BLOWUP,
                    Severity::Warning,
                    Some(t.span),
                    format!(
                        "counted repetition up to {m} exceeds the analyzer \
                         limit of {}; the compiled automaton duplicates the \
                         body that many times",
                        ctx.cfg.repeat_count_limit
                    ),
                )
                .with_suggestion("lower the bound or use an unbounded `+`"),
            );
        }
    }
    if min > 0 {
        if let Some(e) = null_info(node, ctx.cfg.class_expand_limit).exact {
            let expanded = e.len().saturating_mul(min as usize);
            if expanded > ctx.cfg.repeat_literal_limit {
                ctx.out.push(
                    Diagnostic::new(
                        codes::REPEAT_BLOWUP,
                        Severity::Warning,
                        Some(t.span),
                        format!(
                            "repetition expands to a required literal of \
                             {expanded} bytes (limit {}); indexes store grams \
                             of at most ~10 bytes, so most of it cannot be \
                             looked up directly",
                            ctx.cfg.repeat_literal_limit
                        ),
                    )
                    .with_suggestion("shorten the repeated literal"),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use free_engine::plan::logical::LogicalPlan;
    use free_regex::parse_spanned;

    fn diags(pattern: &str) -> Vec<Diagnostic> {
        lint(&parse_spanned(pattern).unwrap(), &AnalysisConfig::default())
    }

    fn codes_of(pattern: &str) -> Vec<&'static str> {
        diags(pattern).iter().map(|d| d.code).collect()
    }

    #[test]
    fn null_predictor_agrees_with_planner_on_fixed_cases() {
        for p in [
            "",
            "a",
            "a*",
            ".*",
            "abc",
            "a|b*",
            "abc|.*",
            "a+",
            "(abc)*",
            "a{0,5}",
            "a{3}",
            "x[ab]",
            "<[^>]*<",
            r"\d\d\d",
            "(Bill|William).*Clinton",
            "a||b",
            "(){3}",
            "x(ab)+y",
            r#"<a href=("|')?.*\.mp3("|')?>"#,
        ] {
            let tree = parse_spanned(p).unwrap();
            let predicted = predicts_null(&tree, 16);
            let actual = LogicalPlan::from_ast(&tree.to_ast(), 16).is_null();
            assert_eq!(predicted, actual, "pattern {p:?}");
        }
    }

    #[test]
    fn null_plan_lint_fires_on_star() {
        let d = diags("a*");
        let null = d.iter().find(|d| d.code == codes::NULL_PLAN).unwrap();
        assert_eq!(null.severity, Severity::Warning);
        assert_eq!(null.span.unwrap().range(), 0..2);
        assert!(null.suggestion.is_some());
        assert!(!codes_of("abc").contains(&codes::NULL_PLAN));
    }

    #[test]
    fn edge_star_lint() {
        let d = diags(".*abc.*");
        let edge: Vec<_> = d.iter().filter(|d| d.code == codes::EDGE_STAR).collect();
        assert_eq!(edge.len(), 2);
        assert_eq!(edge[0].span.unwrap().range(), 0..2);
        assert_eq!(edge[1].span.unwrap().range(), 5..7);
        // Interior stars are not edge stars.
        assert!(!codes_of("a.*b").contains(&codes::EDGE_STAR));
        // A bare star is the whole pattern, not an edge.
        assert!(!codes_of(".*").contains(&codes::EDGE_STAR));
    }

    #[test]
    fn wide_class_lint() {
        let d = diags("x[^>]y");
        let wide = d.iter().find(|d| d.code == codes::WIDE_CLASS).unwrap();
        assert_eq!(wide.span.unwrap().range(), 1..5);
        assert!(wide.message.contains("255 members"), "{}", wide.message);
        // `.` gets a friendlier name.
        let d = diags("a.b");
        let wide = d.iter().find(|d| d.code == codes::WIDE_CLASS).unwrap();
        assert!(wide.message.contains("any byte"), "{}", wide.message);
        // Small classes are fine; wide classes inside `x*` regions are
        // already dropped and not re-reported.
        assert!(!codes_of("x[abc]y").contains(&codes::WIDE_CLASS));
        assert!(!codes_of("a.*b").contains(&codes::WIDE_CLASS));
    }

    #[test]
    fn null_branch_lint() {
        let d = diags("abc|d*");
        let branch = d.iter().find(|d| d.code == codes::NULL_BRANCH).unwrap();
        assert_eq!(branch.span.unwrap().range(), 4..6);
        assert!(!codes_of("abc|def").contains(&codes::NULL_BRANCH));
    }

    #[test]
    fn repeat_blowup_lint() {
        // Count flavour: bound above repeat_count_limit (256).
        assert!(codes_of("a{1,300}").contains(&codes::REPEAT_BLOWUP));
        // Literal flavour: 40 bytes × 2 = 80 > 64.
        let p = format!("({}){{2}}", "x".repeat(40));
        assert!(diags(&p)
            .iter()
            .any(|d| d.code == codes::REPEAT_BLOWUP && d.message.contains("80 bytes")),);
        assert!(!codes_of("a{1,10}").contains(&codes::REPEAT_BLOWUP));
    }

    #[test]
    fn nested_quantifier_lint() {
        assert!(codes_of("(a+)+").contains(&codes::NESTED_QUANTIFIER));
        assert!(codes_of("(a*)*").contains(&codes::NESTED_QUANTIFIER));
        assert!(!codes_of("(a{1,3})+").contains(&codes::NESTED_QUANTIFIER));
        assert!(!codes_of("a+b+").contains(&codes::NESTED_QUANTIFIER));
    }

    #[test]
    fn clean_pattern_yields_no_lints() {
        assert!(diags("Clinton").is_empty());
        assert!(diags("(Bill|William)Clinton").is_empty());
    }
}
