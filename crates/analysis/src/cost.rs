//! The static cost classifier.
//!
//! Labels a plan INDEXED, WEAK, or SCAN. Two modes:
//!
//! - **Query-only** ([`classify_logical`]): no index at hand, so the
//!   judgment uses plan shape alone — NULL plans scan, plans whose every
//!   gram is a single byte are barely better than scanning (single-byte
//!   grams are almost never useful in the Definition 3.4 sense), and
//!   everything else is assumed indexed. This is what `free analyze`
//!   uses.
//! - **Index-backed** ([`classify_physical`]): resolves the logical plan
//!   against a concrete index directory and classifies by
//!   [`PhysicalPlan::estimate`] relative to the corpus size, exactly as
//!   the engine does at query time.

use crate::diagnostics::{codes, Diagnostic, Severity};
use free_engine::plan::logical::LogicalPlan;
use free_engine::plan::physical::{PhysicalPlan, PlanOptions};
use free_engine::PlanClass;
use free_index::IndexRead;

/// Classifies a logical plan without an index.
pub fn classify_logical(plan: &LogicalPlan) -> PlanClass {
    if plan.is_null() {
        PlanClass::Scan
    } else if plan.grams().iter().all(|g| g.len() < 2) {
        PlanClass::Weak
    } else {
        PlanClass::Indexed
    }
}

/// Classifies a logical plan against a concrete index: resolves the
/// physical plan and judges its candidate estimate against `num_docs`,
/// returning the class together with the estimate.
pub fn classify_physical<I: IndexRead>(
    plan: &LogicalPlan,
    index: &I,
    num_docs: usize,
) -> (PlanClass, usize) {
    let physical = PhysicalPlan::from_logical_with(
        plan,
        index,
        PlanOptions {
            num_docs,
            prune_selectivity: 1.0,
        },
    );
    (physical.classify(num_docs), physical.estimate())
}

/// Renders a class as its `FA201`/`FA202`/`FA203` diagnostic.
pub fn class_diagnostic(class: PlanClass) -> Diagnostic {
    match class {
        PlanClass::Indexed => Diagnostic::new(
            codes::CLASS_INDEXED,
            Severity::Info,
            None,
            "plan class INDEXED: the index narrows candidates before any \
             data unit is read",
        ),
        PlanClass::Weak => Diagnostic::new(
            codes::CLASS_WEAK,
            Severity::Warning,
            None,
            "plan class WEAK: the plan uses the index but expects to fetch \
             a large fraction of the corpus",
        )
        .with_suggestion("add a longer or rarer literal to the pattern"),
        PlanClass::Scan => Diagnostic::new(
            codes::CLASS_SCAN,
            Severity::Warning,
            None,
            "plan class SCAN: the index cannot constrain this query; every \
             data unit will be read",
        )
        .with_suggestion(
            "rewrite the query so at least one alternation-free literal \
             survives (see the FA0xx findings above)",
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use free_regex::parse;

    fn logical(pattern: &str) -> LogicalPlan {
        LogicalPlan::from_ast(&parse(pattern).unwrap(), 16)
    }

    #[test]
    fn logical_classification_tiers() {
        assert_eq!(classify_logical(&logical("a*")), PlanClass::Scan);
        assert_eq!(classify_logical(&logical("Clinton")), PlanClass::Indexed);
        // `[ab]` expands to OR("a", "b"): all grams single-byte → WEAK.
        assert_eq!(classify_logical(&logical("[ab]")), PlanClass::Weak);
        assert_eq!(classify_logical(&logical("x")), PlanClass::Weak);
        // The class splits the literals, so every gram is one byte.
        assert_eq!(classify_logical(&logical("x[ab]y")), PlanClass::Weak);
        // One multi-byte gram is enough to call it INDEXED.
        assert_eq!(classify_logical(&logical("ab[xy]")), PlanClass::Indexed);
    }

    #[test]
    fn physical_classification_uses_estimates() {
        use free_index::MemIndex;
        let mut idx = MemIndex::new();
        idx.add(b"ab", 0);
        for d in 0..9 {
            idx.add(b"zz", d);
        }
        // 1 of 10 candidates → INDEXED.
        let (class, est) = classify_physical(&logical("ab"), &idx, 10);
        assert_eq!((class, est), (PlanClass::Indexed, 1));
        // 9 of 10 candidates ≥ WEAK_FRACTION → WEAK.
        let (class, est) = classify_physical(&logical("zz"), &idx, 10);
        assert_eq!((class, est), (PlanClass::Weak, 9));
        let (class, _) = classify_physical(&logical("a*"), &idx, 10);
        assert_eq!(class, PlanClass::Scan);
    }

    #[test]
    fn class_diagnostics_carry_stable_codes() {
        assert_eq!(
            class_diagnostic(PlanClass::Indexed).code,
            codes::CLASS_INDEXED
        );
        assert_eq!(class_diagnostic(PlanClass::Weak).code, codes::CLASS_WEAK);
        assert_eq!(class_diagnostic(PlanClass::Scan).code, codes::CLASS_SCAN);
        assert_eq!(
            class_diagnostic(PlanClass::Indexed).severity,
            Severity::Info
        );
        assert_eq!(
            class_diagnostic(PlanClass::Scan).severity,
            Severity::Warning
        );
    }
}
