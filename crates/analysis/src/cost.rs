//! The static cost classifier.
//!
//! Labels a plan INDEXED, WEAK, or SCAN. Two modes:
//!
//! - **Query-only** ([`classify_logical`]): no index at hand, so the
//!   judgment uses plan shape alone — NULL plans scan, plans whose every
//!   gram is a single byte are barely better than scanning (single-byte
//!   grams are almost never useful in the Definition 3.4 sense), and
//!   everything else is assumed indexed. This is what `free analyze`
//!   uses.
//! - **Index-backed** ([`classify_physical`]): resolves the logical plan
//!   against a concrete index directory and classifies by
//!   [`PhysicalPlan::estimate`] relative to the corpus size, exactly as
//!   the engine does at query time.
//! - **Cursor-backed** ([`classify_compiled`]): goes one step further and
//!   compiles the physical plan into the engine's streaming cursor tree,
//!   classifying by the root cursor's `cost_estimate()` — a bound
//!   computed from the actual postings (after key dedup, absent-key
//!   short-circuiting, and cursor priming) rather than directory
//!   statistics, so it is never looser than the planner's estimate.

use crate::diagnostics::{codes, Diagnostic, Severity};
use free_engine::plan::logical::LogicalPlan;
use free_engine::plan::physical::{PhysicalPlan, PlanOptions};
use free_engine::PlanClass;
use free_index::IndexRead;

/// Classifies a logical plan without an index.
pub fn classify_logical(plan: &LogicalPlan) -> PlanClass {
    if plan.is_null() {
        PlanClass::Scan
    } else if plan.grams().iter().all(|g| g.len() < 2) {
        PlanClass::Weak
    } else {
        PlanClass::Indexed
    }
}

/// Classifies a logical plan against a concrete index: resolves the
/// physical plan and judges its candidate estimate against `num_docs`,
/// returning the class together with the estimate.
pub fn classify_physical<I: IndexRead>(
    plan: &LogicalPlan,
    index: &I,
    num_docs: usize,
) -> (PlanClass, usize) {
    let physical = PhysicalPlan::from_logical_with(
        plan,
        index,
        PlanOptions {
            num_docs,
            prune_selectivity: 1.0,
        },
    );
    (physical.classify(num_docs), physical.estimate())
}

/// Classifies a logical plan by compiling it into the engine's streaming
/// cursor tree and reading the root cursor's remaining-docs upper bound.
///
/// Returns the class and the cursor-level estimate. Falls back to the
/// static [`classify_physical`] judgment if cursor compilation fails
/// (e.g. a corrupt on-disk postings entry).
pub fn classify_compiled<I: IndexRead>(
    plan: &LogicalPlan,
    index: &I,
    num_docs: usize,
) -> (PlanClass, usize) {
    use free_engine::exec::stream::compile_plan;
    use free_engine::plan::physical::WEAK_FRACTION;
    use free_index::PostingsCursor;

    let physical = PhysicalPlan::from_logical_with(
        plan,
        index,
        PlanOptions {
            num_docs,
            prune_selectivity: 1.0,
        },
    );
    let mut stats = free_engine::QueryStats::default();
    match compile_plan(&physical, index, &mut stats) {
        Ok(Some(cursor)) => {
            let mut estimate = cursor.cost_estimate();
            if num_docs > 0 {
                // An OR's bound (sum of children) can exceed the corpus.
                estimate = estimate.min(num_docs);
            }
            let class = if num_docs > 0 && estimate as f64 >= WEAK_FRACTION * num_docs as f64 {
                PlanClass::Weak
            } else {
                PlanClass::Indexed
            };
            (class, estimate)
        }
        Ok(None) => (PlanClass::Scan, num_docs),
        Err(_) => classify_physical(plan, index, num_docs),
    }
}

/// Renders a class as its `FA201`/`FA202`/`FA203` diagnostic.
pub fn class_diagnostic(class: PlanClass) -> Diagnostic {
    match class {
        PlanClass::Indexed => Diagnostic::new(
            codes::CLASS_INDEXED,
            Severity::Info,
            None,
            "plan class INDEXED: the index narrows candidates before any \
             data unit is read",
        ),
        PlanClass::Weak => Diagnostic::new(
            codes::CLASS_WEAK,
            Severity::Warning,
            None,
            "plan class WEAK: the plan uses the index but expects to fetch \
             a large fraction of the corpus",
        )
        .with_suggestion("add a longer or rarer literal to the pattern"),
        PlanClass::Scan => Diagnostic::new(
            codes::CLASS_SCAN,
            Severity::Warning,
            None,
            "plan class SCAN: the index cannot constrain this query; every \
             data unit will be read",
        )
        .with_suggestion(
            "rewrite the query so at least one alternation-free literal \
             survives (see the FA0xx findings above)",
        ),
    }
}

/// Ratio between estimated and actual cardinality beyond which `FA204`
/// fires.
pub const DRIFT_FACTOR: f64 = 4.0;

/// Minimum `max(estimate, actual)` for drift to be reported; below this
/// the absolute error is too small to matter.
pub const DRIFT_MIN_CARDINALITY: u64 = 16;

/// Checks one operator's estimate against its observed cardinality,
/// producing an `FA204` diagnostic when they disagree by more than
/// [`DRIFT_FACTOR`] in either direction.
///
/// `label` names the operator (typically a plan node's rendering from
/// [`free_engine::NodeStats`]).
pub fn estimate_drift(label: &str, estimated: usize, actual: u64) -> Option<Diagnostic> {
    let est = estimated as u64;
    if est.max(actual) < DRIFT_MIN_CARDINALITY {
        return None;
    }
    // Guard both directions with a zero-safe ratio: a zero estimate
    // against a large actual (or vice versa) is infinite drift.
    let (lo, hi) = (est.min(actual), est.max(actual));
    if lo > 0 && (hi as f64) < DRIFT_FACTOR * lo as f64 {
        return None;
    }
    let direction = if actual > est { "under" } else { "over" };
    Some(
        Diagnostic::new(
            codes::ESTIMATE_DRIFT,
            Severity::Warning,
            None,
            format!(
                "estimate drift at {label}: planner estimated ~{estimated} \
                 doc(s) but the operator yielded {actual} ({direction}estimated)"
            ),
        )
        .with_suggestion(
            "the doc-frequency statistics the planner used do not reflect \
             this operator's true selectivity; consider rebuilding the index \
             or lowering the usefulness threshold",
        ),
    )
}

/// Walks an `EXPLAIN ANALYZE` operator tree and reports every node whose
/// actual cardinality drifted from its estimate (pre-order, so the root's
/// finding comes first).
pub fn drift_diagnostics(root: &free_engine::NodeStats) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    fn walk(node: &free_engine::NodeStats, out: &mut Vec<Diagnostic>) {
        if let Some(d) = estimate_drift(&node.label, node.estimate, node.actual_docs) {
            out.push(d);
        }
        for c in &node.children {
            walk(c, out);
        }
    }
    walk(root, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use free_regex::parse;

    fn logical(pattern: &str) -> LogicalPlan {
        LogicalPlan::from_ast(&parse(pattern).unwrap(), 16)
    }

    #[test]
    fn logical_classification_tiers() {
        assert_eq!(classify_logical(&logical("a*")), PlanClass::Scan);
        assert_eq!(classify_logical(&logical("Clinton")), PlanClass::Indexed);
        // `[ab]` expands to OR("a", "b"): all grams single-byte → WEAK.
        assert_eq!(classify_logical(&logical("[ab]")), PlanClass::Weak);
        assert_eq!(classify_logical(&logical("x")), PlanClass::Weak);
        // The class splits the literals, so every gram is one byte.
        assert_eq!(classify_logical(&logical("x[ab]y")), PlanClass::Weak);
        // One multi-byte gram is enough to call it INDEXED.
        assert_eq!(classify_logical(&logical("ab[xy]")), PlanClass::Indexed);
    }

    #[test]
    fn physical_classification_uses_estimates() {
        use free_index::MemIndex;
        let mut idx = MemIndex::new();
        idx.add(b"ab", 0);
        for d in 0..9 {
            idx.add(b"zz", d);
        }
        // 1 of 10 candidates → INDEXED.
        let (class, est) = classify_physical(&logical("ab"), &idx, 10);
        assert_eq!((class, est), (PlanClass::Indexed, 1));
        // 9 of 10 candidates ≥ WEAK_FRACTION → WEAK.
        let (class, est) = classify_physical(&logical("zz"), &idx, 10);
        assert_eq!((class, est), (PlanClass::Weak, 9));
        let (class, _) = classify_physical(&logical("a*"), &idx, 10);
        assert_eq!(class, PlanClass::Scan);
    }

    #[test]
    fn compiled_classification_reads_cursor_estimates() {
        use free_index::MemIndex;
        let mut idx = MemIndex::new();
        idx.add(b"ab", 0);
        for d in 0..9 {
            idx.add(b"zz", d);
        }
        let (class, est) = classify_compiled(&logical("ab"), &idx, 10);
        assert_eq!((class, est), (PlanClass::Indexed, 1));
        let (class, est) = classify_compiled(&logical("zz"), &idx, 10);
        assert_eq!((class, est), (PlanClass::Weak, 9));
        let (class, _) = classify_compiled(&logical("a*"), &idx, 10);
        assert_eq!(class, PlanClass::Scan);
        // An AND of a rare and a common gram: the cursor bound is the
        // rare child's remaining count — tighter than the common list.
        let (class, est) = classify_compiled(&logical("ab.*zz"), &idx, 10);
        assert_eq!(class, PlanClass::Indexed);
        assert!(est <= 1, "AND bound must come from the rarest child: {est}");
        // The static estimate agrees here; the compiled bound must never
        // be looser than it.
        let (_, static_est) = classify_physical(&logical("ab.*zz"), &idx, 10);
        assert!(est <= static_est);
    }

    #[test]
    fn drift_fires_only_on_large_relative_misses() {
        // 4x under-estimate on a meaningful cardinality: fires.
        let d = estimate_drift("Fetch[\"abc\"]", 10, 40).expect("drift");
        assert_eq!(d.code, codes::ESTIMATE_DRIFT);
        assert!(d.message.contains("underestimated"), "{}", d.message);
        // Over-estimate fires too.
        let d = estimate_drift("AND", 100, 20).expect("drift");
        assert!(d.message.contains("overestimated"), "{}", d.message);
        // Inside the factor: quiet.
        assert!(estimate_drift("AND", 30, 40).is_none());
        // Tiny cardinalities: quiet even at infinite ratio.
        assert!(estimate_drift("AND", 0, 10).is_none());
        // Zero actual against a large estimate is infinite drift.
        assert!(estimate_drift("AND", 100, 0).is_some());
    }

    #[test]
    fn drift_walks_the_analyze_tree() {
        use free_corpus::MemCorpus;
        use free_engine::{Engine, EngineConfig};
        // Docs where "ab" and "cd" co-occur nowhere: the AND's estimate
        // (min of children) is far above its actual cardinality of zero.
        let docs: Vec<Vec<u8>> = (0..40)
            .map(|i| {
                if i % 2 == 0 {
                    format!("ab filler {i}").into_bytes()
                } else {
                    format!("cd filler {i}").into_bytes()
                }
            })
            .collect();
        let engine = Engine::build_in_memory(
            MemCorpus::from_docs(docs),
            EngineConfig {
                max_gram_len: 3,
                prune_selectivity: 1.0,
                ..EngineConfig::with_kind(free_engine::IndexKind::Complete)
            },
        )
        .unwrap();
        let ea = engine.explain_analyze("ab.*cd").unwrap();
        let root = ea.root.as_ref().expect("indexed plan");
        let found = drift_diagnostics(root);
        assert!(
            found.iter().any(|d| d.code == codes::ESTIMATE_DRIFT),
            "AND with zero actual docs must report drift: {found:?}"
        );
    }

    #[test]
    fn class_diagnostics_carry_stable_codes() {
        assert_eq!(
            class_diagnostic(PlanClass::Indexed).code,
            codes::CLASS_INDEXED
        );
        assert_eq!(class_diagnostic(PlanClass::Weak).code, codes::CLASS_WEAK);
        assert_eq!(class_diagnostic(PlanClass::Scan).code, codes::CLASS_SCAN);
        assert_eq!(
            class_diagnostic(PlanClass::Indexed).severity,
            Severity::Info
        );
        assert_eq!(
            class_diagnostic(PlanClass::Scan).severity,
            Severity::Warning
        );
    }
}
