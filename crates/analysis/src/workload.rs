//! Workload diagnostics mined from the durable query log
//! (`FA600`–`FA699`).
//!
//! `free search --query-log` and `free serve --query-log` capture one
//! record per executed query (see `free_trace::qlog`). This module reads
//! a log directory back and reports *workload-level* pathologies no
//! single-query analyzer can see:
//!
//! * **`FA601` hot SCAN pattern** — a pattern whose plan degenerated to
//!   a full scan keeps being issued. One scan is exploration; the same
//!   scan N times is a standing tax.
//! * **`FA602` aggregate estimate drift** — summed over the workload,
//!   the index hands confirmation far more candidates than ever match.
//!   Individually each query looks fine; together they say the mined
//!   gram set is too weak for this query mix.
//! * **`FA603` slow-query concentration** — most slow-query records
//!   carry the same pattern, so one plan fix reclaims most of the lost
//!   time. Slow records carry a captured `explain_analyze` tree (the
//!   flight recorder) pointing at the operator to fix.
//!
//! Torn or corrupt segments are skipped exactly as `free replay` skips
//! them — only trusted records feed the statistics.

use crate::diagnostics::{codes, diagnostic_json, json_string, Diagnostic, Severity};
use free_trace::json::JsonValue;
use free_trace::qlog::{self, SegmentStatus};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

/// Thresholds for the workload analyzers. The defaults are deliberately
/// conservative: diagnostics should name standing problems, not noise.
#[derive(Clone, Debug)]
pub struct WorkloadOptions {
    /// `FA601` fires when a SCAN-class pattern appears at least this
    /// many times.
    pub scan_repeat_threshold: usize,
    /// The query-log directory the records came from, when known.
    /// [`analyze_workload`] fills it in automatically; with it, `FA601`
    /// can name the exact `free build --selector workload:qlog=DIR`
    /// invocation that mines an index from this very workload.
    pub qlog_dir: Option<std::path::PathBuf>,
    /// `FA602` fires when aggregate candidates exceed this multiple of
    /// aggregate matching documents (over complete records only).
    pub drift_factor: f64,
    /// `FA602` needs at least this many aggregate candidates before it
    /// will speak — tiny workloads drift by accident.
    pub drift_min_candidates: u64,
    /// `FA603` fires when one pattern holds at least this share of the
    /// slow-query records…
    pub concentration_share: f64,
    /// …and there are at least this many slow records in total.
    pub concentration_min_slow: usize,
}

impl Default for WorkloadOptions {
    fn default() -> WorkloadOptions {
        WorkloadOptions {
            scan_repeat_threshold: 3,
            qlog_dir: None,
            drift_factor: 4.0,
            drift_min_candidates: 64,
            concentration_share: 0.5,
            concentration_min_slow: 5,
        }
    }
}

/// One query record parsed back out of the log. Fields mirror the JSON
/// envelope written by `free_engine::qlog::query_record`.
#[derive(Clone, Debug)]
pub struct QueryRecord {
    /// Wall-clock capture time (unix milliseconds).
    pub ts_ms: u64,
    /// `"batch"` or `"live"`.
    pub source: String,
    /// The pattern, verbatim.
    pub pattern: String,
    /// `INDEXED`, `WEAK`, or `SCAN`.
    pub plan_class: String,
    /// Multigram keys the physical plan fetched (batch only).
    pub grams: Vec<String>,
    /// The confirmation pass ran to exhaustion, so the counts below are
    /// the full answer (replay verifies only complete records).
    pub complete: bool,
    /// The completing pass counted spans (`match_count` is real).
    pub spans: bool,
    /// The query crossed the slow threshold; `has_analyze` says whether
    /// a flight-recorder tree was captured alongside.
    pub slow: bool,
    /// A captured `explain_analyze` tree rides in the record.
    pub has_analyze: bool,
    /// Candidate documents the index produced.
    pub candidates: u64,
    /// Documents confirmed to match.
    pub matching_docs: u64,
    /// Total match spans (meaningful when `spans`).
    pub match_count: u64,
    /// End-to-end query time in nanoseconds.
    pub total_ns: u64,
}

impl QueryRecord {
    /// Parses one log line; `None` for access records, damaged lines, or
    /// anything that is not a `type:"query"` record.
    pub fn parse(line: &str) -> Option<QueryRecord> {
        let v = JsonValue::parse(line).ok()?;
        if v.get("type")?.as_str()? != "query" {
            return None;
        }
        let stats = v.get("stats")?;
        let grams = v
            .get("grams")
            .and_then(|g| g.as_array())
            .map(|a| {
                a.iter()
                    .filter_map(|g| g.as_str().map(str::to_string))
                    .collect()
            })
            .unwrap_or_default();
        Some(QueryRecord {
            ts_ms: v.get("ts_ms").and_then(|x| x.as_u64()).unwrap_or(0),
            source: v.get("source")?.as_str()?.to_string(),
            pattern: v.get("pattern")?.as_str()?.to_string(),
            plan_class: stats
                .get("plan_class")
                .and_then(|x| x.as_str())
                .unwrap_or("")
                .to_string(),
            grams,
            complete: v.get("complete").and_then(|x| x.as_bool()).unwrap_or(false),
            spans: v.get("spans").and_then(|x| x.as_bool()).unwrap_or(false),
            slow: v.get("slow").and_then(|x| x.as_bool()).unwrap_or(false),
            has_analyze: v.get("analyze").is_some_and(|a| *a != JsonValue::Null),
            candidates: stats
                .get("candidates")
                .and_then(|x| x.as_u64())
                .unwrap_or(0),
            matching_docs: stats
                .get("matching_docs")
                .and_then(|x| x.as_u64())
                .unwrap_or(0),
            match_count: stats
                .get("match_count")
                .and_then(|x| x.as_u64())
                .unwrap_or(0),
            total_ns: stats.get("total_ns").and_then(|x| x.as_u64()).unwrap_or(0),
        })
    }
}

/// The result of mining one query-log directory.
#[derive(Clone, Debug)]
pub struct WorkloadReport {
    /// The log directory, verbatim.
    pub target: String,
    /// Segments read (sealed + unsealed).
    pub segments: usize,
    /// Segments whose CRC footer verified.
    pub sealed: usize,
    /// Segments skipped as corrupt.
    pub corrupt: usize,
    /// Query records parsed.
    pub queries: usize,
    /// Access records seen (counted, not mined).
    pub accesses: usize,
    /// Access records by outcome status (`ok`/`error`/`timeout`/`shed`).
    /// Pre-status records (no `status` field) are classified from their
    /// `ok` flag. Sheds and timeouts showing up here is the point: the
    /// log records what the server *refused*, not just what it served.
    pub access_status: BTreeMap<String, usize>,
    /// Records flagged slow.
    pub slow: usize,
    /// All findings.
    pub diagnostics: Vec<Diagnostic>,
}

impl WorkloadReport {
    /// Whether any finding is an [`Severity::Error`].
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Findings with the given code.
    pub fn with_code(&self, code: &str) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.code == code).collect()
    }

    /// Renders the report for terminal consumption.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        let n = self.diagnostics.len();
        let _ = writeln!(
            out,
            "workload {}: {} segment(s) ({} sealed, {} corrupt), \
             {} query record(s), {} slow, {} finding{}",
            self.target,
            self.segments,
            self.sealed,
            self.corrupt,
            self.queries,
            self.slow,
            n,
            if n == 1 { "" } else { "s" }
        );
        if self.accesses > 0 {
            let breakdown = self
                .access_status
                .iter()
                .map(|(status, count)| format!("{status} {count}"))
                .collect::<Vec<_>>()
                .join(", ");
            let _ = writeln!(out, "access records: {} ({breakdown})", self.accesses);
        }
        for d in &self.diagnostics {
            let _ = writeln!(out, "{}[{}]: {}", d.severity, d.code, d.message);
            if let Some(s) = &d.suggestion {
                let _ = writeln!(out, "  help: {s}");
            }
        }
        if n == 0 {
            let _ = writeln!(out, "ok: no workload pathologies");
        }
        out
    }

    /// Renders the report as one JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push('{');
        let _ = write!(out, "\"target\":{}", json_string(&self.target));
        let _ = write!(out, ",\"segments\":{}", self.segments);
        let _ = write!(out, ",\"sealed\":{}", self.sealed);
        let _ = write!(out, ",\"corrupt\":{}", self.corrupt);
        let _ = write!(out, ",\"queries\":{}", self.queries);
        let _ = write!(out, ",\"accesses\":{}", self.accesses);
        out.push_str(",\"access_status\":{");
        for (i, (status, count)) in self.access_status.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{count}", json_string(status));
        }
        out.push('}');
        let _ = write!(out, ",\"slow\":{}", self.slow);
        out.push_str(",\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&diagnostic_json(d));
        }
        out.push_str("]}");
        out
    }
}

/// Mines the query-log directory at `dir`: reads every trusted record
/// (torn tails and corrupt segments are skipped) and runs the `FA6xx`
/// analyzers over the parsed workload.
pub fn analyze_workload(dir: &Path, opts: &WorkloadOptions) -> std::io::Result<WorkloadReport> {
    let segments = qlog::read_dir(dir)?;
    let mut report = WorkloadReport {
        target: dir.display().to_string(),
        segments: segments.len(),
        sealed: 0,
        corrupt: 0,
        queries: 0,
        accesses: 0,
        access_status: BTreeMap::new(),
        slow: 0,
        diagnostics: Vec::new(),
    };
    let mut records = Vec::new();
    for seg in &segments {
        match &seg.status {
            SegmentStatus::Sealed => report.sealed += 1,
            SegmentStatus::Unsealed { .. } => {}
            SegmentStatus::Corrupt { .. } => report.corrupt += 1,
        }
        for line in seg.trusted_records() {
            if let Some(q) = QueryRecord::parse(line) {
                records.push(q);
            } else if line.contains("\"type\":\"access\"") {
                report.accesses += 1;
                *report
                    .access_status
                    .entry(access_status(line).to_string())
                    .or_insert(0) += 1;
            }
        }
    }
    report.queries = records.len();
    report.slow = records.iter().filter(|r| r.slow).count();
    // Fill in the log's own directory so FA601 can spell out the
    // workload-selector rebuild against it.
    let mut opts = opts.clone();
    if opts.qlog_dir.is_none() {
        opts.qlog_dir = Some(dir.to_path_buf());
    }
    report.diagnostics = analyze_records(&records, &opts);
    Ok(report)
}

/// Classifies one access-record line by its `status` field; records
/// written before statuses existed are classified from their `ok` flag.
fn access_status(line: &str) -> &'static str {
    let Ok(v) = JsonValue::parse(line) else {
        return "unknown";
    };
    match v.get("status").and_then(|s| s.as_str()) {
        Some("ok") => "ok",
        Some("error") => "error",
        Some("timeout") => "timeout",
        Some("shed") => "shed",
        Some(_) => "unknown",
        None => match v.get("ok").and_then(|o| o.as_bool()) {
            Some(true) => "ok",
            Some(false) => "error",
            None => "unknown",
        },
    }
}

/// The `FA6xx` analyzers over an already-parsed workload. Split from
/// [`analyze_workload`] so tests and `free replay` can feed records
/// directly.
pub fn analyze_records(records: &[QueryRecord], opts: &WorkloadOptions) -> Vec<Diagnostic> {
    let mut diags = Vec::new();

    // FA601: SCAN-class patterns by repetition count, worst first.
    let mut scans: BTreeMap<&str, usize> = BTreeMap::new();
    for r in records.iter().filter(|r| r.plan_class == "SCAN") {
        *scans.entry(r.pattern.as_str()).or_insert(0) += 1;
    }
    let mut hot: Vec<(&str, usize)> = scans
        .into_iter()
        .filter(|&(_, n)| n >= opts.scan_repeat_threshold)
        .collect();
    hot.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    for (pattern, n) in hot {
        diags.push(
            Diagnostic::new(
                codes::HOT_SCAN_PATTERN,
                Severity::Warning,
                None,
                format!(
                    "pattern {pattern:?} ran as a full SCAN {n} times: \
                     every execution walks the whole corpus"
                ),
            )
            .with_suggestion(match &opts.qlog_dir {
                Some(dir) => format!(
                    "run `free analyze` on the pattern; anchoring it with a literal \
                     of length >= 2 lets the multigram index prune — or rebuild with \
                     the workload-aware selector so the index mines its grams from \
                     this log: `free build --selector workload:qlog={} --force <ROOT>`",
                    dir.display()
                ),
                None => "run `free analyze` on the pattern; anchoring it with a literal \
                         of length >= 2 lets the multigram index prune"
                    .to_string(),
            }),
        );
    }

    // FA602: aggregate candidates vs confirmed matches, complete
    // records only (an early-stopped query undercounts its matches).
    let complete: Vec<&QueryRecord> = records.iter().filter(|r| r.complete).collect();
    let candidates: u64 = complete.iter().map(|r| r.candidates).sum();
    let matched: u64 = complete.iter().map(|r| r.matching_docs).sum();
    if candidates >= opts.drift_min_candidates
        && candidates as f64 > opts.drift_factor * (matched.max(1)) as f64
    {
        let ratio = candidates as f64 / matched.max(1) as f64;
        diags.push(
            Diagnostic::new(
                codes::WORKLOAD_DRIFT,
                Severity::Warning,
                None,
                format!(
                    "index selectivity is weak for this workload: {candidates} candidate \
                     document(s) confirmed down to {matched} match(es) ({ratio:.1}x) \
                     across {} complete record(s)",
                    complete.len()
                ),
            )
            .with_suggestion(
                "re-mine with a lower usefulness threshold (more, rarer grams), \
                 or raise max gram length"
                    .to_string(),
            ),
        );
    }

    // FA603: does one pattern own the slow log?
    let slow: Vec<&QueryRecord> = records.iter().filter(|r| r.slow).collect();
    if slow.len() >= opts.concentration_min_slow {
        let mut by_pattern: BTreeMap<&str, usize> = BTreeMap::new();
        for r in &slow {
            *by_pattern.entry(r.pattern.as_str()).or_insert(0) += 1;
        }
        if let Some((pattern, n)) = by_pattern
            .into_iter()
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(a.0)))
        {
            let share = n as f64 / slow.len() as f64;
            if share >= opts.concentration_share {
                diags.push(
                    Diagnostic::new(
                        codes::SLOW_CONCENTRATION,
                        Severity::Warning,
                        None,
                        format!(
                            "pattern {pattern:?} accounts for {n} of {} slow-query \
                             record(s) ({:.0}%)",
                            slow.len(),
                            share * 100.0
                        ),
                    )
                    .with_suggestion(
                        "inspect its captured explain-analyze tree with \
                         `free log <dir> --slow --analyze`"
                            .to_string(),
                    ),
                );
            }
        }
    }

    diags
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(
        pattern: &str,
        class: &str,
        candidates: u64,
        matched: u64,
        slow: bool,
    ) -> QueryRecord {
        QueryRecord {
            ts_ms: 0,
            source: "batch".to_string(),
            pattern: pattern.to_string(),
            plan_class: class.to_string(),
            grams: Vec::new(),
            complete: true,
            spans: false,
            slow,
            has_analyze: false,
            candidates,
            matching_docs: matched,
            match_count: matched,
            total_ns: 1000,
        }
    }

    #[test]
    fn parses_a_written_record() {
        let stats = free_engine::QueryStats::default();
        let line = free_engine::qlog::query_record(
            "batch",
            "nee.le",
            &stats,
            &[b"nee".as_slice(), b"le".as_slice()],
            true,
            false,
            false,
            None,
        );
        let q = QueryRecord::parse(&line).unwrap();
        assert_eq!(q.pattern, "nee.le");
        assert_eq!(q.source, "batch");
        assert_eq!(q.grams, vec!["nee".to_string(), "le".to_string()]);
        assert!(q.complete);
        assert!(!q.slow);
        assert!(!q.has_analyze);
    }

    #[test]
    fn access_records_are_not_query_records() {
        assert!(QueryRecord::parse(r#"{"type":"access","ts_ms":1,"request_id":1}"#).is_none());
        assert!(QueryRecord::parse("not json").is_none());
    }

    #[test]
    fn hot_scan_fires_at_threshold() {
        let opts = WorkloadOptions::default();
        let mut records = vec![record("a.*b", "SCAN", 10, 1, false); 2];
        assert!(analyze_records(&records, &opts).is_empty());
        records.push(record("a.*b", "SCAN", 10, 1, false));
        let diags = analyze_records(&records, &opts);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, codes::HOT_SCAN_PATTERN);
        assert!(diags[0].message.contains("3 times"));
        // Without a known log directory the hint stays generic…
        let hint = diags[0].suggestion.as_deref().unwrap();
        assert!(!hint.contains("workload:qlog="), "{hint}");
        // …and with one (what `analyze_workload` fills in) it spells out
        // the exact workload-selector rebuild.
        let opts = WorkloadOptions {
            qlog_dir: Some("/var/log/free".into()),
            ..WorkloadOptions::default()
        };
        let diags = analyze_records(&records, &opts);
        let hint = diags[0].suggestion.as_deref().unwrap();
        assert!(
            hint.contains("--selector workload:qlog=/var/log/free"),
            "{hint}"
        );
    }

    #[test]
    fn drift_needs_volume_and_ratio() {
        let opts = WorkloadOptions::default();
        // Big candidate volume, nearly all confirmed: no drift.
        let good = vec![record("x", "INDEXED", 100, 90, false); 10];
        assert!(analyze_records(&good, &opts).is_empty());
        // Big candidate volume, almost nothing confirms: drift.
        let bad = vec![record("x", "INDEXED", 100, 2, false); 10];
        let diags = analyze_records(&bad, &opts);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, codes::WORKLOAD_DRIFT);
        // Same ratio but below the candidate floor: silent.
        let tiny = vec![record("x", "INDEXED", 10, 0, false)];
        assert!(analyze_records(&tiny, &opts).is_empty());
    }

    #[test]
    fn slow_concentration_wants_a_majority() {
        let opts = WorkloadOptions::default();
        let mut records = vec![record("hog", "WEAK", 50, 40, true); 4];
        records.push(record("other", "WEAK", 50, 40, true));
        let diags = analyze_records(&records, &opts);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, codes::SLOW_CONCENTRATION);
        assert!(diags[0].message.contains("4 of 5"));
        // An even spread stays quiet.
        let spread: Vec<QueryRecord> = (0..6)
            .map(|i| record(&format!("p{i}"), "WEAK", 50, 40, true))
            .collect();
        assert!(analyze_records(&spread, &opts).is_empty());
    }

    #[test]
    fn access_records_break_down_by_status() {
        let dir = std::env::temp_dir().join(format!("free-workload-acc-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let w = free_trace::LogWriter::create(&dir).unwrap();
        for status in ["ok", "ok", "timeout", "shed", "error"] {
            w.emit(format!(
                r#"{{"type":"access","ts_ms":1,"request_id":1,"cmd":"query","ok":{},"status":"{status}","total_ns":10}}"#,
                status == "ok"
            ));
        }
        // A pre-status record classifies from its ok flag.
        w.emit(
            r#"{"type":"access","ts_ms":1,"request_id":9,"cmd":"ping","ok":true,"total_ns":10}"#
                .to_string(),
        );
        w.close();
        let report = analyze_workload(&dir, &WorkloadOptions::default()).unwrap();
        assert_eq!(report.accesses, 6);
        assert_eq!(report.access_status.get("ok"), Some(&3));
        assert_eq!(report.access_status.get("timeout"), Some(&1));
        assert_eq!(report.access_status.get("shed"), Some(&1));
        assert_eq!(report.access_status.get("error"), Some(&1));
        let human = report.render_human();
        assert!(human.contains("access records: 6"), "{human}");
        assert!(human.contains("shed 1"), "{human}");
        let json = report.to_json();
        assert!(json.contains("\"access_status\":{"), "{json}");
        assert!(json.contains("\"timeout\":1"), "{json}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn workload_report_renders_both_ways() {
        let dir = std::env::temp_dir().join(format!("free-workload-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let w = free_trace::LogWriter::create(&dir).unwrap();
        let stats = free_engine::QueryStats {
            candidates: 100,
            matching_docs: 1,
            ..Default::default()
        };
        for _ in 0..3 {
            w.emit(free_engine::qlog::query_record(
                "batch",
                "sc.n",
                &stats,
                &[],
                true,
                false,
                false,
                None,
            ));
        }
        w.close();
        let report = analyze_workload(&dir, &WorkloadOptions::default()).unwrap();
        assert_eq!(report.queries, 3);
        assert_eq!(report.sealed, 1);
        assert!(report.render_human().contains("3 query record(s)"));
        assert!(report.to_json().contains("\"queries\":3"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
