//! The diagnostic model: stable codes, severities, spans, and rendering.
//!
//! Every finding the analyzer can produce is identified by a stable
//! `FAxxx` code so scripts and tests can match on it without parsing
//! prose. Codes are grouped by engine:
//!
//! | Range | Engine |
//! |---|---|
//! | `FA000` | pattern does not parse |
//! | `FA001`–`FA099` | query linter (index pathologies visible in the AST) |
//! | `FA101`–`FA199` | plan soundness verifier (Algorithm 4.1 invariant) |
//! | `FA201`–`FA299` | static cost classifier (INDEXED / WEAK / SCAN) |
//! | `FA301`–`FA399` | live-index health (fragmentation, drift, tombstones) |
//! | `FA400`–`FA499` | on-disk integrity (`free fsck`) |
//! | `FA500`–`FA599` | sharded-index health and layout (imbalance, routing) |
//! | `FA600`–`FA699` | workload diagnostics (query-log mining) |

use free_engine::PlanClass;
use free_regex::Span;
use std::fmt;

/// Stable diagnostic codes. Never renumber these: external tooling and
/// the CLI integration tests match on the literal strings.
pub mod codes {
    /// The pattern failed to parse.
    pub const PARSE_ERROR: &str = "FA000";
    /// Algorithm 4.1 reduces the query to the NULL plan (full scan).
    pub const NULL_PLAN: &str = "FA001";
    /// Leading/trailing unbounded repetition contributes nothing.
    pub const EDGE_STAR: &str = "FA002";
    /// A character class wider than `class_expand_limit` (collapses to NULL).
    pub const WIDE_CLASS: &str = "FA003";
    /// An alternation branch with no grams nullifies the whole alternation.
    pub const NULL_BRANCH: &str = "FA004";
    /// A counted repetition expands into an oversized literal or count.
    pub const REPEAT_BLOWUP: &str = "FA005";
    /// Nested unbounded quantifiers (ambiguous, superlinear matching).
    pub const NESTED_QUANTIFIER: &str = "FA006";
    /// A required gram is not a factor of every matching string.
    pub const UNSOUND_GRAM: &str = "FA101";
    /// Plan classified INDEXED.
    pub const CLASS_INDEXED: &str = "FA201";
    /// Plan classified WEAK.
    pub const CLASS_WEAK: &str = "FA202";
    /// Plan classified SCAN.
    pub const CLASS_SCAN: &str = "FA203";
    /// An operator's actual cardinality drifted far from the planner's
    /// estimate (only produced when an `EXPLAIN ANALYZE` trace is
    /// available).
    pub const ESTIMATE_DRIFT: &str = "FA204";
    /// A live index is split across too many sealed segments.
    pub const OVER_FRAGMENTED: &str = "FA301";
    /// New documents contain candidate grams no sealed segment mined.
    pub const KEY_SET_DRIFT: &str = "FA302";
    /// Tombstoned documents dominate a live index's stored documents.
    pub const TOMBSTONE_DEBT: &str = "FA303";
    /// Retired segment files linger on disk, or the published snapshot
    /// trails the writer's generation.
    pub const SNAPSHOT_STALENESS: &str = "FA304";
    /// An artifact predates the checksummed format revision, so bit rot
    /// in it is undetectable (advisory, not an error).
    pub const LEGACY_FORMAT: &str = "FA400";
    /// An artifact is structurally unreadable: bad magic, truncated
    /// header, unparseable directory or log line.
    pub const STRUCTURAL_DAMAGE: &str = "FA401";
    /// Stored bytes fail their recorded CRC32.
    pub const CHECKSUM_MISMATCH: &str = "FA402";
    /// A postings list's doc ids are not strictly ascending, or point
    /// outside the corpus.
    pub const POSTINGS_ORDER: &str = "FA410";
    /// A blocked postings list's skip table disagrees with its blocks.
    pub const SKIP_TABLE: &str = "FA411";
    /// Stored metadata disagrees with decoded content: an index
    /// directory's doc count vs its payload, or a segment's sequence map
    /// vs its committed metadata (count, first/last sequence) or its
    /// sibling files.
    pub const SEQ_MAP: &str = "FA412";
    /// A tombstone references a sequence number no segment stores.
    pub const BAD_TOMBSTONE: &str = "FA413";
    /// A manifest-named segment is missing files on disk.
    pub const MISSING_SEGMENT_FILES: &str = "FA420";
    /// Segment files on disk are not named by the manifest (leaked by a
    /// crashed compaction; reopening the index removes them).
    pub const ORPHANED_FILES: &str = "FA421";
    /// The WAL epoch stamp disagrees with the manifest: the WAL's
    /// contents will be discarded on the next open.
    pub const STALE_WAL_EPOCH: &str = "FA422";
    /// A corpus store's offset table is inconsistent (non-monotonic
    /// offsets or units past end of data).
    pub const CORPUS_OFFSETS: &str = "FA423";
    /// The key directory violates the miner's prefix-free invariant
    /// (advisory: compaction's union key set legitimately does this).
    pub const PREFIX_FREE: &str = "FA424";
    /// The on-disk gram dictionary is inconsistent with the selector the
    /// manifest records (e.g. a fixed-k trigram index containing keys of
    /// another length, or a recorded selector spec that no longer
    /// parses). The index still answers correctly — the planner consults
    /// the actual key set — but rebuilds and compactions will not
    /// reproduce it, so the recorded provenance is a lie.
    pub const SELECTOR_MISMATCH: &str = "FA425";
    /// A query-log segment ends in a torn (unterminated) trailing
    /// fragment — the shape a crash mid-append leaves. Readers skip the
    /// fragment; every whole line before it is trusted (advisory).
    pub const QLOG_TORN_TAIL: &str = "FA440";
    /// A query-log segment other than the highest-numbered one is
    /// unsealed (no CRC footer): the writer crashed before rotation
    /// could seal it, so its bytes are readable but unverifiable.
    pub const QLOG_UNSEALED: &str = "FA441";
    /// Deep check: a sampled document contains an indexed gram but is
    /// missing from that gram's postings (breaks the no-false-negative
    /// guarantee).
    pub const POSTINGS_INCOMPLETE: &str = "FA430";
    /// Deep check: a postings list claims a sampled document that does
    /// not contain the gram (false positives cost time, not answers).
    pub const POSTINGS_EXTRA: &str = "FA431";
    /// Live documents are heavily imbalanced across the shards of a
    /// sharded live index (skewed deletes or an external writer).
    pub const SHARD_IMBALANCE: &str = "FA501";
    /// The sharded manifest commits a shard whose directory is missing
    /// or is not a live index.
    pub const SHARD_MISSING: &str = "FA502";
    /// `shard-K` directories exist on disk beyond the committed shard
    /// count; no query will ever consult them.
    pub const ORPHANED_SHARD: &str = "FA503";
    /// The cross-shard round-robin routing invariant is violated: some
    /// global sequence number is missing from — or would be claimed by —
    /// more than one shard. A *warning* when every excess document is
    /// still buffered in a shard WAL (the shape an interrupted parallel
    /// batch commit leaves; reopening the index truncates the
    /// unacknowledged tail), an *error* when the excess is sealed into
    /// segments and no automatic repair can run.
    pub const SHARD_ROUTING: &str = "FA504";
    /// A SCAN-class pattern recurs in the captured workload: every
    /// execution walks the whole corpus, and the repetition says it is
    /// not a one-off exploration.
    pub const HOT_SCAN_PATTERN: &str = "FA601";
    /// Aggregate candidate counts dwarf confirmed matches across the
    /// workload: the index admits far more documents than match, so
    /// confirmation dominates (weak gram selectivity).
    pub const WORKLOAD_DRIFT: &str = "FA602";
    /// One pattern accounts for the majority of slow-query records:
    /// fixing a single plan would reclaim most of the lost time.
    pub const SLOW_CONCENTRATION: &str = "FA603";
}

/// How serious a finding is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational — nothing wrong, but worth knowing.
    Info,
    /// The query will work but index usage degrades.
    Warning,
    /// The query is broken (parse error) or the engine is (unsound plan).
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One analyzer finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code from [`codes`].
    pub code: &'static str,
    /// Severity of the finding.
    pub severity: Severity,
    /// Byte range of the pattern the finding points at, when location is
    /// meaningful (plan-level findings have none).
    pub span: Option<Span>,
    /// Human-readable description of the finding.
    pub message: String,
    /// Optional actionable advice.
    pub suggestion: Option<String>,
}

impl Diagnostic {
    /// Creates a diagnostic without a suggestion.
    pub fn new(
        code: &'static str,
        severity: Severity,
        span: Option<Span>,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            code,
            severity,
            span,
            message: message.into(),
            suggestion: None,
        }
    }

    /// Attaches a suggestion.
    pub fn with_suggestion(mut self, suggestion: impl Into<String>) -> Diagnostic {
        self.suggestion = Some(suggestion.into());
        self
    }
}

/// The full analysis result for one pattern.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Report {
    /// The analyzed pattern, verbatim.
    pub pattern: String,
    /// The logical plan in `Debug` notation (`AND("a", OR("b", "c"))`),
    /// absent when the pattern did not parse.
    pub plan: Option<String>,
    /// Static cost classification, absent when the pattern did not parse.
    pub class: Option<PlanClass>,
    /// All findings, in emission order (lints, soundness, cost).
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// Whether any finding is an [`Severity::Error`].
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Findings with the given code.
    pub fn with_code(&self, code: &str) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.code == code).collect()
    }

    /// Renders the report for terminal consumption: a header, one block
    /// per diagnostic (with a caret line locating spanned findings), and
    /// the plan summary.
    pub fn render_human(&self) -> String {
        use fmt::Write;
        let mut out = String::new();
        let n = self.diagnostics.len();
        let _ = writeln!(
            out,
            "analyzing `{}`: {} finding{}",
            self.pattern,
            n,
            if n == 1 { "" } else { "s" }
        );
        for d in &self.diagnostics {
            let _ = writeln!(out, "{}[{}]: {}", d.severity, d.code, d.message);
            if let Some(span) = d.span {
                let _ = writeln!(out, "  {}", self.pattern);
                let carets = "^".repeat(span.len().max(1));
                let _ = writeln!(out, "  {}{}", " ".repeat(span.start), carets);
            }
            if let Some(s) = &d.suggestion {
                let _ = writeln!(out, "  help: {s}");
            }
        }
        if let Some(plan) = &self.plan {
            let _ = writeln!(out, "plan: {plan}");
        }
        if let Some(class) = self.class {
            let _ = writeln!(out, "class: {class}");
        }
        out
    }

    /// Renders the report as a JSON object (hand-rolled; the workspace
    /// carries no serialization dependency).
    pub fn to_json(&self) -> String {
        use fmt::Write;
        let mut out = String::new();
        out.push('{');
        let _ = write!(out, "\"pattern\":{}", json_string(&self.pattern));
        match &self.plan {
            Some(p) => {
                let _ = write!(out, ",\"plan\":{}", json_string(p));
            }
            None => out.push_str(",\"plan\":null"),
        }
        match self.class {
            Some(c) => {
                let _ = write!(out, ",\"class\":{}", json_string(&c.to_string()));
            }
            None => out.push_str(",\"class\":null"),
        }
        out.push_str(",\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&diagnostic_json(d));
        }
        out.push_str("]}");
        out
    }
}

/// Renders one diagnostic as a JSON object (the element shape of every
/// report's `"diagnostics"` array, shared with `free fsck`).
pub fn diagnostic_json(d: &Diagnostic) -> String {
    use fmt::Write;
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"code\":{},\"severity\":{}",
        json_string(d.code),
        json_string(&d.severity.to_string())
    );
    match d.span {
        Some(s) => {
            let _ = write!(out, ",\"span\":{{\"start\":{},\"end\":{}}}", s.start, s.end);
        }
        None => out.push_str(",\"span\":null"),
    }
    let _ = write!(out, ",\"message\":{}", json_string(&d.message));
    match &d.suggestion {
        Some(s) => {
            let _ = write!(out, ",\"suggestion\":{}", json_string(s));
        }
        None => out.push_str(",\"suggestion\":null"),
    }
    out.push('}');
    out
}

/// Escapes `s` as a JSON string literal, quotes included.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> Report {
        Report {
            pattern: "a*".to_string(),
            plan: Some("NULL".to_string()),
            class: Some(PlanClass::Scan),
            diagnostics: vec![Diagnostic::new(
                codes::NULL_PLAN,
                Severity::Warning,
                Some(Span::new(0, 2)),
                "the plan is NULL",
            )
            .with_suggestion("add a literal")],
        }
    }

    #[test]
    fn human_rendering_shows_code_and_caret() {
        let text = sample_report().render_human();
        assert!(text.contains("warning[FA001]"), "{text}");
        assert!(text.contains("\n  a*\n  ^^\n"), "{text}");
        assert!(text.contains("help: add a literal"), "{text}");
        assert!(text.contains("class: SCAN"), "{text}");
    }

    #[test]
    fn json_rendering_is_stable() {
        let json = sample_report().to_json();
        assert_eq!(
            json,
            "{\"pattern\":\"a*\",\"plan\":\"NULL\",\"class\":\"SCAN\",\
             \"diagnostics\":[{\"code\":\"FA001\",\"severity\":\"warning\",\
             \"span\":{\"start\":0,\"end\":2},\"message\":\"the plan is NULL\",\
             \"suggestion\":\"add a literal\"}]}"
        );
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn severity_ordering() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn has_errors_and_with_code() {
        let mut r = sample_report();
        assert!(!r.has_errors());
        assert_eq!(r.with_code(codes::NULL_PLAN).len(), 1);
        assert_eq!(r.with_code(codes::UNSOUND_GRAM).len(), 0);
        r.diagnostics.push(Diagnostic::new(
            codes::PARSE_ERROR,
            Severity::Error,
            None,
            "x",
        ));
        assert!(r.has_errors());
    }
}
