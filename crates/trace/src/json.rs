//! A minimal JSON writer.
//!
//! The workspace carries no serde; stats structs serialize themselves by
//! pushing fields into a [`JsonObject`] / [`JsonArray`] builder. Output
//! is compact (no whitespace), keys are emitted in insertion order, and
//! strings are escaped per RFC 8259 (quote, backslash, and control
//! characters).

/// Escapes `s` as the contents of a JSON string literal (no surrounding
/// quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders an `f64` as a JSON number (JSON has no NaN/Inf; those render
/// as `null`).
fn render_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `{}` on a whole f64 prints no decimal point; keep it a float.
        if s.contains('.') || s.contains('e') || s.contains('E') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_string()
    }
}

/// Builder for a JSON object. Fields render in insertion order.
#[derive(Debug, Default)]
pub struct JsonObject {
    fields: Vec<(String, String)>,
}

impl JsonObject {
    /// An empty object.
    pub fn new() -> JsonObject {
        JsonObject::default()
    }

    fn push(&mut self, key: &str, raw: String) -> &mut JsonObject {
        self.fields.push((key.to_string(), raw));
        self
    }

    /// Adds a string field.
    pub fn field_str(&mut self, key: &str, value: &str) -> &mut JsonObject {
        self.push(key, format!("\"{}\"", escape(value)))
    }

    /// Adds an unsigned integer field.
    pub fn field_u64(&mut self, key: &str, value: u64) -> &mut JsonObject {
        self.push(key, value.to_string())
    }

    /// Adds a signed integer field.
    pub fn field_i64(&mut self, key: &str, value: i64) -> &mut JsonObject {
        self.push(key, value.to_string())
    }

    /// Adds a floating-point field (`null` for NaN/Inf).
    pub fn field_f64(&mut self, key: &str, value: f64) -> &mut JsonObject {
        self.push(key, render_f64(value))
    }

    /// Adds a boolean field.
    pub fn field_bool(&mut self, key: &str, value: bool) -> &mut JsonObject {
        self.push(key, value.to_string())
    }

    /// Adds a pre-rendered JSON value (nested object, array, or `null`).
    pub fn field_raw(&mut self, key: &str, raw: String) -> &mut JsonObject {
        self.push(key, raw)
    }

    /// Renders the object.
    pub fn finish(&self) -> String {
        let mut out = String::from("{");
        for (i, (key, raw)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", escape(key), raw));
        }
        out.push('}');
        out
    }
}

/// Builder for a JSON array.
#[derive(Debug, Default)]
pub struct JsonArray {
    items: Vec<String>,
}

impl JsonArray {
    /// An empty array.
    pub fn new() -> JsonArray {
        JsonArray::default()
    }

    /// Appends a string element.
    pub fn push_str(&mut self, value: &str) -> &mut JsonArray {
        self.items.push(format!("\"{}\"", escape(value)));
        self
    }

    /// Appends an unsigned integer element.
    pub fn push_u64(&mut self, value: u64) -> &mut JsonArray {
        self.items.push(value.to_string());
        self
    }

    /// Appends a pre-rendered JSON element.
    pub fn push_raw(&mut self, raw: String) -> &mut JsonArray {
        self.items.push(raw);
        self
    }

    /// Number of elements so far.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Renders the array.
    pub fn finish(&self) -> String {
        format!("[{}]", self.items.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials_and_controls() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("line\nfeed\ttab"), "line\\nfeed\\ttab");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("héllo"), "héllo");
    }

    #[test]
    fn object_renders_in_order() {
        let mut o = JsonObject::new();
        o.field_str("name", "ab\"c")
            .field_u64("count", 7)
            .field_i64("delta", -2)
            .field_bool("ok", true)
            .field_f64("ratio", 0.5)
            .field_raw("inner", "{\"x\":1}".to_string());
        assert_eq!(
            o.finish(),
            "{\"name\":\"ab\\\"c\",\"count\":7,\"delta\":-2,\"ok\":true,\"ratio\":0.5,\"inner\":{\"x\":1}}"
        );
    }

    #[test]
    fn floats_stay_floats() {
        let mut o = JsonObject::new();
        o.field_f64("whole", 3.0).field_f64("nan", f64::NAN);
        assert_eq!(o.finish(), "{\"whole\":3.0,\"nan\":null}");
    }

    #[test]
    fn arrays_nest() {
        let mut a = JsonArray::new();
        a.push_str("x").push_u64(1);
        let mut inner = JsonObject::new();
        inner.field_bool("y", false);
        a.push_raw(inner.finish());
        assert!(!a.is_empty());
        assert_eq!(a.len(), 3);
        assert_eq!(a.finish(), "[\"x\",1,{\"y\":false}]");
    }

    #[test]
    fn empty_builders() {
        assert_eq!(JsonObject::new().finish(), "{}");
        assert_eq!(JsonArray::new().finish(), "[]");
    }
}
