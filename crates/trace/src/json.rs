//! A minimal JSON writer and reader.
//!
//! The workspace carries no serde; stats structs serialize themselves by
//! pushing fields into a [`JsonObject`] / [`JsonArray`] builder. Output
//! is compact (no whitespace), keys are emitted in insertion order, and
//! strings are escaped per RFC 8259 (quote, backslash, and control
//! characters). [`JsonValue::parse`] is the matching hand-rolled reader,
//! used by the `free serve` line-delimited JSON protocol.

/// Escapes `s` as the contents of a JSON string literal (no surrounding
/// quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders an `f64` as a JSON number (JSON has no NaN/Inf; those render
/// as `null`).
fn render_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `{}` on a whole f64 prints no decimal point; keep it a float.
        if s.contains('.') || s.contains('e') || s.contains('E') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_string()
    }
}

/// Builder for a JSON object. Fields render in insertion order.
#[derive(Debug, Default)]
pub struct JsonObject {
    fields: Vec<(String, String)>,
}

impl JsonObject {
    /// An empty object.
    pub fn new() -> JsonObject {
        JsonObject::default()
    }

    fn push(&mut self, key: &str, raw: String) -> &mut JsonObject {
        self.fields.push((key.to_string(), raw));
        self
    }

    /// Adds a string field.
    pub fn field_str(&mut self, key: &str, value: &str) -> &mut JsonObject {
        self.push(key, format!("\"{}\"", escape(value)))
    }

    /// Adds an unsigned integer field.
    pub fn field_u64(&mut self, key: &str, value: u64) -> &mut JsonObject {
        self.push(key, value.to_string())
    }

    /// Adds a signed integer field.
    pub fn field_i64(&mut self, key: &str, value: i64) -> &mut JsonObject {
        self.push(key, value.to_string())
    }

    /// Adds a floating-point field (`null` for NaN/Inf).
    pub fn field_f64(&mut self, key: &str, value: f64) -> &mut JsonObject {
        self.push(key, render_f64(value))
    }

    /// Adds a boolean field.
    pub fn field_bool(&mut self, key: &str, value: bool) -> &mut JsonObject {
        self.push(key, value.to_string())
    }

    /// Adds a pre-rendered JSON value (nested object, array, or `null`).
    pub fn field_raw(&mut self, key: &str, raw: String) -> &mut JsonObject {
        self.push(key, raw)
    }

    /// Renders the object.
    pub fn finish(&self) -> String {
        let mut out = String::from("{");
        for (i, (key, raw)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", escape(key), raw));
        }
        out.push('}');
        out
    }
}

/// Builder for a JSON array.
#[derive(Debug, Default)]
pub struct JsonArray {
    items: Vec<String>,
}

impl JsonArray {
    /// An empty array.
    pub fn new() -> JsonArray {
        JsonArray::default()
    }

    /// Appends a string element.
    pub fn push_str(&mut self, value: &str) -> &mut JsonArray {
        self.items.push(format!("\"{}\"", escape(value)));
        self
    }

    /// Appends an unsigned integer element.
    pub fn push_u64(&mut self, value: u64) -> &mut JsonArray {
        self.items.push(value.to_string());
        self
    }

    /// Appends a pre-rendered JSON element.
    pub fn push_raw(&mut self, raw: String) -> &mut JsonArray {
        self.items.push(raw);
        self
    }

    /// Number of elements so far.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Renders the array.
    pub fn finish(&self) -> String {
        format!("[{}]", self.items.join(","))
    }
}

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string, unescaped.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; keys in document order, duplicates preserved.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses one JSON document, rejecting trailing input.
    pub fn parse(input: &str) -> Result<JsonValue, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Object field lookup (first occurrence); `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as u64, if this is a non-negative whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(format!("unexpected {:?} at byte {}", b as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Bulk-copy the run of plain bytes up to the next quote or
            // escape; the input is valid UTF-8 so the slice is too.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                if b < 0x20 {
                    return Err(format!("raw control character at byte {}", self.pos));
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid UTF-8".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require a low half.
                                if self.peek() != Some(b'\\') {
                                    return Err("lone high surrogate".to_string());
                                }
                                self.pos += 1;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("bad low surrogate".to_string());
                                }
                                let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| "bad \\u escape".to_string())?);
                        }
                        b => return Err(format!("bad escape \\{}", b as char)),
                    }
                }
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| "truncated \\u escape".to_string())?;
        let s = std::str::from_utf8(slice).map_err(|_| "bad \\u escape".to_string())?;
        let v = u32::from_str_radix(s, 16).map_err(|_| "bad \\u escape".to_string())?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "bad number".to_string())?;
        s.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| format!("bad number {s:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials_and_controls() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("line\nfeed\ttab"), "line\\nfeed\\ttab");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("héllo"), "héllo");
    }

    #[test]
    fn object_renders_in_order() {
        let mut o = JsonObject::new();
        o.field_str("name", "ab\"c")
            .field_u64("count", 7)
            .field_i64("delta", -2)
            .field_bool("ok", true)
            .field_f64("ratio", 0.5)
            .field_raw("inner", "{\"x\":1}".to_string());
        assert_eq!(
            o.finish(),
            "{\"name\":\"ab\\\"c\",\"count\":7,\"delta\":-2,\"ok\":true,\"ratio\":0.5,\"inner\":{\"x\":1}}"
        );
    }

    #[test]
    fn floats_stay_floats() {
        let mut o = JsonObject::new();
        o.field_f64("whole", 3.0).field_f64("nan", f64::NAN);
        assert_eq!(o.finish(), "{\"whole\":3.0,\"nan\":null}");
    }

    #[test]
    fn arrays_nest() {
        let mut a = JsonArray::new();
        a.push_str("x").push_u64(1);
        let mut inner = JsonObject::new();
        inner.field_bool("y", false);
        a.push_raw(inner.finish());
        assert!(!a.is_empty());
        assert_eq!(a.len(), 3);
        assert_eq!(a.finish(), "[\"x\",1,{\"y\":false}]");
    }

    #[test]
    fn empty_builders() {
        assert_eq!(JsonObject::new().finish(), "{}");
        assert_eq!(JsonArray::new().finish(), "[]");
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(JsonValue::parse("null").unwrap(), JsonValue::Null);
        assert_eq!(JsonValue::parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(JsonValue::parse(" false ").unwrap(), JsonValue::Bool(false));
        assert_eq!(JsonValue::parse("42").unwrap(), JsonValue::Number(42.0));
        assert_eq!(
            JsonValue::parse("-1.5e2").unwrap(),
            JsonValue::Number(-150.0)
        );
        assert_eq!(
            JsonValue::parse("\"hi\"").unwrap(),
            JsonValue::String("hi".to_string())
        );
    }

    #[test]
    fn parses_structures() {
        let v =
            JsonValue::parse(r#"{"query":"ab.c","limit":10,"docs":true,"tags":[1,2]}"#).unwrap();
        assert_eq!(v.get("query").and_then(JsonValue::as_str), Some("ab.c"));
        assert_eq!(v.get("limit").and_then(JsonValue::as_u64), Some(10));
        assert_eq!(v.get("docs").and_then(JsonValue::as_bool), Some(true));
        assert_eq!(
            v.get("tags").and_then(JsonValue::as_array).map(<[_]>::len),
            Some(2)
        );
        assert_eq!(v.get("missing"), None);
        assert_eq!(JsonValue::parse("[]").unwrap(), JsonValue::Array(vec![]));
        assert_eq!(JsonValue::parse("{ }").unwrap(), JsonValue::Object(vec![]));
    }

    #[test]
    fn parse_unescapes_strings() {
        let v = JsonValue::parse(r#""a\"b\\c\n\t\u0041\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\n\tA\u{1F600}"));
    }

    #[test]
    fn parse_roundtrips_writer_output() {
        let mut o = JsonObject::new();
        o.field_str("name", "ab\"c\n")
            .field_u64("count", 7)
            .field_bool("ok", true);
        let v = JsonValue::parse(&o.finish()).unwrap();
        assert_eq!(v.get("name").and_then(JsonValue::as_str), Some("ab\"c\n"));
        assert_eq!(v.get("count").and_then(JsonValue::as_u64), Some(7));
        assert_eq!(v.get("ok").and_then(JsonValue::as_bool), Some(true));
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in [
            "",
            "{",
            "[1,",
            "nul",
            "\"unterminated",
            "{\"k\":}",
            "1 2",
            "{\"k\" 1}",
            "\"\\q\"",
            "\"\\ud800\"",
            "\"\\u12g4\"",
            "--3",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn as_u64_rejects_non_integers() {
        assert_eq!(JsonValue::Number(1.5).as_u64(), None);
        assert_eq!(JsonValue::Number(-1.0).as_u64(), None);
        assert_eq!(JsonValue::Number(3.0).as_u64(), Some(3));
        assert_eq!(JsonValue::String("3".into()).as_u64(), None);
    }
}
