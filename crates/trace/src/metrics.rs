//! Process-wide metrics: counters, gauges, and log2-bucketed histograms.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are clone-cheap
//! `Arc`-backed atomics, so hot paths update them without taking a lock;
//! the [`Registry`] mutex is only touched at registration and exposition
//! time. [`Registry::expose`] renders everything in Prometheus text
//! exposition format, which is what `free metrics` prints.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::Duration;

/// Number of histogram buckets: one per power of two of a `u64`.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A monotonically increasing counter.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// A fresh, unregistered counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A value that can go up and down.
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    value: Arc<AtomicI64>,
}

impl Gauge {
    /// A fresh, unregistered gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the gauge to `v`.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A histogram over `u64` observations with one bucket per power of two.
///
/// Bucket `i` counts observations whose floor-log2 is `i` (bucket 0 also
/// takes 0 and 1). Exposition renders cumulative Prometheus `_bucket`
/// lines with `le = 2^(i+1) - 1` upper bounds. Sixty-four fixed buckets
/// cover the full `u64` range — nanosecond latencies from sub-µs to
/// centuries — with ~2x relative error, which is plenty for p50/p99
/// reporting, and make `observe` a single atomic increment.
#[derive(Clone, Debug)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

#[derive(Debug)]
struct HistogramInner {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            inner: Arc::new(HistogramInner {
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                sum: AtomicU64::new(0),
                count: AtomicU64::new(0),
            }),
        }
    }
}

/// Bucket index for a value: floor(log2(v)), with 0 and 1 in bucket 0.
fn bucket_index(v: u64) -> usize {
    if v <= 1 {
        0
    } else {
        63 - v.leading_zeros() as usize
    }
}

/// Inclusive upper bound of bucket `i`: `2^(i+1) - 1`.
fn bucket_bound(i: usize) -> u64 {
    if i >= 63 {
        u64::MAX
    } else {
        (1u64 << (i + 1)) - 1
    }
}

impl Histogram {
    /// A fresh, unregistered histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one observation.
    pub fn observe(&self, v: u64) {
        self.inner.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.inner.sum.fetch_add(v, Ordering::Relaxed);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a duration, in nanoseconds.
    pub fn observe_duration(&self, d: Duration) {
        self.observe(d.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.inner.sum.load(Ordering::Relaxed)
    }

    /// Mean observed value, or 0 with no observations.
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum() as f64 / count as f64
        }
    }

    /// Approximate `q`-quantile (`0.0..=1.0`), interpolated within the
    /// bucket holding the target rank. The `r`-th of that bucket's `n`
    /// observations is placed at the midpoint of its 1/n-slice of the
    /// bucket's value range — `lo + (hi-lo)·(r-0.5)/n` — so a
    /// single-observation bucket reports its midpoint. Reporting the
    /// bucket's log2 *upper* bound (as earlier versions did)
    /// systematically over-reports by up to 2x — a p99 that truly sits
    /// at 4.2 ms lands in the [4.19, 8.39] ms bucket and was printed as
    /// 8.39 ms. Still bucket-resolution-accurate (~2x worst case), but
    /// now centered instead of biased to the bucket edge. Returns 0
    /// when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * count as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for i in 0..HISTOGRAM_BUCKETS {
            let in_bucket = self.inner.buckets[i].load(Ordering::Relaxed);
            if cumulative + in_bucket >= target {
                let lo = if i == 0 { 0 } else { bucket_bound(i - 1) + 1 };
                let hi = bucket_bound(i);
                let rank = (target - cumulative) as f64; // 1-based within bucket
                let fraction = (rank - 0.5) / in_bucket as f64;
                return lo + ((hi - lo) as f64 * fraction).round() as u64;
            }
            cumulative += in_bucket;
        }
        u64::MAX
    }

    /// Per-bucket counts (not cumulative), for custom rendering.
    pub fn buckets(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.inner.buckets[i].load(Ordering::Relaxed))
    }
}

/// A registered metric of any kind.
#[derive(Clone, Debug)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A named collection of metrics with Prometheus text exposition.
///
/// Registration is get-or-create by name, so independent call sites can
/// ask for the same metric and share the underlying atomic. A metric may
/// carry one label (`labeled_*`), giving a family of series such as
/// `free_shard_live_docs{shard="3"}` — exposition groups every series of
/// a family under one `# HELP`/`# TYPE` header, as Prometheus requires.
/// Lock poisoning is deliberately ignored (`PoisonError::into_inner`):
/// the map holds only atomics, so a panic in an unrelated thread can't
/// leave it half-updated, and observability must not amplify a crash.
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, (String, Metric)>>,
}

/// Splits a series key into its family name and label list: the key
/// `name{shard="0"}` yields `("name", "shard=\"0\"")`; an unlabeled key
/// yields an empty label list.
fn split_key(key: &str) -> (&str, &str) {
    match key.find('{') {
        Some(i) => (&key[..i], key[i + 1..].trim_end_matches('}')),
        None => (key, ""),
    }
}

impl Registry {
    /// An empty registry (tests use this; production code uses
    /// [`global`]).
    pub fn new() -> Registry {
        Registry::default()
    }

    fn get_or_insert(&self, key: String, help: &str, make: impl FnOnce() -> Metric) -> Metric {
        let mut metrics = self.metrics.lock().unwrap_or_else(PoisonError::into_inner);
        let (_, metric) = metrics
            .entry(key)
            .or_insert_with(|| (help.to_string(), make()));
        metric.clone()
    }

    /// Gets or registers a counter named `name`.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &'static str, help: &'static str) -> Counter {
        match self.get_or_insert(name.to_string(), help, || Metric::Counter(Counter::new())) {
            Metric::Counter(c) => c,
            _ => panic!("metric {name} already registered with a different kind"),
        }
    }

    /// Gets or registers a counter in family `name` labeled
    /// `{label="value"}`. The handle is clone-cheap; call sites that
    /// update per-label series on a hot path should fetch it once.
    ///
    /// # Panics
    /// Panics if the series is already registered as a different kind.
    pub fn labeled_counter(
        &self,
        name: &'static str,
        help: &'static str,
        label: &'static str,
        value: &str,
    ) -> Counter {
        let key = format!("{name}{{{label}=\"{value}\"}}");
        match self.get_or_insert(key, help, || Metric::Counter(Counter::new())) {
            Metric::Counter(c) => c,
            _ => panic!("metric {name} already registered with a different kind"),
        }
    }

    /// Gets or registers a gauge named `name`.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &'static str, help: &'static str) -> Gauge {
        match self.get_or_insert(name.to_string(), help, || Metric::Gauge(Gauge::new())) {
            Metric::Gauge(g) => g,
            _ => panic!("metric {name} already registered with a different kind"),
        }
    }

    /// Gets or registers a gauge in family `name` labeled
    /// `{label="value"}`.
    ///
    /// # Panics
    /// Panics if the series is already registered as a different kind.
    pub fn labeled_gauge(
        &self,
        name: &'static str,
        help: &'static str,
        label: &'static str,
        value: &str,
    ) -> Gauge {
        let key = format!("{name}{{{label}=\"{value}\"}}");
        match self.get_or_insert(key, help, || Metric::Gauge(Gauge::new())) {
            Metric::Gauge(g) => g,
            _ => panic!("metric {name} already registered with a different kind"),
        }
    }

    /// Gets or registers a histogram named `name`.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &'static str, help: &'static str) -> Histogram {
        match self.get_or_insert(name.to_string(), help, || {
            Metric::Histogram(Histogram::new())
        }) {
            Metric::Histogram(h) => h,
            _ => panic!("metric {name} already registered with a different kind"),
        }
    }

    /// Gets or registers a histogram in family `name` labeled
    /// `{label="value"}`.
    ///
    /// # Panics
    /// Panics if the series is already registered as a different kind.
    pub fn labeled_histogram(
        &self,
        name: &'static str,
        help: &'static str,
        label: &'static str,
        value: &str,
    ) -> Histogram {
        let key = format!("{name}{{{label}=\"{value}\"}}");
        match self.get_or_insert(key, help, || Metric::Histogram(Histogram::new())) {
            Metric::Histogram(h) => h,
            _ => panic!("metric {name} already registered with a different kind"),
        }
    }

    /// Renders every registered metric in Prometheus text exposition
    /// format, sorted by family name. Series are grouped by family
    /// *before* rendering — raw key order interleaves families when an
    /// unlabeled `name` and labeled `name{...}` coexist with a longer
    /// `name_x` (`'_'` sorts before `'{'`) — so `# HELP` and `# TYPE`
    /// are emitted exactly once per family, as strict Prometheus
    /// parsers require. Histogram buckets are cumulative, with empty
    /// buckets elided (except `+Inf`, which is always present).
    pub fn expose(&self) -> String {
        let metrics = self.metrics.lock().unwrap_or_else(PoisonError::into_inner);
        let mut families: BTreeMap<&str, Vec<(&str, &str, &Metric)>> = BTreeMap::new();
        for (key, (help, metric)) in metrics.iter() {
            let (name, labels) = split_key(key);
            families
                .entry(name)
                .or_default()
                .push((labels, help, metric));
        }
        let mut out = String::new();
        for (name, series) in families {
            // One header per family, from its first-registered series;
            // the registry's kind check keeps families homogeneous.
            let (_, help, first) = series[0];
            let kind = match first {
                Metric::Counter(_) => "counter",
                Metric::Gauge(_) => "gauge",
                Metric::Histogram(_) => "histogram",
            };
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
            for (labels, _, metric) in series {
                // The label part of one series line: `` (unlabeled),
                // `{shard="0"}`, `{le="3"}`, or `{shard="0",le="3"}`.
                let suffix = |extra: &str| -> String {
                    match (labels.is_empty(), extra.is_empty()) {
                        (true, true) => String::new(),
                        (true, false) => format!("{{{extra}}}"),
                        (false, true) => format!("{{{labels}}}"),
                        (false, false) => format!("{{{labels},{extra}}}"),
                    }
                };
                match metric {
                    Metric::Counter(c) => {
                        out.push_str(&format!("{name}{} {}\n", suffix(""), c.get()));
                    }
                    Metric::Gauge(g) => {
                        out.push_str(&format!("{name}{} {}\n", suffix(""), g.get()));
                    }
                    Metric::Histogram(h) => {
                        let buckets = h.buckets();
                        let mut cumulative = 0u64;
                        for (i, bucket) in buckets.iter().enumerate() {
                            cumulative += bucket;
                            if *bucket > 0 && i < 63 {
                                out.push_str(&format!(
                                    "{name}_bucket{} {cumulative}\n",
                                    suffix(&format!("le=\"{}\"", bucket_bound(i)))
                                ));
                            }
                        }
                        out.push_str(&format!(
                            "{name}_bucket{} {}\n{name}_sum{} {}\n{name}_count{} {}\n",
                            suffix("le=\"+Inf\""),
                            h.count(),
                            suffix(""),
                            h.sum(),
                            suffix(""),
                            h.count()
                        ));
                    }
                }
            }
        }
        out
    }
}

/// The process-wide registry every engine/build path records into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let r = Registry::new();
        let c = r.counter("reqs", "requests");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Get-or-register returns the same underlying atomic.
        assert_eq!(r.counter("reqs", "requests").get(), 5);

        let g = r.gauge("depth", "queue depth");
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn bucket_index_is_floor_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(1023), 9);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), 63);
        assert_eq!(bucket_bound(0), 1);
        assert_eq!(bucket_bound(1), 3);
        assert_eq!(bucket_bound(63), u64::MAX);
    }

    #[test]
    fn histogram_quantiles_interpolate_within_buckets() {
        let h = Histogram::new();
        for v in [1u64, 2, 2, 100, 100, 100, 100, 5000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.sum(), 5405);
        // p50 of 8 obs -> 4th observation -> 1st of 4 in the [64, 127]
        // bucket -> 64 + 63 * 0.5/4 = 71.875 -> 72 (not the old 127).
        assert_eq!(h.quantile(0.5), 72);
        // p100 -> sole observation of [4096, 8191] -> its midpoint,
        // 6144 (not the old upper bound 8191).
        assert_eq!(h.quantile(1.0), 6144);
        // p0 clamps to rank 1: midpoint of [0, 1] rounds up to 1.
        assert_eq!(h.quantile(0.0), 1);
        assert!((h.mean() - 5405.0 / 8.0).abs() < 1e-9);
    }

    #[test]
    fn interpolated_quantiles_are_monotone_and_bucket_bounded() {
        let h = Histogram::new();
        for v in [3u64, 9, 17, 60, 200, 900, 5000, 70000] {
            h.observe(v);
        }
        let mut prev = 0;
        for step in 0..=20 {
            let q = f64::from(step) / 20.0;
            let v = h.quantile(q);
            assert!(v >= prev, "quantile({q}) = {v} < {prev}");
            prev = v;
        }
        // Each rank's estimate stays inside its observation's bucket.
        let p100 = h.quantile(1.0);
        assert!((65536..=131071).contains(&p100), "{p100}");
        let p0 = h.quantile(0.0);
        assert!(p0 <= 3, "{p0}");
    }

    #[test]
    fn empty_histogram_is_quiet() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn expose_renders_prometheus_text() {
        let r = Registry::new();
        r.counter("free_queries_total", "queries run").add(3);
        r.gauge("free_index_keys", "keys in index").set(12);
        let h = r.histogram("free_query_ns", "query latency");
        h.observe(5);
        h.observe(900);
        let text = r.expose();
        assert!(text.contains("# TYPE free_queries_total counter\nfree_queries_total 3\n"));
        assert!(text.contains("# TYPE free_index_keys gauge\nfree_index_keys 12\n"));
        assert!(text.contains("# TYPE free_query_ns histogram\n"));
        assert!(text.contains("free_query_ns_bucket{le=\"7\"} 1\n"));
        assert!(text.contains("free_query_ns_bucket{le=\"1023\"} 2\n"));
        assert!(text.contains("free_query_ns_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("free_query_ns_sum 905\n"));
        assert!(text.contains("free_query_ns_count 2\n"));
        // Sorted by name: counter < gauge < histogram alphabetically here.
        let ik = text.find("free_index_keys").unwrap();
        let qt = text.find("free_queries_total").unwrap();
        assert!(ik < qt);
    }

    #[test]
    fn observe_duration_records_nanos() {
        let h = Histogram::new();
        h.observe_duration(Duration::from_micros(3));
        assert_eq!(h.sum(), 3000);
    }

    #[test]
    fn concurrent_observations_do_not_lose_counts() {
        let h = Histogram::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..1000u64 {
                        h.observe(i);
                    }
                });
            }
        });
        assert_eq!(h.count(), 4000);
    }

    #[test]
    fn labeled_series_share_one_family_header() {
        let r = Registry::new();
        r.labeled_counter("free_shard_docs_total", "docs per shard", "shard", "0")
            .add(2);
        r.labeled_counter("free_shard_docs_total", "docs per shard", "shard", "1")
            .add(5);
        // Same (name, label) returns the same underlying atomic.
        assert_eq!(
            r.labeled_counter("free_shard_docs_total", "docs per shard", "shard", "0")
                .get(),
            2
        );
        let text = r.expose();
        assert_eq!(
            text.matches("# TYPE free_shard_docs_total counter").count(),
            1
        );
        assert!(text.contains("free_shard_docs_total{shard=\"0\"} 2\n"));
        assert!(text.contains("free_shard_docs_total{shard=\"1\"} 5\n"));
    }

    #[test]
    fn interleaving_family_names_keep_one_header_each() {
        // `fam_x` sorts between the raw keys `fam` ('_' < '{') and
        // `fam{...}`; grouping by family must still emit exactly one
        // HELP/TYPE pair per family, with every series under it.
        let r = Registry::new();
        r.counter("fam", "base family").inc();
        r.labeled_counter("fam", "base family", "shard", "0").add(3);
        r.counter("fam_x", "interloper family").add(7);
        let text = r.expose();
        assert_eq!(
            text.matches("# HELP fam base family\n").count(),
            1,
            "{text}"
        );
        assert_eq!(text.matches("# TYPE fam counter\n").count(), 1, "{text}");
        assert_eq!(text.matches("# TYPE fam_x counter\n").count(), 1, "{text}");
        // All of `fam`'s series sit contiguously under its header.
        let fam = text.find("# TYPE fam counter\n").unwrap();
        let fam_x = text.find("# HELP fam_x").unwrap();
        let block = &text[fam..fam_x];
        assert!(block.contains("\nfam 1\n"), "{text}");
        assert!(block.contains("\nfam{shard=\"0\"} 3\n"), "{text}");
        assert!(text[fam_x..].contains("fam_x 7\n"), "{text}");
    }

    #[test]
    fn labeled_histogram_merges_labels_with_le() {
        let r = Registry::new();
        let h = r.labeled_histogram("free_shard_ns", "latency per shard", "shard", "3");
        h.observe(5);
        r.labeled_gauge("free_shard_ns_gauge", "unrelated", "shard", "3")
            .set(1);
        let text = r.expose();
        assert!(text.contains("free_shard_ns_bucket{shard=\"3\",le=\"7\"} 1\n"));
        assert!(text.contains("free_shard_ns_bucket{shard=\"3\",le=\"+Inf\"} 1\n"));
        assert!(text.contains("free_shard_ns_sum{shard=\"3\"} 5\n"));
        assert!(text.contains("free_shard_ns_count{shard=\"3\"} 1\n"));
    }

    #[test]
    fn split_key_handles_labels() {
        assert_eq!(split_key("plain"), ("plain", ""));
        assert_eq!(split_key("fam{shard=\"2\"}"), ("fam", "shard=\"2\""));
    }

    #[test]
    fn global_registry_is_shared() {
        let c = global().counter("free_trace_test_global", "test only");
        c.inc();
        assert!(global().expose().contains("free_trace_test_global"));
    }
}
