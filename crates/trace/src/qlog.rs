//! Durable, crash-safe query log: size-rotated JSONL segments with
//! CRC32-sealed footers, written off the query path by a bounded-queue
//! background thread.
//!
//! The in-memory metrics registry and trace ring buffer die with the
//! process; this module is the persistent record of what the engine was
//! asked and how it answered — the substrate for `free log`, `free
//! replay`, and workload-aware gram selection (ROADMAP item 3).
//!
//! # Write path
//!
//! [`LogWriter`] owns a background thread and a bounded
//! [`std::sync::mpsc::sync_channel`]. [`LogWriter::emit`] is
//! **non-blocking**: if the queue is full the record is dropped and the
//! `free_qlog_dropped_total` counter is bumped — the query hot path is
//! never back-pressured by disk. Records that reach the thread are
//! appended to the current segment and counted in
//! `free_qlog_records_total` (persisted records only, so the two
//! counters partition `emit` calls exactly).
//!
//! # On-disk format
//!
//! A log directory holds segments `qlog-NNNNNN.jsonl`, numbered by a
//! never-reused ascending sequence (a reopened writer starts after the
//! highest existing segment; it never appends to one). Each segment is
//! newline-delimited JSON records. When a segment reaches the rotation
//! size — or the writer closes cleanly — it is *sealed* with one footer
//! line:
//!
//! ```text
//! #FREEQLOG1 crc=xxxxxxxx records=N
//! ```
//!
//! where `crc` is the CRC32 (`free-checksum`, same discipline as the
//! PR 6 index footers) of every byte preceding the footer line and `N`
//! the record count. Invariants readers rely on:
//!
//! * a sealed segment's bytes are exactly as written (CRC-verified);
//! * only the highest-numbered segment may be unsealed (a crash leaves
//!   at most one unsealed tail);
//! * in an unsealed tail, every complete (newline-terminated) line is a
//!   whole record — a crash can only tear the final, unterminated line,
//!   which readers skip.
//!
//! `free fsck` checks all three; [`read_dir`] classifies each segment so
//! `free log` / `free replay` consume only trustworthy records.
//!
//! # Global slot
//!
//! Emission points (engine, live index, server) reach the writer through
//! a process-wide slot ([`install`] / [`emit`] / [`shutdown`]). When no
//! writer is installed, [`enabled`] is a single relaxed atomic load —
//! the disabled cost the `trace_overhead` guard holds to <5%. The slot
//! also carries the process-wide slow-query threshold
//! ([`set_slow_threshold_ns`]) consulted by the engine's flight
//! recorder.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::thread::JoinHandle;

use crate::metrics::Counter;

/// Segment file name prefix (`qlog-000001.jsonl`).
pub const SEGMENT_PREFIX: &str = "qlog-";
/// Segment file name suffix.
pub const SEGMENT_SUFFIX: &str = ".jsonl";
/// First token of a segment's sealing footer line.
pub const FOOTER_PREFIX: &str = "#FREEQLOG1";

/// Default rotation threshold: seal a segment once it holds this many
/// record bytes. Small enough that a steady workload produces several
/// segments per run, large enough that the footer overhead is noise.
pub const DEFAULT_ROTATE_BYTES: u64 = 4 * 1024 * 1024;
/// Default bounded-queue depth between `emit` and the writer thread.
pub const DEFAULT_QUEUE_CAPACITY: usize = 1024;

/// Tunables for a [`LogWriter`].
#[derive(Clone, Debug)]
pub struct LogConfig {
    /// Seal and rotate a segment once its record bytes reach this size.
    pub rotate_bytes: u64,
    /// Bounded-queue depth; `emit` drops (and counts) when it is full.
    pub queue_capacity: usize,
}

impl Default for LogConfig {
    fn default() -> LogConfig {
        LogConfig {
            rotate_bytes: DEFAULT_ROTATE_BYTES,
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
        }
    }
}

enum Msg {
    Record(String),
    /// Flush buffered bytes to the OS and acknowledge.
    Sync(SyncSender<()>),
}

/// Handle to the background query-log writer. Clone-free; shared via
/// `Arc` by the global slot. Dropping (or [`close`](LogWriter::close))
/// drains the queue, seals the current segment, and joins the thread.
pub struct LogWriter {
    dir: PathBuf,
    tx: Mutex<Option<SyncSender<Msg>>>,
    handle: Mutex<Option<JoinHandle<()>>>,
    dropped: Counter,
}

impl std::fmt::Debug for LogWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogWriter").field("dir", &self.dir).finish()
    }
}

impl LogWriter {
    /// Opens (creating if needed) a log directory with default tunables.
    pub fn create(dir: &Path) -> std::io::Result<LogWriter> {
        LogWriter::with_config(dir, LogConfig::default())
    }

    /// Opens (creating if needed) a log directory. Existing segments are
    /// left untouched — including a crashed predecessor's unsealed tail —
    /// and writing starts in a fresh segment numbered after the highest
    /// present.
    pub fn with_config(dir: &Path, config: LogConfig) -> std::io::Result<LogWriter> {
        std::fs::create_dir_all(dir)?;
        let start_seq = next_seq(dir)?;
        let registry = crate::metrics::global();
        let records = registry.counter("free_qlog_records_total", "query-log records persisted");
        let dropped = registry.counter(
            "free_qlog_dropped_total",
            "query-log records dropped (queue full or writer closed)",
        );
        let io_errors = registry.counter(
            "free_qlog_io_errors_total",
            "query-log segment write failures",
        );
        let (tx, rx) = sync_channel(config.queue_capacity.max(1));
        let thread_dir = dir.to_path_buf();
        let handle = std::thread::Builder::new()
            .name("free-qlog".to_string())
            .spawn(move || {
                writer_thread(&thread_dir, start_seq, &config, &rx, &records, &io_errors);
            })?;
        Ok(LogWriter {
            dir: dir.to_path_buf(),
            tx: Mutex::new(Some(tx)),
            handle: Mutex::new(Some(handle)),
            dropped,
        })
    }

    /// The directory this writer appends to.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Enqueues one record (a single JSON object, no embedded newline).
    /// Never blocks: a full queue or closed writer drops the record and
    /// bumps `free_qlog_dropped_total`.
    pub fn emit(&self, line: String) {
        let tx = self.tx.lock().unwrap_or_else(PoisonError::into_inner);
        match tx.as_ref().map(|tx| tx.try_send(Msg::Record(line))) {
            Some(Ok(())) => {}
            Some(Err(TrySendError::Full(_) | TrySendError::Disconnected(_))) | None => {
                self.dropped.inc();
            }
        }
    }

    /// Blocks until every record enqueued so far is written and flushed
    /// to the OS. For tests and pre-read synchronization only — the
    /// query path never calls this.
    pub fn flush(&self) {
        let tx = {
            let guard = self.tx.lock().unwrap_or_else(PoisonError::into_inner);
            guard.clone()
        };
        let Some(tx) = tx else { return };
        let (ack_tx, ack_rx) = sync_channel(1);
        // Blocking send is fine here: flush is off the hot path and the
        // writer thread is guaranteed to be draining while `tx` lives.
        if tx.send(Msg::Sync(ack_tx)).is_ok() {
            let _ = ack_rx.recv();
        }
    }

    /// Drains the queue, seals the current segment, and stops the
    /// writer thread. Idempotent; also runs on drop.
    pub fn close(&self) {
        let tx = self
            .tx
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();
        drop(tx);
        let handle = self
            .handle
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }
}

impl Drop for LogWriter {
    fn drop(&mut self) {
        self.close();
    }
}

/// The background writer: owns the current segment, rotates on size,
/// seals on rotation and on clean shutdown. Write failures are counted,
/// never surfaced — observability must not take the engine down.
fn writer_thread(
    dir: &Path,
    start_seq: u64,
    config: &LogConfig,
    rx: &Receiver<Msg>,
    records: &Counter,
    io_errors: &Counter,
) {
    let mut seg = Segment::open(dir, start_seq, io_errors);
    loop {
        // Block for the next message, then drain opportunistically so a
        // burst is written in one buffered pass before flushing.
        let first = match rx.recv() {
            Ok(msg) => msg,
            Err(_) => break,
        };
        let mut pending = Some(first);
        while let Some(msg) = pending.take() {
            match msg {
                Msg::Record(line) => {
                    seg.append(&line, records, io_errors);
                    if seg.bytes >= config.rotate_bytes {
                        seg.seal(io_errors);
                        seg = Segment::open(dir, seg.seq + 1, io_errors);
                    }
                }
                Msg::Sync(ack) => {
                    seg.flush(io_errors);
                    let _ = ack.try_send(());
                }
            }
            pending = rx.try_recv().ok();
        }
        // Queue momentarily empty: push buffered bytes to the OS so a
        // crash (or an impatient reader) loses at most the last burst.
        seg.flush(io_errors);
    }
    seg.seal(io_errors);
}

/// One open segment on the writer side.
struct Segment {
    seq: u64,
    out: Option<BufWriter<File>>,
    crc: free_checksum::Crc32,
    bytes: u64,
    records: u64,
}

impl Segment {
    fn open(dir: &Path, seq: u64, io_errors: &Counter) -> Segment {
        let path = segment_path(dir, seq);
        let out = OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)
            .map(BufWriter::new);
        let out = match out {
            Ok(out) => Some(out),
            Err(_) => {
                io_errors.inc();
                None
            }
        };
        Segment {
            seq,
            out,
            crc: free_checksum::Crc32::new(),
            bytes: 0,
            records: 0,
        }
    }

    fn append(&mut self, line: &str, records: &Counter, io_errors: &Counter) {
        let Some(out) = self.out.as_mut() else {
            io_errors.inc();
            return;
        };
        if out
            .write_all(line.as_bytes())
            .and_then(|()| out.write_all(b"\n"))
            .is_err()
        {
            io_errors.inc();
            return;
        }
        self.crc.update(line.as_bytes());
        self.crc.update(b"\n");
        self.bytes += line.len() as u64 + 1;
        self.records += 1;
        records.inc();
    }

    fn flush(&mut self, io_errors: &Counter) {
        if let Some(out) = self.out.as_mut() {
            if out.flush().is_err() {
                io_errors.inc();
            }
        }
    }

    fn seal(&mut self, io_errors: &Counter) {
        let Some(mut out) = self.out.take() else {
            return;
        };
        let footer = format!(
            "{FOOTER_PREFIX} crc={:08x} records={}\n",
            self.crc.clone().finish(),
            self.records
        );
        if out
            .write_all(footer.as_bytes())
            .and_then(|()| out.flush())
            .is_err()
        {
            io_errors.inc();
        }
    }
}

/// Path of segment `seq` inside `dir`.
pub fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("{SEGMENT_PREFIX}{seq:06}{SEGMENT_SUFFIX}"))
}

/// Parses a segment sequence number out of a file name, if it is one.
pub fn segment_seq(name: &str) -> Option<u64> {
    let digits = name
        .strip_prefix(SEGMENT_PREFIX)?
        .strip_suffix(SEGMENT_SUFFIX)?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Whether `dir` looks like a query-log directory (holds ≥1 segment).
pub fn is_log_dir(dir: &Path) -> bool {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return false;
    };
    for entry in entries.flatten() {
        if segment_seq(&entry.file_name().to_string_lossy()).is_some() {
            return true;
        }
    }
    false
}

fn next_seq(dir: &Path) -> std::io::Result<u64> {
    let mut max = 0u64;
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(seq) = segment_seq(&entry.file_name().to_string_lossy()) {
            max = max.max(seq);
        }
    }
    Ok(max + 1)
}

/// Why a read segment's records are (or are not) trustworthy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SegmentStatus {
    /// Footer present, CRC and record count verified.
    Sealed,
    /// No footer: the writer crashed (or is still running). Complete
    /// lines are whole records; `torn_bytes` counts a trailing
    /// unterminated fragment, which has been skipped.
    Unsealed {
        /// Bytes of the torn trailing fragment (0 if none).
        torn_bytes: u64,
    },
    /// Footer present but the segment does not verify; records are not
    /// to be trusted.
    Corrupt {
        /// What failed: checksum mismatch or structural damage.
        detail: String,
    },
}

/// One segment as read back from disk.
#[derive(Clone, Debug)]
pub struct ReadSegment {
    /// Absolute path of the segment file.
    pub path: PathBuf,
    /// Sequence number from the file name.
    pub seq: u64,
    /// Raw record lines (no trailing newline), in write order. Present
    /// even for `Corrupt` segments — callers decide via
    /// [`trusted_records`](ReadSegment::trusted_records).
    pub records: Vec<String>,
    /// Verification outcome.
    pub status: SegmentStatus,
}

impl ReadSegment {
    /// Records safe to act on: all of them for sealed segments, the
    /// complete lines for an unsealed tail, none for a corrupt segment.
    pub fn trusted_records(&self) -> &[String] {
        match self.status {
            SegmentStatus::Sealed | SegmentStatus::Unsealed { .. } => &self.records,
            SegmentStatus::Corrupt { .. } => &[],
        }
    }
}

/// Reads one segment file and verifies its footer discipline.
pub fn read_segment(path: &Path) -> std::io::Result<ReadSegment> {
    let seq = path
        .file_name()
        .and_then(|n| segment_seq(&n.to_string_lossy()))
        .ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("{} is not a query-log segment name", path.display()),
            )
        })?;
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;

    // Locate a footer: the last complete line, if it starts with the
    // footer magic. An unterminated footer is torn — treat the segment
    // as unsealed and the fragment as the torn tail.
    let mut records = Vec::new();
    let mut status = None;
    let mut line_start = 0usize;
    let mut torn_bytes = 0u64;
    let mut crc_before_footer = free_checksum::Crc32::new();
    let mut offset = 0usize;
    while offset < bytes.len() {
        match bytes[offset..].iter().position(|&b| b == b'\n') {
            Some(rel) => {
                let line = &bytes[line_start..offset + rel];
                let is_last_line = offset + rel + 1 >= bytes.len();
                if line.starts_with(FOOTER_PREFIX.as_bytes()) {
                    let line = String::from_utf8_lossy(line).into_owned();
                    if !is_last_line {
                        status = Some(SegmentStatus::Corrupt {
                            detail: "footer line is not the final line".to_string(),
                        });
                        break;
                    }
                    status = Some(verify_footer(&line, &crc_before_footer, records.len()));
                } else {
                    crc_before_footer.update(line);
                    crc_before_footer.update(b"\n");
                    records.push(String::from_utf8_lossy(line).into_owned());
                }
                offset += rel + 1;
                line_start = offset;
            }
            None => {
                // Unterminated final fragment: torn by a crash.
                torn_bytes = (bytes.len() - line_start) as u64;
                break;
            }
        }
    }
    let status = status.unwrap_or(SegmentStatus::Unsealed { torn_bytes });
    Ok(ReadSegment {
        path: path.to_path_buf(),
        seq,
        records,
        status,
    })
}

fn verify_footer(line: &str, crc: &free_checksum::Crc32, records: usize) -> SegmentStatus {
    let mut want_crc = None;
    let mut want_records = None;
    for token in line.split_whitespace().skip(1) {
        if let Some(hex) = token.strip_prefix("crc=") {
            want_crc = u32::from_str_radix(hex, 16).ok();
        } else if let Some(n) = token.strip_prefix("records=") {
            want_records = n.parse::<u64>().ok();
        }
    }
    let (Some(want_crc), Some(want_records)) = (want_crc, want_records) else {
        return SegmentStatus::Corrupt {
            detail: "footer line does not parse".to_string(),
        };
    };
    let got_crc = crc.clone().finish();
    if got_crc != want_crc {
        return SegmentStatus::Corrupt {
            detail: format!("checksum mismatch: footer {want_crc:08x}, computed {got_crc:08x}"),
        };
    }
    if want_records != records as u64 {
        return SegmentStatus::Corrupt {
            detail: format!("footer records={want_records}, found {records}"),
        };
    }
    SegmentStatus::Sealed
}

/// Reads every segment in `dir`, ascending by sequence number. Errors
/// only when the directory itself is unreadable; per-segment damage is
/// reported in each segment's [`SegmentStatus`].
pub fn read_dir(dir: &Path) -> std::io::Result<Vec<ReadSegment>> {
    let mut seqs = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(seq) = segment_seq(&entry.file_name().to_string_lossy()) {
            seqs.push((seq, entry.path()));
        }
    }
    seqs.sort();
    let mut out = Vec::with_capacity(seqs.len());
    for (_, path) in seqs {
        out.push(read_segment(&path)?);
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Process-wide slot
// ---------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);
/// Slow-query threshold in ns; `u64::MAX` means the flight recorder is
/// off. Plain atomic so the engine's Drop hook reads it lock-free.
static SLOW_THRESHOLD_NS: AtomicU64 = AtomicU64::new(u64::MAX);

fn slot() -> &'static Mutex<Option<Arc<LogWriter>>> {
    static SLOT: OnceLock<Mutex<Option<Arc<LogWriter>>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

/// Installs `writer` as the process-wide query log, replacing (and
/// closing) any previous one.
pub fn install(writer: LogWriter) {
    let previous = slot()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .replace(Arc::new(writer));
    ENABLED.store(true, Ordering::Release);
    drop(previous);
}

/// Whether a process-wide writer is installed. One relaxed atomic load —
/// the entire disabled-path cost of query logging.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Emits one record through the process-wide writer; no-op when none is
/// installed. Non-blocking (see [`LogWriter::emit`]).
pub fn emit(line: String) {
    if !enabled() {
        return;
    }
    let writer = slot()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone();
    if let Some(writer) = writer {
        writer.emit(line);
    }
}

/// Blocks until the process-wide writer has flushed everything emitted
/// so far (no-op when none is installed).
pub fn flush() {
    let writer = slot()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone();
    if let Some(writer) = writer {
        writer.flush();
    }
}

/// Uninstalls and closes the process-wide writer, sealing its current
/// segment. Call before process exit for a cleanly sealed log.
pub fn shutdown() {
    let writer = slot().lock().unwrap_or_else(PoisonError::into_inner).take();
    ENABLED.store(false, Ordering::Release);
    if let Some(writer) = writer {
        writer.close();
    }
}

/// Sets the process-wide slow-query threshold; `None` disables the
/// flight recorder.
pub fn set_slow_threshold_ns(ns: Option<u64>) {
    SLOW_THRESHOLD_NS.store(ns.unwrap_or(u64::MAX), Ordering::Relaxed);
}

/// Current slow-query threshold in nanoseconds (`u64::MAX` = off).
pub fn slow_threshold_ns() -> u64 {
    SLOW_THRESHOLD_NS.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "free-qlog-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn writes_seals_and_reads_back() {
        let dir = temp_dir("basic");
        let w = LogWriter::create(&dir).expect("create");
        for i in 0..10 {
            w.emit(format!("{{\"i\":{i}}}"));
        }
        w.close();
        let segs = read_dir(&dir).expect("read");
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].seq, 1);
        assert_eq!(segs[0].status, SegmentStatus::Sealed);
        assert_eq!(segs[0].records.len(), 10);
        assert_eq!(segs[0].records[3], "{\"i\":3}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotates_at_size_and_reopens_after_highest() {
        let dir = temp_dir("rotate");
        let cfg = LogConfig {
            rotate_bytes: 64,
            queue_capacity: 8,
        };
        let w = LogWriter::with_config(&dir, cfg.clone()).expect("create");
        for i in 0..20 {
            w.emit(format!("{{\"i\":{i},\"pad\":\"xxxxxxxxxxxxxxxx\"}}"));
            w.flush(); // keep the queue drained so nothing drops
        }
        w.close();
        let segs = read_dir(&dir).expect("read");
        assert!(segs.len() > 1, "expected rotation, got {} segs", segs.len());
        assert!(segs.iter().all(|s| s.status == SegmentStatus::Sealed));
        let total: usize = segs.iter().map(|s| s.records.len()).sum();
        assert_eq!(total, 20);
        // Reopen: starts after the highest existing sequence.
        let w = LogWriter::with_config(&dir, cfg).expect("reopen");
        w.emit("{\"i\":99}".to_string());
        w.close();
        let reread = read_dir(&dir).expect("reread");
        assert_eq!(reread.len(), segs.len() + 1);
        assert_eq!(reread.last().expect("segs").records, vec!["{\"i\":99}"]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_skipped_and_counted() {
        let dir = temp_dir("torn");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = segment_path(&dir, 1);
        std::fs::write(&path, b"{\"i\":0}\n{\"i\":1}\n{\"i\":2,\"tr").expect("write");
        let seg = read_segment(&path).expect("read");
        assert_eq!(seg.status, SegmentStatus::Unsealed { torn_bytes: 10 });
        assert_eq!(seg.trusted_records().len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_sealed_segment_is_untrusted() {
        let dir = temp_dir("corrupt");
        let w = LogWriter::create(&dir).expect("create");
        w.emit("{\"i\":0}".to_string());
        w.close();
        let path = segment_path(&dir, 1);
        let mut bytes = std::fs::read(&path).expect("read");
        bytes[2] ^= 0x40; // flip a record bit under the sealed CRC
        std::fs::write(&path, &bytes).expect("rewrite");
        let seg = read_segment(&path).expect("reread");
        assert!(
            matches!(&seg.status, SegmentStatus::Corrupt { detail } if detail.contains("checksum")),
            "{:?}",
            seg.status
        );
        assert!(seg.trusted_records().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn segment_names_round_trip() {
        assert_eq!(segment_seq("qlog-000042.jsonl"), Some(42));
        assert_eq!(segment_seq("qlog-.jsonl"), None);
        assert_eq!(segment_seq("qlog-12x.jsonl"), None);
        assert_eq!(segment_seq("wal-000001.jsonl"), None);
        let p = segment_path(Path::new("/tmp/x"), 7);
        assert_eq!(
            segment_seq(&p.file_name().expect("name").to_string_lossy()),
            Some(7)
        );
    }

    #[test]
    fn emit_never_blocks_when_queue_is_full() {
        let dir = temp_dir("full");
        let w = LogWriter::with_config(
            &dir,
            LogConfig {
                rotate_bytes: u64::MAX,
                queue_capacity: 1,
            },
        )
        .expect("create");
        // Flood far past the queue depth; emit must return promptly
        // every time (a deadlock here would hang the test).
        for i in 0..10_000 {
            w.emit(format!("{{\"i\":{i}}}"));
        }
        w.close();
        let segs = read_dir(&dir).expect("read");
        let persisted: usize = segs.iter().map(|s| s.records.len()).sum();
        assert!(persisted <= 10_000);
        assert!(persisted >= 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
