//! Spans, events, and the bounded trace collector.
//!
//! The model is deliberately small: a [`Tracer`] is a clone-cheap handle
//! to a collector (or to nothing, when disabled); a [`Span`] marks a
//! timed region and can carry typed attributes recorded at close; an
//! [`Event`] is what lands in the collector's ring buffer. Spans nest
//! explicitly — [`Span::child`] — rather than through thread-local
//! ambient state, so the model stays correct when confirmation fans out
//! to a worker pool.
//!
//! # Cost model
//!
//! * **Disabled** (`Tracer::disabled()`, the default everywhere): every
//!   operation is a branch on an `Option` that is `None`. No clock is
//!   read, nothing allocates. This is what ships on the hot query path.
//! * **Enabled**: each span close or event takes one `Instant::now()`
//!   plus a short mutex-protected push into the ring buffer. The buffer
//!   is bounded ([`DEFAULT_CAPACITY`] events by default): when full, the
//!   oldest event is dropped and a drop counter incremented, so a
//!   long-running process can keep a tracer attached without unbounded
//!   memory growth.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Default ring-buffer capacity, in events. Sized so a traced query
/// (tens of events) and a traced build (one event per mining pass) fit
/// with plenty of headroom, while bounding a tracer left attached to a
/// long-lived process to a few hundred kilobytes.
pub const DEFAULT_CAPACITY: usize = 4096;

/// A typed attribute value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// Text.
    Str(String),
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::U64(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::U64(v as u64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::U64(u64::from(v))
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::F64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}
impl From<Duration> for Value {
    fn from(v: Duration) -> Value {
        Value::U64(v.as_nanos().min(u128::from(u64::MAX)) as u64)
    }
}

impl core::fmt::Display for Value {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Value::U64(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v}"),
        }
    }
}

/// What kind of record an [`Event`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened.
    SpanStart,
    /// A span closed; carries its wall-clock duration in nanoseconds.
    SpanEnd {
        /// Time between the span's open and close.
        elapsed_ns: u64,
    },
    /// A point-in-time event within a span (or at the root).
    Instant,
}

/// One record in the trace buffer.
#[derive(Clone, Debug)]
pub struct Event {
    /// Nanoseconds since the tracer was created.
    pub at_ns: u64,
    /// Id of the span this event belongs to (`0` for root-level events).
    pub span_id: u64,
    /// Id of the enclosing span (`0` when at the root).
    pub parent_id: u64,
    /// Record kind.
    pub kind: EventKind,
    /// Static name of the span or event.
    pub name: &'static str,
    /// Typed attributes, in recording order.
    pub attrs: Vec<(&'static str, Value)>,
}

impl Event {
    /// Looks up an attribute by key.
    pub fn attr(&self, key: &str) -> Option<&Value> {
        self.attrs.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }
}

/// Bounded event storage: oldest events are dropped when full.
struct Ring {
    events: std::collections::VecDeque<Event>,
    capacity: usize,
    dropped: u64,
}

impl Ring {
    fn push(&mut self, event: Event) {
        if self.events.len() >= self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }
}

/// Live event callback, invoked (outside the ring lock) for every event
/// as it is recorded — this is how `free build --verbose` streams
/// per-pass progress lines while the build is still running.
pub type Sink = Arc<dyn Fn(&Event) + Send + Sync>;

struct Collector {
    epoch: Instant,
    ring: Mutex<Ring>,
    next_id: AtomicU64,
    sink: Option<Sink>,
}

/// A clone-cheap handle to a trace collector; `Tracer::disabled()` (the
/// `Default`) carries nothing and makes every operation a no-op.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<Collector>>,
}

impl core::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match &self.inner {
            Some(c) => write!(
                f,
                "Tracer(enabled, {} events)",
                c.ring.lock().map(|r| r.events.len()).unwrap_or(0)
            ),
            None => write!(f, "Tracer(disabled)"),
        }
    }
}

impl Tracer {
    /// The no-op tracer: all hooks reduce to an `Option` check.
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    /// An enabled tracer with the default ring capacity.
    pub fn enabled() -> Tracer {
        Tracer::with_capacity(DEFAULT_CAPACITY)
    }

    /// An enabled tracer whose ring buffer holds up to `capacity` events.
    pub fn with_capacity(capacity: usize) -> Tracer {
        Tracer::build(capacity, None)
    }

    /// An enabled tracer that also forwards every event to `sink` as it
    /// is recorded (for live progress reporting).
    pub fn with_sink(capacity: usize, sink: Sink) -> Tracer {
        Tracer::build(capacity, Some(sink))
    }

    fn build(capacity: usize, sink: Option<Sink>) -> Tracer {
        Tracer {
            inner: Some(Arc::new(Collector {
                epoch: Instant::now(),
                ring: Mutex::new(Ring {
                    events: std::collections::VecDeque::with_capacity(capacity.min(1024)),
                    capacity: capacity.max(1),
                    dropped: 0,
                }),
                next_id: AtomicU64::new(1),
                sink,
            })),
        }
    }

    /// Whether events are being collected.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a root span. On a disabled tracer this allocates nothing
    /// and reads no clock.
    pub fn span(&self, name: &'static str) -> Span {
        self.open_span(name, 0)
    }

    fn open_span(&self, name: &'static str, parent_id: u64) -> Span {
        let Some(collector) = &self.inner else {
            return Span {
                tracer: Tracer::disabled(),
                id: 0,
                parent_id: 0,
                name,
                start: None,
                attrs: Vec::new(),
            };
        };
        let id = collector.next_id.fetch_add(1, Ordering::Relaxed);
        let start = Instant::now();
        self.record(Event {
            at_ns: duration_ns(start - collector.epoch),
            span_id: id,
            parent_id,
            kind: EventKind::SpanStart,
            name,
            attrs: Vec::new(),
        });
        Span {
            tracer: self.clone(),
            id,
            parent_id,
            name,
            start: Some(start),
            attrs: Vec::new(),
        }
    }

    /// Records a root-level instant event.
    pub fn event(&self, name: &'static str, attrs: Vec<(&'static str, Value)>) {
        self.instant(name, 0, 0, attrs);
    }

    fn instant(
        &self,
        name: &'static str,
        span_id: u64,
        parent_id: u64,
        attrs: Vec<(&'static str, Value)>,
    ) {
        let Some(collector) = &self.inner else {
            return;
        };
        self.record(Event {
            at_ns: duration_ns(collector.epoch.elapsed()),
            span_id,
            parent_id,
            kind: EventKind::Instant,
            name,
            attrs,
        });
    }

    fn record(&self, event: Event) {
        let Some(collector) = &self.inner else {
            return;
        };
        if let Some(sink) = &collector.sink {
            sink(&event);
        }
        if let Ok(mut ring) = collector.ring.lock() {
            ring.push(event);
        }
    }

    /// A snapshot of the collected events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        match &self.inner {
            Some(c) => c
                .ring
                .lock()
                .map(|r| r.events.iter().cloned().collect())
                .unwrap_or_default(),
            None => Vec::new(),
        }
    }

    /// Number of events evicted because the ring buffer was full.
    pub fn dropped(&self) -> u64 {
        match &self.inner {
            Some(c) => c.ring.lock().map(|r| r.dropped).unwrap_or(0),
            None => 0,
        }
    }
}

/// A timed region of work. Closing (dropping) an enabled span emits a
/// [`EventKind::SpanEnd`] event carrying its duration and any attributes
/// recorded while it was open.
pub struct Span {
    tracer: Tracer,
    id: u64,
    parent_id: u64,
    name: &'static str,
    start: Option<Instant>,
    attrs: Vec<(&'static str, Value)>,
}

impl Span {
    /// A span on a disabled tracer (for callers that always need a
    /// parent span to pass down).
    pub fn disabled() -> Span {
        Tracer::disabled().span("")
    }

    /// Whether this span actually records anything.
    pub fn is_enabled(&self) -> bool {
        self.start.is_some()
    }

    /// Opens a child span.
    pub fn child(&self, name: &'static str) -> Span {
        self.tracer.open_span(name, self.id)
    }

    /// Records an attribute to be emitted when the span closes.
    pub fn record(&mut self, key: &'static str, value: impl Into<Value>) {
        if self.is_enabled() {
            self.attrs.push((key, value.into()));
        }
    }

    /// Records an instant event inside this span.
    pub fn event(&self, name: &'static str, attrs: Vec<(&'static str, Value)>) {
        self.tracer.instant(name, self.id, self.parent_id, attrs);
    }

    /// The tracer this span records to.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else {
            return;
        };
        let Some(collector) = &self.tracer.inner else {
            return;
        };
        let elapsed_ns = duration_ns(start.elapsed());
        self.tracer.record(Event {
            at_ns: duration_ns(collector.epoch.elapsed()),
            span_id: self.id,
            parent_id: self.parent_id,
            kind: EventKind::SpanEnd { elapsed_ns },
            name: self.name,
            attrs: std::mem::take(&mut self.attrs),
        });
    }
}

fn duration_ns(d: Duration) -> u64 {
    d.as_nanos().min(u128::from(u64::MAX)) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        let mut span = t.span("query");
        span.record("k", 1u64);
        span.event("e", vec![("a", Value::Bool(true))]);
        let child = span.child("inner");
        assert!(!child.is_enabled());
        drop(child);
        drop(span);
        assert!(t.events().is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn spans_nest_and_close_in_order() {
        let t = Tracer::enabled();
        {
            let mut outer = t.span("outer");
            outer.record("answer", 42u64);
            {
                let inner = outer.child("inner");
                inner.event("tick", vec![("n", Value::U64(7))]);
            }
        }
        let events = t.events();
        let names: Vec<_> = events.iter().map(|e| (e.name, e.kind)).collect();
        assert_eq!(names.len(), 5, "{names:?}");
        assert_eq!(events[0].name, "outer");
        assert_eq!(events[0].kind, EventKind::SpanStart);
        assert_eq!(events[1].name, "inner");
        // The inner span's parent is the outer span.
        assert_eq!(events[1].parent_id, events[0].span_id);
        assert_eq!(events[2].name, "tick");
        assert_eq!(events[2].kind, EventKind::Instant);
        assert_eq!(events[2].span_id, events[1].span_id);
        // inner closes before outer.
        assert!(matches!(events[3].kind, EventKind::SpanEnd { .. }));
        assert_eq!(events[3].name, "inner");
        assert_eq!(events[4].name, "outer");
        assert_eq!(events[4].attr("answer"), Some(&Value::U64(42)));
    }

    #[test]
    fn span_end_duration_is_monotonic() {
        let t = Tracer::enabled();
        {
            let _s = t.span("timed");
            std::thread::sleep(Duration::from_millis(2));
        }
        let events = t.events();
        let end = events.last().unwrap();
        match end.kind {
            EventKind::SpanEnd { elapsed_ns } => {
                assert!(elapsed_ns >= 1_000_000, "{elapsed_ns}")
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn ring_buffer_bounds_and_counts_drops() {
        let t = Tracer::with_capacity(4);
        for _ in 0..10 {
            t.event("e", Vec::new());
        }
        assert_eq!(t.events().len(), 4);
        assert_eq!(t.dropped(), 6);
    }

    #[test]
    fn sink_sees_events_live() {
        use std::sync::atomic::AtomicUsize;
        let seen = Arc::new(AtomicUsize::new(0));
        let seen2 = Arc::clone(&seen);
        let t = Tracer::with_sink(
            16,
            Arc::new(move |e: &Event| {
                if e.name == "pass" {
                    seen2.fetch_add(1, Ordering::Relaxed);
                }
            }),
        );
        t.event("pass", Vec::new());
        t.event("other", Vec::new());
        t.event("pass", Vec::new());
        assert_eq!(seen.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn value_conversions_and_display() {
        assert_eq!(Value::from(3usize), Value::U64(3));
        assert_eq!(Value::from(Duration::from_nanos(9)), Value::U64(9));
        assert_eq!(Value::from("x").to_string(), "x");
        assert_eq!(Value::from(-2i64).to_string(), "-2");
        assert_eq!(Value::from(true).to_string(), "true");
        assert_eq!(Value::from(1.5f64).to_string(), "1.5");
    }

    #[test]
    fn threads_can_share_a_tracer() {
        let t = Tracer::enabled();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let t = t.clone();
                s.spawn(move || {
                    for _ in 0..50 {
                        t.event("w", Vec::new());
                    }
                });
            }
        });
        assert_eq!(t.events().len(), 200);
    }
}
