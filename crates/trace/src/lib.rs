//! Observability substrate for the FREE engine.
//!
//! The paper's experiments (Figures 7–10) are entirely about *where time
//! goes* — selection passes, index probes, the confirmation scan — so the
//! engine needs the same attribution built in, not bolted onto the bench
//! harness. This crate provides it with zero external dependencies:
//!
//! * [`span`] — a lightweight tracing core. A [`Tracer`] collects
//!   [`Event`]s (span start/end, instants) into a bounded ring buffer
//!   behind a mutex; spans nest and carry typed key/value attributes. A
//!   disabled tracer is a `None` inside a clone-cheap handle, so every
//!   hook on the query path is a branch on a null pointer — measured to
//!   be free (see the overhead guard test in the workspace test suite).
//! * [`metrics`] — a process-wide registry of named counters, gauges and
//!   log2-bucketed histograms, exposed in Prometheus text format via
//!   [`metrics::Registry::expose`]. All handles are `Arc`-backed atomics,
//!   so hot paths update them without locking.
//! * [`json`] — the small hand-rolled JSON writer the workspace uses for
//!   `--stats-json` and `explain --analyze --json` output (the workspace
//!   carries no serde).
//! * [`qlog`] — the durable query log: a non-blocking bounded-queue
//!   JSONL writer producing size-rotated, CRC-sealed segments, plus the
//!   verifying reader behind `free log` / `free replay` and the
//!   process-wide slow-query threshold the engine's flight recorder
//!   consults.

#![forbid(unsafe_code)]

pub mod json;
pub mod metrics;
pub mod qlog;
pub mod span;

pub use json::{JsonArray, JsonObject, JsonValue};
pub use metrics::{Counter, Gauge, Histogram, Registry};
pub use qlog::{LogConfig, LogWriter};
pub use span::{Event, EventKind, Span, Tracer, Value};
