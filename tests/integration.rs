//! Cross-crate integration tests: corpus → index → engine, against the
//! scan ground truth, with on-disk persistence in the loop.

// Integration tests: unwraps in helper functions are assertions, the
// same as inside #[test] bodies (clippy.toml only exempts the latter).
#![allow(clippy::unwrap_used, clippy::expect_used)]
use free_corpus::synth::{Generator, SynthConfig};
use free_corpus::{Corpus, DiskCorpus, MemCorpus};
use free_engine::{baseline, Engine, EngineConfig, IndexKind};
use free_index::IndexRead;

fn tmpdir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("free-it-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The four execution modes must agree exactly — matching documents AND
/// matching strings — on every benchmark query.
#[test]
fn all_modes_agree_on_benchmark_queries() {
    let (corpus, _) = Generator::new(SynthConfig::tiny(250, 77)).build_mem();
    let multigram = Engine::build_in_memory(corpus.clone(), EngineConfig::default()).unwrap();
    let presuf =
        Engine::build_in_memory(corpus.clone(), EngineConfig::with_kind(IndexKind::Presuf))
            .unwrap();
    let complete = Engine::build_in_memory(
        corpus.clone(),
        EngineConfig {
            max_gram_len: 5,
            ..EngineConfig::with_kind(IndexKind::Complete)
        },
    )
    .unwrap();
    let queries = [
        r#"<a href=("|')?.*\.mp3("|')?>"#,
        r"\d\d\d\d\d(-\d\d\d\d)?",
        r"<[^>]*<",
        r"william\s+[a-z]+\s+clinton",
        r"motorola.*(xpc|mpc)[0-9]+[0-9a-z]*",
        r"<script>.*</script>",
        r"\(\d\d\d\) \d\d\d-\d\d\d\d|\d\d\d-\d\d\d-\d\d\d\d",
        r#"<a\s+href\s*=\s*("|')?[^>]*(\.ps|\.pdf)("|')?>.{0,200}sigmod"#,
        r"(\a|\d|-|_|\.)+@((\a|\d)+\.)*stanford\.edu",
        r"cgi\.ebay\.com.*item=[0-9]+",
    ];
    for pattern in queries {
        let (scan_matches, _) = baseline::scan_all_matches(&corpus, pattern).unwrap();
        for (label, engine) in [
            ("multigram", &multigram),
            ("presuf", &presuf),
            ("complete", &complete),
        ] {
            let mut r = engine.query(pattern).unwrap();
            let got = r.all_matches().unwrap();
            assert_eq!(
                got, scan_matches,
                "{label} disagrees with scan on {pattern}"
            );
        }
    }
}

/// A full disk round trip: synthetic corpus streamed to disk, index built
/// on disk with a tiny memory budget (forcing run spills), engine
/// reopened, results identical to the all-in-memory path.
#[test]
fn disk_pipeline_roundtrip() {
    let dir = tmpdir("pipeline");
    let generator = Generator::new(SynthConfig::tiny(150, 3));
    let (disk_corpus, _) = generator.build_disk(dir.join("corpus")).unwrap();
    let (mem_corpus, _) = generator.build_mem();

    let config = EngineConfig {
        build_memory_budget: 512, // force the external run-merge path
        ..EngineConfig::default()
    };
    let disk_engine =
        Engine::build_on_disk(disk_corpus, config.clone(), dir.join("idx.free")).unwrap();
    let mem_engine = Engine::build_in_memory(mem_corpus.clone(), config.clone()).unwrap();

    assert_eq!(
        disk_engine.build_stats().index_stats.num_keys,
        mem_engine.build_stats().index_stats.num_keys
    );
    assert_eq!(
        disk_engine.build_stats().index_stats.num_postings,
        mem_engine.build_stats().index_stats.num_postings
    );

    for pattern in ["clinton", r"\.mp3", "<script>", r"\d\d\d\d\d"] {
        let mut a = disk_engine.query(pattern).unwrap();
        let mut b = mem_engine.query(pattern).unwrap();
        assert_eq!(
            a.all_matches().unwrap(),
            b.all_matches().unwrap(),
            "{pattern}"
        );
    }

    // Reopen both corpus and index from cold files.
    drop(disk_engine);
    let reopened_corpus = DiskCorpus::open(dir.join("corpus")).unwrap();
    let reopened = Engine::open(reopened_corpus, config, dir.join("idx.free")).unwrap();
    let mut a = reopened.query("clinton").unwrap();
    let mut b = mem_engine.query("clinton").unwrap();
    assert_eq!(a.all_matches().unwrap(), b.all_matches().unwrap());

    std::fs::remove_dir_all(&dir).unwrap();
}

/// Observation 3.8: a prefix-free key set's postings never exceed the
/// corpus size in characters. The multigram miner's output is prefix free
/// (Theorem 3.9), so this must hold for every multigram index.
#[test]
fn observation_3_8_postings_bounded_by_corpus_size() {
    for seed in [1u64, 2, 3, 4, 5] {
        let (corpus, _) = Generator::new(SynthConfig::tiny(80, seed)).build_mem();
        let engine = Engine::build_in_memory(corpus.clone(), EngineConfig::default()).unwrap();
        let stats = engine.build_stats();
        assert!(
            stats.index_stats.num_postings <= corpus.total_bytes(),
            "seed {seed}: {} postings > {} corpus bytes",
            stats.index_stats.num_postings,
            corpus.total_bytes()
        );
    }
}

/// Theorem 3.9(3): the mined key set is prefix free; and the presuf shell
/// is additionally suffix free (Definition 3.12).
#[test]
fn key_set_structure_invariants() {
    let (corpus, _) = Generator::new(SynthConfig::tiny(120, 9)).build_mem();
    let multigram = Engine::build_in_memory(corpus.clone(), EngineConfig::default()).unwrap();
    let presuf =
        Engine::build_in_memory(corpus, EngineConfig::with_kind(IndexKind::Presuf)).unwrap();

    let mut keys: Vec<Vec<u8>> = Vec::new();
    multigram
        .index()
        .for_each_key(&mut |k| keys.push(k.to_vec()));
    for a in &keys {
        for b in &keys {
            if a != b {
                assert!(!b.starts_with(&a[..]), "prefix violation: {a:?} < {b:?}");
            }
        }
    }

    let mut pkeys: Vec<Vec<u8>> = Vec::new();
    presuf.index().for_each_key(&mut |k| pkeys.push(k.to_vec()));
    for a in &pkeys {
        for b in &pkeys {
            if a != b {
                assert!(!b.starts_with(&a[..]), "prefix violation: {a:?} < {b:?}");
                assert!(!b.ends_with(&a[..]), "suffix violation: {a:?} vs {b:?}");
            }
        }
    }
    // The presuf shell is a subset of the multigram keys.
    let keyset: std::collections::HashSet<&Vec<u8>> = keys.iter().collect();
    for k in &pkeys {
        assert!(keyset.contains(k), "presuf key {k:?} not in multigram keys");
    }
}

/// Candidate supersets: the index may only ever *over*-approximate — every
/// truly matching document must be among the candidates (no false
/// negatives), for all index kinds.
#[test]
fn index_candidates_are_supersets_of_matches() {
    let (corpus, _) = Generator::new(SynthConfig::tiny(200, 21)).build_mem();
    let engine = Engine::build_in_memory(corpus.clone(), EngineConfig::default()).unwrap();
    for pattern in [
        r"\.mp3",
        "clinton",
        r"motorola.*(xpc|mpc)[0-9]+",
        "bb.*cc.*dd.+zz", // Example 3.5's pathological query
    ] {
        let (want, _) = baseline::scan_matching_docs(&corpus, pattern).unwrap();
        let mut r = engine.query(pattern).unwrap();
        let candidates = r.num_candidates().unwrap();
        let got = r.matching_docs().unwrap();
        assert_eq!(got, want, "{pattern}");
        assert!(
            candidates >= got.len(),
            "{pattern}: {candidates} candidates < {} matches",
            got.len()
        );
    }
}

/// The quickstart path from the README, kept honest by CI.
#[test]
fn readme_quickstart_compiles_and_runs() {
    let corpus = MemCorpus::from_docs(vec![
        b"see <a href=\"song.mp3\"> here".to_vec(),
        b"nothing relevant".to_vec(),
    ]);
    let engine = Engine::build_in_memory(corpus, EngineConfig::default()).unwrap();
    let mut result = engine.query(r#"<a href=("|')?.*\.mp3("|')?>"#).unwrap();
    assert_eq!(result.matching_docs().unwrap(), vec![0]);
}

/// Observation 3.14: the presuf shell contains at least one substring of
/// every useful gram — so any useful gram used as a query literal must
/// still resolve to an index plan (not a scan) under the Suffix index.
#[test]
fn observation_3_14_presuf_covers_useful_grams() {
    let (corpus, _) = Generator::new(SynthConfig::tiny(150, 13)).build_mem();
    let n = corpus.len() as f64;
    let c = 0.1;
    let multigram = Engine::build_in_memory(
        corpus.clone(),
        EngineConfig {
            usefulness_threshold: c,
            ..EngineConfig::default()
        },
    )
    .unwrap();
    let presuf = Engine::build_in_memory(
        corpus.clone(),
        EngineConfig {
            usefulness_threshold: c,
            ..EngineConfig::with_kind(IndexKind::Presuf)
        },
    )
    .unwrap();
    // Probe with literal queries taken from real page substrings of
    // several lengths; all scan-measured useful ones must get index plans.
    let sample = corpus.get(0).unwrap();
    let mut probed = 0;
    for len in [4usize, 6, 8, 10] {
        for start in (0..sample.len().saturating_sub(len)).step_by(37) {
            let gram = &sample[start..start + len];
            // Skip grams with regex metacharacters for a literal query.
            if !gram.iter().all(|b| b.is_ascii_alphanumeric() || *b == b' ') {
                continue;
            }
            let pattern: String = String::from_utf8(gram.to_vec()).unwrap();
            let (docs, _) = baseline::scan_matching_docs(&corpus, &pattern).unwrap();
            let useful = (docs.len() as f64) / n <= c;
            if !useful {
                continue;
            }
            probed += 1;
            let rm = multigram.query(&pattern).unwrap();
            assert!(
                !rm.used_scan(),
                "multigram index must cover useful gram {pattern:?}"
            );
            let rp = presuf.query(&pattern).unwrap();
            assert!(
                !rp.used_scan(),
                "presuf shell must cover useful gram {pattern:?} (Obs 3.14)"
            );
        }
    }
    assert!(probed > 5, "only {probed} useful grams probed — weak test");
}

/// Anchoring and plan pruning are both behavior-preserving: all four
/// toggle combinations return identical matches.
#[test]
fn optimizations_preserve_results() {
    let (corpus, _) = Generator::new(SynthConfig::tiny(120, 31)).build_mem();
    let mut engines = Vec::new();
    for anchoring in [false, true] {
        for prune in [1.0, 0.5] {
            engines.push(
                Engine::build_in_memory(
                    corpus.clone(),
                    EngineConfig {
                        use_anchoring: anchoring,
                        prune_selectivity: prune,
                        ..EngineConfig::default()
                    },
                )
                .unwrap(),
            );
        }
    }
    for pattern in [
        r"\.mp3",
        r"william\s+[a-z]+\s+clinton",
        r"<script>.*</script>",
        r"\d\d\d\d\d",
    ] {
        let mut base = engines[0].query(pattern).unwrap();
        let want = base.all_matches().unwrap();
        for e in &engines[1..] {
            let mut r = e.query(pattern).unwrap();
            assert_eq!(r.all_matches().unwrap(), want, "{pattern}");
        }
    }
}
