//! Differential properties tying the static analyzer to the planner.
//!
//! The analyzer's NULL-plan linter is a from-scratch reimplementation of
//! Algorithm 4.1's Table 2 collapse rules, so the two can check each
//! other: for any generated pattern, the linter's prediction must agree
//! with what `LogicalPlan::from_ast` actually produces. Likewise, the
//! soundness verifier exists to catch planner bugs — on the planner as
//! written it must never report a violation.

use free_analyze::{analyze, predicts_null, AnalysisConfig};
use free_engine::plan::logical::LogicalPlan;
use free_regex::{parse, parse_spanned, Ast, ByteClass};
use proptest::prelude::*;

/// Same generator shape as `proptest_equivalence`: a small alphabet so
/// literals collide and merge, with every operator the planner treats
/// specially (classes, dot, counted and unbounded repeats, alternation).
fn arb_ast() -> impl Strategy<Value = Ast> {
    let leaf = prop_oneof![
        prop_oneof![Just(b'a'), Just(b'b'), Just(b'c'), Just(b' ')].prop_map(Ast::byte),
        Just(Ast::Class(ByteClass::range(b'a', b'c'))),
        Just(Ast::Class(ByteClass::dot())),
        prop_oneof![Just("ab"), Just("abc"), Just("cab"), Just("bca")]
            .prop_map(|s| Ast::literal(s.as_bytes())),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..4).prop_map(Ast::concat),
            prop::collection::vec(inner.clone(), 2..3).prop_map(Ast::alternate),
            (inner.clone(), 0u32..3, 0u32..2).prop_map(|(n, min, extra)| Ast::Repeat {
                node: Box::new(n),
                min,
                max: Some(min + extra),
            }),
            inner.prop_map(Ast::star),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The linter's NULL prediction agrees with the planner, for any
    /// pattern and any class-expansion limit.
    #[test]
    fn null_prediction_matches_planner(
        ast in arb_ast(),
        limit in 0usize..24,
    ) {
        let pattern = format!("{ast:?}");
        prop_assume!(!pattern.contains('ε'));
        prop_assume!(parse(&pattern).is_ok());

        let tree = parse_spanned(&pattern).unwrap();
        let predicted = predicts_null(&tree, limit);
        let actual = LogicalPlan::from_ast(&tree.to_ast(), limit).is_null();
        prop_assert_eq!(
            predicted, actual,
            "linter and planner disagree on `{}` (limit {})", pattern, limit
        );
    }

    /// The soundness verifier never fires on plans the compiler actually
    /// produces: every required gram is a factor of the query language
    /// (or the check is inconclusive — never a witnessed violation).
    #[test]
    fn compiler_plans_never_violate_soundness(ast in arb_ast()) {
        let pattern = format!("{ast:?}");
        prop_assume!(!pattern.contains('ε'));
        prop_assume!(parse(&pattern).is_ok());

        let parsed = parse(&pattern).unwrap();
        let plan = LogicalPlan::from_ast(&parsed, 16);
        let summary = free_analyze::soundness::verify_plan(&parsed, &plan, 1024);
        prop_assert!(
            summary.diagnostics.is_empty(),
            "unsound plan for `{}`: {:?}", pattern, summary.diagnostics
        );
    }

    /// Full analysis is total on parseable patterns: no panics, exactly
    /// one cost classification, and the reported class is consistent
    /// with the report's own plan string.
    #[test]
    fn analysis_is_total_and_classifies_once(ast in arb_ast()) {
        let pattern = format!("{ast:?}");
        prop_assume!(!pattern.contains('ε'));
        prop_assume!(parse(&pattern).is_ok());

        let report = analyze(&pattern, &AnalysisConfig::default());
        let class_diags = report
            .diagnostics
            .iter()
            .filter(|d| d.code.starts_with("FA2"))
            .count();
        prop_assert_eq!(class_diags, 1, "`{}`: {:?}", pattern, report.diagnostics);
        let is_scan = report.class == Some(free_engine::PlanClass::Scan);
        prop_assert_eq!(
            report.plan.as_deref() == Some("NULL"),
            is_scan,
            "`{}`: {:?}", pattern, report
        );
        // Rendering never panics either.
        let _ = report.render_human();
        let _ = report.to_json();
    }
}
