//! Differential properties of the gram-selection strategy lab.
//!
//! Two invariants, for *any* corpus over the collision-heavy proptest
//! alphabet:
//!
//! * every [`free_engine::GramSelector`] backend emits a sorted,
//!   prefix-free gram dictionary with accurate document counts — the
//!   contract the planner, the presuf shell, and `free fsck`'s `FA424`
//!   check all lean on;
//! * every backend answers every query with byte-identical results, at
//!   one confirmation thread and at four. Selectors trade index size
//!   and speed; they are never allowed to change answers.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use free_corpus::{Corpus, MemCorpus};
use free_engine::select::SelectConfig;
use free_engine::{baseline, selector_for, Engine, EngineConfig, SelectorSpec};
use free_regex::{Ast, ByteClass};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::OnceLock;

/// A captured query log over the proptest alphabet, written once and
/// shared by every case: the workload selector mines its candidate
/// grams from these patterns.
fn shared_qlog() -> PathBuf {
    static DIR: OnceLock<PathBuf> = OnceLock::new();
    DIR.get_or_init(|| {
        let dir =
            std::env::temp_dir().join(format!("free-proptest-select-qlog-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let w = free_trace::qlog::LogWriter::create(&dir).expect("qlog dir");
        for (i, (pattern, slow)) in [
            ("ab", false),
            ("abc", true),
            ("cab", false),
            ("bca", false),
            ("ab.c", false),
            ("a(bc|ca)b", true),
        ]
        .iter()
        .enumerate()
        {
            w.emit(format!(
                "{{\"type\":\"query\",\"ts_ms\":{},\"source\":\"test\",\
                 \"pattern\":\"{pattern}\",\"slow\":{slow}}}",
                i + 1
            ));
        }
        w.close();
        dir
    })
    .clone()
}

/// Every selector strategy under test. The budgeted sweep gets a tiny
/// budget and grid so it exercises the fallback paths; the workload
/// selector mines from the shared captured log.
fn all_specs() -> Vec<SelectorSpec> {
    vec![
        SelectorSpec::default(),
        SelectorSpec::Apriori { c: Some(0.5) },
        SelectorSpec::Trigram { k: 3 },
        SelectorSpec::Budgeted {
            budget: 4096,
            c: None,
            steps: 3,
        },
        SelectorSpec::Workload {
            qlog: shared_qlog(),
            c: None,
            max_grams: 0,
        },
    ]
}

fn arb_ast() -> impl Strategy<Value = Ast> {
    let leaf = prop_oneof![
        prop_oneof![Just(b'a'), Just(b'b'), Just(b'c'), Just(b' ')].prop_map(Ast::byte),
        Just(Ast::Class(ByteClass::range(b'a', b'c'))),
        Just(Ast::Class(ByteClass::dot())),
        prop_oneof![Just("ab"), Just("abc"), Just("cab"), Just("bca")]
            .prop_map(|s| Ast::literal(s.as_bytes())),
    ];
    leaf.prop_recursive(3, 12, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..4).prop_map(Ast::concat),
            prop::collection::vec(inner.clone(), 2..3).prop_map(Ast::alternate),
            inner.prop_map(Ast::star),
        ]
    })
}

fn arb_corpus() -> impl Strategy<Value = MemCorpus> {
    prop::collection::vec(
        prop::collection::vec(
            prop_oneof![Just(b'a'), Just(b'b'), Just(b'c'), Just(b' '), Just(b'x')],
            0..40,
        ),
        1..20,
    )
    .prop_map(MemCorpus::from_docs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Trait contract: sorted, prefix-free, accurate doc counts — for
    /// every backend, on any corpus.
    #[test]
    fn every_selector_yields_a_prefix_free_dictionary(
        corpus in arb_corpus(),
        c in 0.05f64..0.9,
    ) {
        let config = SelectConfig {
            usefulness_threshold: c,
            max_gram_len: 6,
            ..SelectConfig::default()
        };
        for spec in all_specs() {
            let selector = selector_for(&spec);
            let selection = selector.select(&corpus, &config)
                .unwrap_or_else(|e| panic!("{spec}: {e}"));
            let grams = &selection.grams;
            // Sorted, duplicate-free.
            for w in grams.windows(2) {
                prop_assert!(
                    w[0].gram < w[1].gram,
                    "{spec}: keys out of order: {:?} !< {:?}", w[0].gram, w[1].gram
                );
            }
            // Prefix-free: no key extends another (sorted order puts a
            // prefix immediately before its extensions).
            for w in grams.windows(2) {
                prop_assert!(
                    !w[1].gram.starts_with(&w[0].gram[..]),
                    "{spec}: {:?} is a prefix of {:?}", w[0].gram, w[1].gram
                );
            }
            // Doc counts are exact, and every key passes the selector's
            // own fsck-side shape check.
            for g in grams.iter() {
                let truth = (0..corpus.len() as u32)
                    .filter(|&d| {
                        let doc = corpus.get(d).unwrap();
                        doc.windows(g.gram.len()).any(|win| win == &g.gram[..])
                    })
                    .count() as u32;
                prop_assert_eq!(
                    g.doc_count, truth,
                    "{}: wrong doc count for {:?}", spec, g.gram
                );
                prop_assert!(
                    selector.check_key(&g.gram).is_none(),
                    "{spec}: selector rejects its own key {:?}", g.gram
                );
            }
        }
    }

    /// Differential execution: every selector, at 1 and 4 confirmation
    /// threads, returns exactly the scan baseline's matches.
    #[test]
    fn all_selectors_answer_identically(
        ast in arb_ast(),
        corpus in arb_corpus(),
    ) {
        let pattern = format!("{ast:?}");
        prop_assume!(!pattern.contains('ε'));
        prop_assume!(free_regex::parse(&pattern).is_ok());

        let (want, _) = baseline::scan_all_matches(&corpus, &pattern).unwrap();
        for spec in all_specs() {
            for threads in [1usize, 4] {
                let config = EngineConfig {
                    selector: spec.clone(),
                    num_threads: threads,
                    max_gram_len: 6,
                    ..EngineConfig::default()
                };
                let engine = Engine::build_in_memory(corpus.clone(), config).unwrap();
                let mut r = engine.query(&pattern).unwrap();
                let got = r.all_matches().unwrap();
                prop_assert_eq!(
                    &got, &want,
                    "selector {} at {} thread(s) disagrees with scan for `{}`",
                    spec, threads, pattern
                );
            }
        }
    }
}
