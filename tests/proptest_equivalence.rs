//! The reproduction's central correctness property: for *any* corpus and
//! *any* regex, querying through any index kind returns exactly the same
//! matches as the sequential scan baseline.
//!
//! Patterns are generated as ASTs (over a deliberately small alphabet so
//! grams collide constantly) and rendered through the parseable `Debug`
//! form; corpora are random byte documents over the same alphabet.

use free_corpus::MemCorpus;
use free_engine::{baseline, Engine, EngineConfig, IndexKind};
use free_regex::{Ast, ByteClass};
use proptest::prelude::*;

fn arb_ast() -> impl Strategy<Value = Ast> {
    let leaf = prop_oneof![
        prop_oneof![Just(b'a'), Just(b'b'), Just(b'c'), Just(b' ')].prop_map(Ast::byte),
        Just(Ast::Class(ByteClass::range(b'a', b'c'))),
        Just(Ast::Class(ByteClass::dot())),
        // Multi-byte literals create real multigrams.
        prop_oneof![Just("ab"), Just("abc"), Just("cab"), Just("bca")]
            .prop_map(|s| Ast::literal(s.as_bytes())),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..4).prop_map(Ast::concat),
            prop::collection::vec(inner.clone(), 2..3).prop_map(Ast::alternate),
            (inner.clone(), 0u32..3, 0u32..2).prop_map(|(n, min, extra)| Ast::Repeat {
                node: Box::new(n),
                min,
                max: Some(min + extra),
            }),
            inner.prop_map(Ast::star),
        ]
    })
}

fn arb_corpus() -> impl Strategy<Value = MemCorpus> {
    prop::collection::vec(
        prop::collection::vec(
            prop_oneof![Just(b'a'), Just(b'b'), Just(b'c'), Just(b' '), Just(b'x')],
            0..40,
        ),
        1..25,
    )
    .prop_map(MemCorpus::from_docs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn any_index_kind_agrees_with_scan(
        ast in arb_ast(),
        corpus in arb_corpus(),
        c in 0.05f64..0.9,
    ) {
        let pattern = format!("{ast:?}");
        prop_assume!(!pattern.contains('ε'));
        prop_assume!(free_regex::parse(&pattern).is_ok());

        let (want, _) = baseline::scan_all_matches(&corpus, &pattern).unwrap();
        for kind in [IndexKind::Multigram, IndexKind::Presuf, IndexKind::Complete] {
            let config = EngineConfig {
                index_kind: kind,
                usefulness_threshold: c,
                max_gram_len: 6,
                ..EngineConfig::default()
            };
            let engine = Engine::build_in_memory(corpus.clone(), config).unwrap();
            let mut r = engine.query(&pattern).unwrap();
            let got = r.all_matches().unwrap();
            prop_assert_eq!(
                &got, &want,
                "{:?} disagrees with scan for `{}` (c={})", kind, pattern, c
            );
        }
    }

    /// Observation 3.8 as a property: postings of the (prefix-free)
    /// multigram key set never exceed corpus bytes, for any threshold.
    #[test]
    fn postings_bound_holds_for_any_corpus(
        corpus in arb_corpus(),
        c in 0.0f64..=1.0,
    ) {
        use free_corpus::Corpus as _;
        let config = EngineConfig {
            usefulness_threshold: c,
            ..EngineConfig::default()
        };
        let engine = Engine::build_in_memory(corpus.clone(), config).unwrap();
        prop_assert!(
            engine.build_stats().index_stats.num_postings <= corpus.total_bytes()
        );
    }
}
