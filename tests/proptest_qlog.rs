//! Property tests for the durable query log: kill-point crash safety
//! and differential workload replay.
//!
//! Two contracts, straight from the observability design:
//!
//! 1. **Kill-point**: truncating a query-log segment at *any* byte
//!    offset (the shape any crash or torn write leaves) is always
//!    detected coherently — `free fsck` findings agree with what the
//!    segment reader reports, readers keep every whole record written
//!    before the cut and never invent one, and undamaged segments lose
//!    nothing.
//! 2. **Differential replay**: a workload captured while querying a
//!    live index — sharded or not — replays against the same directory
//!    with every per-query result count (`matching_docs` and
//!    `match_count`) reproduced exactly.

// Integration tests: unwraps in helper functions are assertions, the
// same as inside #[test] bodies (clippy.toml only exempts the latter).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use free_analyze::{codes, fsck, FsckOptions};
use free_live::{LiveConfig, LiveIndex, ShardedLiveIndex};
use free_trace::qlog::{self, LogConfig, LogWriter, SegmentStatus};
use freegrep::replay::{replay, ReplayOptions};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The process-wide query-log slot is shared by every test in this
/// binary; both properties install into it, so they serialize here.
static QLOG: Mutex<()> = Mutex::new(());

/// Document pool: enough vocabulary overlap that every pattern finds
/// something somewhere, plus hay that matches nothing.
const DOCS: [&str; 8] = [
    "the quick brown fox jumps over the lazy dog",
    "pack my box with five dozen liquor jugs",
    "sphinx of black quartz judge my vow",
    "how vexingly quick daft zebras jump",
    "the five boxing wizards jump quickly",
    "jackdaws love my big sphinx of quartz",
    "plain hay with nothing interesting",
    "quick quick slow quick",
];

/// Query pool spanning indexed, alternation, class, and scan-degenerate
/// plans (the last records SCAN-class entries for the workload miner).
const PATTERNS: [&str; 6] = ["quick", "fox|dog", "qu[aeiou]", "sphinx", "jum.s?", "z*"];

fn fresh_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "free-qlog-prop-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Either live layout behind one add/flush/query surface.
enum Layout {
    Plain(LiveIndex),
    Sharded(ShardedLiveIndex),
}

impl Layout {
    fn create(dir: &Path, shards: usize) -> Layout {
        if shards <= 1 {
            Layout::Plain(LiveIndex::create(dir, LiveConfig::default()).unwrap())
        } else {
            Layout::Sharded(ShardedLiveIndex::create(dir, LiveConfig::default(), shards).unwrap())
        }
    }

    fn add_batch(&mut self, docs: &[&str]) {
        match self {
            Layout::Plain(l) => drop(l.add_batch(docs).unwrap()),
            Layout::Sharded(s) => drop(s.add_batch(docs).unwrap()),
        }
    }

    fn flush(&mut self) {
        match self {
            Layout::Plain(l) => drop(l.flush().unwrap()),
            Layout::Sharded(s) => drop(s.flush().unwrap()),
        }
    }

    fn query(&self, pattern: &str) {
        match self {
            Layout::Plain(l) => drop(l.query(pattern).unwrap()),
            Layout::Sharded(s) => drop(s.query(pattern).unwrap()),
        }
    }
}

/// Builds a live index in `dir` from `doc_picks`, capturing `schedule`
/// queries into a query log at `log_dir` (small segments force
/// rotation). Returns the captured record lines, segment-ascending.
fn capture(
    dir: &Path,
    log_dir: &Path,
    shards: usize,
    doc_picks: &[usize],
    flush_every: usize,
    schedule: &[usize],
) -> Vec<String> {
    let mut layout = Layout::create(dir, shards);
    for (i, &pick) in doc_picks.iter().enumerate() {
        layout.add_batch(&[DOCS[pick % DOCS.len()]]);
        if (i + 1) % flush_every == 0 {
            layout.flush();
        }
    }
    let writer = LogWriter::with_config(
        log_dir,
        LogConfig {
            rotate_bytes: 512,
            queue_capacity: 1024,
        },
    )
    .unwrap();
    qlog::install(writer);
    for &pick in schedule {
        layout.query(PATTERNS[pick % PATTERNS.len()]);
    }
    qlog::shutdown(); // seals every segment
    qlog::read_dir(log_dir)
        .unwrap()
        .iter()
        .flat_map(|seg| seg.trusted_records().to_vec())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Kill-point: a query log truncated at any byte offset stays
    /// coherent — fsck findings match the reader's verdict, surviving
    /// records are a subsequence of the originals with undamaged
    /// segments intact, and replay of the survivors still verifies.
    #[test]
    fn truncated_log_is_detected_and_prior_records_survive(
        doc_picks in prop::collection::vec(any::<usize>(), 4..10),
        schedule in prop::collection::vec(any::<usize>(), 4..12),
        seg_pick in any::<usize>(),
        cut in any::<usize>(),
    ) {
        // Hold the slot for the whole case: the replay below runs live
        // queries, which must not leak records into a concurrently
        // capturing test.
        let _guard = QLOG.lock().unwrap_or_else(|e| e.into_inner());
        let dir = fresh_dir("kill-idx");
        let log_dir = fresh_dir("kill-log");
        let original = capture(&dir, &log_dir, 1, &doc_picks, 3, &schedule);
        prop_assert_eq!(original.len(), schedule.len());

        // Truncate one segment at a random interior offset.
        let before = qlog::read_dir(&log_dir).unwrap();
        let victim = &before[seg_pick % before.len()];
        let bytes = std::fs::read(&victim.path).unwrap();
        prop_assume!(bytes.len() > 1);
        std::fs::write(&victim.path, &bytes[..cut % bytes.len()]).unwrap();

        // The reader's verdict and fsck's findings must agree.
        let after = qlog::read_dir(&log_dir).unwrap();
        let report = fsck(&log_dir, &FsckOptions::default()).unwrap();
        prop_assert_eq!(report.kind, "qlog");
        let last_seq = after.last().map(|s| s.seq);
        for seg in &after {
            match &seg.status {
                SegmentStatus::Sealed => {}
                SegmentStatus::Unsealed { torn_bytes } => {
                    if *torn_bytes > 0 {
                        prop_assert!(
                            !report.with_code(codes::QLOG_TORN_TAIL).is_empty(),
                            "torn tail unreported: {}", report.render_human()
                        );
                    }
                    if Some(seg.seq) != last_seq {
                        prop_assert!(
                            !report.with_code(codes::QLOG_UNSEALED).is_empty(),
                            "unsealed non-final segment unreported: {}",
                            report.render_human()
                        );
                    }
                }
                SegmentStatus::Corrupt { .. } => {
                    prop_assert!(report.has_errors(), "{}", report.render_human());
                }
            }
        }

        // Surviving records are a subsequence of the originals; every
        // record in an untouched segment survives whole.
        let survivors: Vec<String> = after
            .iter()
            .flat_map(|seg| seg.trusted_records().to_vec())
            .collect();
        let mut cursor = original.iter();
        for s in &survivors {
            prop_assert!(
                cursor.any(|o| o == s),
                "reader invented or reordered a record: {s}"
            );
        }
        let untouched: usize = before
            .iter()
            .filter(|seg| seg.seq != victim.seq)
            .map(|seg| seg.records.len())
            .sum();
        prop_assert!(survivors.len() >= untouched);

        // The survivors still replay clean against the same index.
        let mut opts = ReplayOptions::new(&log_dir);
        opts.live_dir = Some(dir.clone());
        opts.threads = 1;
        let (out, code) = replay(&opts).unwrap();
        prop_assert_eq!(code, 0, "replay of survivors failed:\n{}", out);

        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&log_dir);
    }

    /// Differential replay: every captured workload replays with result
    /// counts reproduced exactly, over both live layouts.
    #[test]
    fn replay_reproduces_recorded_counts(
        doc_picks in prop::collection::vec(any::<usize>(), 4..12),
        schedule in prop::collection::vec(any::<usize>(), 3..10),
        flush_every in 2usize..5,
        sharded in any::<bool>(),
        open_loop in any::<bool>(),
    ) {
        let shards = if sharded { 3 } else { 1 };
        let qps = if open_loop { 2000 } else { 0 };
        let _guard = QLOG.lock().unwrap_or_else(|e| e.into_inner());
        let dir = fresh_dir("diff-idx");
        let log_dir = fresh_dir("diff-log");
        let original = capture(&dir, &log_dir, shards, &doc_picks, flush_every, &schedule);
        prop_assert_eq!(original.len(), schedule.len());

        let mut opts = ReplayOptions::new(&log_dir);
        opts.live_dir = Some(dir.clone());
        opts.threads = 1;
        opts.qps = qps;
        opts.json = true;
        let (out, code) = replay(&opts).unwrap();
        prop_assert_eq!(code, 0, "replay mismatch:\n{}", out);
        // The live path always records complete confirmations, so every
        // captured record must have been replayed and verified.
        prop_assert!(
            out.contains(&format!("\"replayed\":{}", schedule.len())),
            "not every record was verified:\n{}", out
        );
        prop_assert!(out.contains("\"mismatches\":0"), "{}", out);

        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&log_dir);
    }
}
