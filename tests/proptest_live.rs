//! Differential property test for the live index: after ANY schedule of
//! ingest / delete / flush / compact operations, queries must return
//! exactly what a from-scratch batch build over the surviving documents
//! returns — same documents, same match spans — and must be identical
//! across confirmation thread counts.

// Integration tests: unwraps in helper functions are assertions, the
// same as inside #[test] bodies (clippy.toml only exempts the latter).
#![allow(clippy::unwrap_used, clippy::expect_used)]
use free_corpus::MemCorpus;
use free_engine::{Engine, EngineConfig};
use free_live::{LiveConfig, LiveIndex};
use free_regex::Span;
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Patterns exercising indexed, weak, and scan-ish plans over the tiny
/// alphabet the generator draws from.
const PATTERNS: [&str; 4] = ["ab", "bca*", "a b", "(ab|ca)x?"];

#[derive(Clone, Debug)]
enum Op {
    /// Add a batch of documents.
    Add(Vec<Vec<u8>>),
    /// Delete the (raw % live)-th live document, if any.
    Delete(usize),
    /// Seal the write buffer into a segment.
    Flush,
    /// Merge all segments, dropping tombstones.
    Compact,
}

fn arb_doc() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(
        prop_oneof![Just(b'a'), Just(b'b'), Just(b'c'), Just(b' '), Just(b'x')],
        0..30,
    )
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => prop::collection::vec(arb_doc(), 1..4).prop_map(Op::Add),
        3 => any::<usize>().prop_map(Op::Delete),
        2 => Just(Op::Flush),
        1 => Just(Op::Compact),
    ]
}

fn engine_config() -> EngineConfig {
    EngineConfig {
        usefulness_threshold: 0.6,
        max_gram_len: 6,
        ..EngineConfig::default()
    }
}

fn fresh_dir() -> std::path::PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "free-live-prop-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// (document content, spans) for every live match, in sequence order.
fn live_results(live: &LiveIndex, pattern: &str, threads: usize) -> Vec<(Vec<u8>, Vec<Span>)> {
    live.query_with(pattern, threads, true)
        .unwrap()
        .matches
        .into_iter()
        .map(|m| (live.get(m.seq).unwrap(), m.spans))
        .collect()
}

/// The reference: a batch engine built from scratch over the model's
/// surviving documents, results keyed back to content.
fn rebuild_results(model: &[Vec<u8>], pattern: &str) -> Vec<(Vec<u8>, Vec<Span>)> {
    let engine =
        Engine::build_in_memory(MemCorpus::from_docs(model.to_vec()), engine_config()).unwrap();
    let matches = engine.query(pattern).unwrap().all_matches().unwrap();
    matches
        .into_iter()
        .map(|m| (model[m.doc as usize].clone(), m.spans))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The differential invariant: at EVERY point in a random schedule,
    /// live results equal a from-scratch rebuild, for 1 and 4 threads.
    #[test]
    fn any_schedule_matches_from_scratch_rebuild(ops in prop::collection::vec(arb_op(), 1..8)) {
        let dir = fresh_dir();
        let mut live = LiveIndex::create(
            &dir,
            LiveConfig {
                engine: engine_config(),
                // Only explicit Flush ops flush, so schedules are exact.
                flush_threshold_bytes: u64::MAX,
                flush_threshold_docs: usize::MAX,
                ..LiveConfig::default()
            },
        )
        .unwrap();
        // The model: surviving documents in sequence order.
        let mut model: Vec<(u32, Vec<u8>)> = Vec::new();

        for op in ops {
            match op {
                Op::Add(docs) => {
                    let ids = live.add_batch(&docs).unwrap();
                    for (id, doc) in ids.into_iter().zip(docs) {
                        model.push((id, doc));
                    }
                }
                Op::Delete(raw) => {
                    if !model.is_empty() {
                        let (seq, _) = model.remove(raw % model.len());
                        live.delete(seq).unwrap();
                    }
                }
                Op::Flush => {
                    live.flush().unwrap();
                }
                Op::Compact => {
                    live.compact().unwrap();
                }
            }
            let seqs: Vec<u32> = model.iter().map(|(s, _)| *s).collect();
            prop_assert_eq!(&live.live_seqs(), &seqs, "live seq set diverged");
            let contents: Vec<Vec<u8>> = model.iter().map(|(_, d)| d.clone()).collect();
            for pattern in PATTERNS {
                let want = rebuild_results(&contents, pattern);
                let got = live_results(&live, pattern, 1);
                prop_assert_eq!(&got, &want, "pattern {} diverged from rebuild", pattern);
                let got4 = live_results(&live, pattern, 4);
                prop_assert_eq!(&got4, &want, "pattern {} diverged across threads", pattern);
            }
        }

        // And the invariant survives a reopen of the final state.
        drop(live);
        let live = LiveIndex::open(&dir, LiveConfig {
            engine: engine_config(),
            ..LiveConfig::default()
        })
        .unwrap();
        let contents: Vec<Vec<u8>> = model.iter().map(|(_, d)| d.clone()).collect();
        for pattern in PATTERNS {
            let want = rebuild_results(&contents, pattern);
            prop_assert_eq!(&live_results(&live, pattern, 1), &want, "reopen diverged");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
