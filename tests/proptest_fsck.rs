//! Corruption-injection property test for `free fsck`.
//!
//! The harness builds one realistic live-index fixture (two sealed
//! segments, a non-empty WAL, a tombstone), then for each case flips a
//! bit, truncates, or extends a random byte range of a random on-disk
//! artifact in a fresh copy, and asserts the safety contract:
//!
//! > every injected fault is either **detected** by `fsck` (an
//! > error-severity `FA4xx` finding) or **harmless** (the index reopens
//! > and every probe query returns exactly the pristine results).
//!
//! A fault that slips past fsck *and* changes query results is the bug
//! class this whole subsystem exists to rule out.

// Integration tests: unwraps in helper functions are assertions, the
// same as inside #[test] bodies (clippy.toml only exempts the latter).
#![allow(clippy::unwrap_used, clippy::expect_used)]
use free_analyze::{fsck, FsckOptions};
use free_engine::EngineConfig;
use free_live::{LiveConfig, LiveIndex};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Probe queries spanning indexed, weak, and scan-degenerate plans over
/// the fixture's vocabulary.
const PATTERNS: [&str; 4] = ["quick", "fox|dog", "qu[aeiou]", "z*"];

/// A high usefulness threshold so the tiny per-segment corpora still
/// mine non-empty key sets (the deep check re-mines against those keys).
/// Must be identical everywhere the fixture directory is opened.
fn config() -> LiveConfig {
    LiveConfig {
        engine: EngineConfig {
            usefulness_threshold: 0.9,
            ..EngineConfig::default()
        },
        ..LiveConfig::default()
    }
}

fn fresh_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "free-fsck-prop-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn copy_dir(from: &Path, to: &Path) {
    std::fs::create_dir_all(to).unwrap();
    for entry in std::fs::read_dir(from).unwrap() {
        let entry = entry.unwrap();
        let dst = to.join(entry.file_name());
        if entry.path().is_dir() {
            copy_dir(&entry.path(), &dst);
        } else {
            std::fs::copy(entry.path(), &dst).unwrap();
        }
    }
}

/// Every file under `dir`, relative paths, sorted for determinism.
fn walk_files(dir: &Path, prefix: &Path, out: &mut Vec<PathBuf>) {
    for entry in std::fs::read_dir(dir).unwrap() {
        let entry = entry.unwrap();
        let rel = prefix.join(entry.file_name());
        if entry.path().is_dir() {
            walk_files(&entry.path(), &rel, out);
        } else {
            out.push(rel);
        }
    }
    out.sort();
}

/// The pristine fixture: its directory, file list, and reference query
/// results. Built once; cases copy it.
struct Fixture {
    dir: PathBuf,
    files: Vec<PathBuf>,
    reference: Vec<Vec<u32>>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let dir = fresh_dir("fixture");
        let mut live = LiveIndex::create(&dir, config()).unwrap();
        let docs: Vec<&[u8]> = vec![
            b"the quick brown fox jumps over the lazy dog",
            b"pack my box with five dozen liquor jugs",
            b"sphinx of black quartz judge my vow",
            b"how vexingly quick daft zebras jump",
            b"the five boxing wizards jump quickly",
            b"jackdaws love my big sphinx of quartz",
        ];
        // Two sealed segments...
        live.add_batch(&docs[..3]).unwrap();
        live.flush().unwrap();
        live.add_batch(&docs[3..5]).unwrap();
        live.flush().unwrap();
        // ...a tombstone, and one buffered doc so the WAL is non-empty.
        live.delete(1).unwrap();
        live.add(docs[5]).unwrap();
        let reference = PATTERNS.iter().map(|p| probe(&live, p)).collect();
        drop(live);

        let mut files = Vec::new();
        walk_files(&dir, Path::new(""), &mut files);
        assert!(files.len() >= 8, "fixture too small: {files:?}");
        Fixture {
            dir,
            files,
            reference,
        }
    })
}

/// Matching sequence numbers for one pattern (spans are implied by seq +
/// content, which `get` pins).
fn probe(live: &LiveIndex, pattern: &str) -> Vec<u32> {
    live.query_with(pattern, 1, true)
        .unwrap()
        .matches
        .iter()
        .map(|m| m.seq)
        .collect()
}

#[derive(Clone, Copy, Debug)]
enum Fault {
    /// XOR one bit at (offset % len).
    BitFlip { offset: usize, bit: u8 },
    /// Cut the file to (offset % len) bytes.
    Truncate { offset: usize },
    /// Append 1 + (offset % 16) arbitrary bytes.
    Extend { offset: usize, byte: u8 },
}

fn arb_fault() -> impl Strategy<Value = Fault> {
    prop_oneof![
        4 => (any::<usize>(), 0u8..8).prop_map(|(offset, bit)| Fault::BitFlip { offset, bit }),
        2 => any::<usize>().prop_map(|offset| Fault::Truncate { offset }),
        1 => (any::<usize>(), any::<u8>())
            .prop_map(|(offset, byte)| Fault::Extend { offset, byte }),
    ]
}

/// Applies the fault; returns false if it would be a no-op (empty file
/// bit-flip / zero-length truncate of an empty file).
fn inject(path: &Path, fault: Fault) -> bool {
    let mut bytes = std::fs::read(path).unwrap();
    match fault {
        Fault::BitFlip { offset, bit } => {
            if bytes.is_empty() {
                return false;
            }
            let i = offset % bytes.len();
            bytes[i] ^= 1 << bit;
        }
        Fault::Truncate { offset } => {
            if bytes.is_empty() {
                return false;
            }
            bytes.truncate(offset % bytes.len());
        }
        Fault::Extend { offset, byte } => {
            bytes.extend(std::iter::repeat_n(byte, 1 + offset % 16));
        }
    }
    std::fs::write(path, bytes).unwrap();
    true
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The detected-or-harmless contract, over random single faults.
    #[test]
    fn every_fault_is_detected_or_harmless(
        file_raw in any::<usize>(),
        fault in arb_fault(),
    ) {
        let fixture = fixture();
        let case_dir = fresh_dir("case");
        copy_dir(&fixture.dir, &case_dir);
        let rel = &fixture.files[file_raw % fixture.files.len()];
        let injected = inject(&case_dir.join(rel), fault);
        if !injected {
            std::fs::remove_dir_all(&case_dir).unwrap();
            return Ok(());
        }

        let report = fsck(&case_dir, &FsckOptions { deep: true, sample: 16 })
            .expect("fsck itself must not fail on a recognizable directory");
        if !report.has_errors() {
            // fsck passed the state as sound, so the index must behave
            // exactly like the pristine one (warnings/advisories — e.g. a
            // stale tombstone — may legitimately fire without changing
            // results). Reopening may repair benign damage; that's fine
            // on this throwaway copy.
            let live = LiveIndex::open(&case_dir, config())
                .map_err(|e| TestCaseError::fail(format!(
                    "fsck reported no errors for {} + {fault:?}, yet reopen failed: {e}",
                    rel.display()
                )))?;
            for (pattern, want) in PATTERNS.iter().zip(&fixture.reference) {
                let got = probe(&live, pattern);
                prop_assert_eq!(
                    &got, want,
                    "fsck reported no errors for {} + {:?}, yet {:?} changed results",
                    rel.display(), fault, pattern
                );
            }
        }
        std::fs::remove_dir_all(&case_dir).unwrap();
    }
}

/// The pristine fixture itself must verify completely clean, including
/// the deep sampled re-mining pass — zero findings of any severity.
#[test]
fn pristine_fixture_is_clean_under_deep_fsck() {
    let fixture = fixture();
    let report = fsck(
        &fixture.dir,
        &FsckOptions {
            deep: true,
            sample: 64,
        },
    )
    .unwrap();
    assert!(
        report.diagnostics.is_empty(),
        "pristine index must have zero findings:\n{}",
        report.render_human()
    );
    assert!(report.docs_sampled > 0, "deep pass must sample documents");
}

/// A stale WAL epoch (crash between manifest commit and epoch stamp
/// cleanup) is exactly the state `LiveIndex::open` silently repairs; when
/// that cleanup has NOT run, fsck must flag it as an FA422 error.
#[test]
fn stale_wal_epoch_is_flagged_when_cleanup_skipped() {
    let fixture = fixture();
    let dir = fresh_dir("stale-epoch");
    copy_dir(&fixture.dir, &dir);
    std::fs::write(dir.join(free_live::WAL_EPOCH_FILE), b"0\n").unwrap();
    let report = fsck(&dir, &FsckOptions::default()).unwrap();
    assert!(report.has_errors(), "{}", report.render_human());
    assert_eq!(
        report.with_code(free_analyze::codes::STALE_WAL_EPOCH).len(),
        1,
        "{}",
        report.render_human()
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
