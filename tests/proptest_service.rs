//! Property tests for the production-service layer: request budgets
//! (deadline + cooperative cancellation) and the snapshot-keyed query
//! result cache.
//!
//! The budget invariant: a query cancelled at ANY confirmation batch
//! boundary returns a structured error — never partial results. What was
//! delivered before the cut is a prefix of the full answer, and the cost
//! counters agree exactly with the deliveries, at 1 and 4 threads.
//!
//! The cache invariant: a cached answer served at generation G is
//! byte-identical to an uncached execution against the same snapshot,
//! under any schedule of add / delete / flush / compact (every mutation
//! publishes a new generation, so a hit can only come from an
//! equal-generation snapshot — the free-invalidation property).

// Integration tests: unwraps in helper functions are assertions, the
// same as inside #[test] bodies (clippy.toml only exempts the latter).
#![allow(clippy::unwrap_used, clippy::expect_used)]
use free_corpus::{Corpus, DocId, MemCorpus};
use free_engine::exec::stream::{confirm_source_budgeted, CandidateSource};
use free_engine::{CancelToken, QueryStats, RequestBudget};
use free_live::{LiveConfig, LiveIndex, QueryCache, QueryOpts};
use free_regex::Regex;
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Runs confirmation over `corpus` with `budget`, cancelling the token
/// (if any) after `cancel_after` delivered matches. Returns the
/// delivered `(doc, span_count)` pairs, the final stats, and the
/// executor's verdict.
fn confirm_with_budget(
    corpus: &MemCorpus,
    regex: &Regex,
    ids: &[DocId],
    threads: usize,
    budget: &RequestBudget,
    cancel: Option<(&CancelToken, usize)>,
) -> (Vec<(DocId, usize)>, QueryStats, free_engine::Result<()>) {
    let mut stats = QueryStats::default();
    let mut hits = Vec::new();
    let verdict = confirm_source_budgeted(
        corpus,
        regex,
        &mut CandidateSource::Docs(ids.to_vec()),
        true,
        &[],
        threads,
        budget,
        &mut stats,
        &mut |doc, spans| {
            hits.push((doc, spans.len()));
            if let Some((token, after)) = cancel {
                if hits.len() >= after {
                    token.cancel();
                }
            }
            true
        },
    );
    (hits, stats, verdict)
}

fn arb_docs() -> impl Strategy<Value = Vec<Vec<u8>>> {
    // Enough matching docs that multi-batch schedules (batch = 32 per
    // worker) actually span several budget checkpoints.
    prop::collection::vec(0u32..10, 80..300).prop_map(|draws| {
        draws
            .into_iter()
            .enumerate()
            .map(|(i, draw)| {
                // ~70% of documents match.
                if draw < 7 {
                    format!("doc {i} carries the needle token").into_bytes()
                } else {
                    format!("doc {i} is plain hay").into_bytes()
                }
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Cancellation at a random batch boundary: structured error,
    /// delivered hits are a prefix of the full answer, and the counters
    /// equal the deliveries — no partial result leaks, at 1 and 4
    /// threads.
    #[test]
    fn cancelled_query_is_structured_and_prefix_consistent(
        docs in arb_docs(),
        cut in 1usize..64,
    ) {
        let corpus = MemCorpus::from_docs(docs);
        let regex = Regex::new("needle").unwrap();
        let ids: Vec<DocId> = (0..corpus.len() as DocId).collect();

        // Reference: the full answer under an unlimited budget.
        let (full, full_stats, verdict) = confirm_with_budget(
            &corpus, &regex, &ids, 1, &RequestBudget::unlimited(), None,
        );
        prop_assert!(verdict.is_ok());
        prop_assert_eq!(full_stats.matching_docs, full.len());

        for threads in [1usize, 4] {
            let token = CancelToken::new();
            let budget = RequestBudget::unlimited().cancelled_by(token.clone());
            let (hits, stats, verdict) = confirm_with_budget(
                &corpus, &regex, &ids, threads, &budget, Some((&token, cut)),
            );
            if cut > full.len() {
                // The token never tripped: the run completes normally.
                prop_assert!(verdict.is_ok(), "threads={threads}");
                prop_assert_eq!(&hits, &full, "threads={threads}");
                continue;
            }
            // Structured cancellation, not Ok-with-missing-results.
            prop_assert!(
                matches!(verdict, Err(free_engine::Error::Cancelled)),
                "threads={threads}: {verdict:?}"
            );
            // The cut lands on a batch boundary at or after the trip
            // point, and what was delivered is a prefix of the full
            // answer (deterministic fold order).
            prop_assert!(hits.len() >= cut, "threads={threads}");
            prop_assert!(hits.len() <= full.len(), "threads={threads}");
            prop_assert_eq!(&hits[..], &full[..hits.len()], "threads={threads}");
            // Counters agree exactly with the deliveries: whole batches
            // only, nothing half-folded.
            prop_assert_eq!(
                stats.matching_docs, hits.len(),
                "threads={threads}"
            );
            prop_assert!(
                stats.docs_examined >= stats.matching_docs,
                "threads={threads}"
            );
            prop_assert!(
                stats.docs_examined <= full_stats.docs_examined,
                "threads={threads}"
            );
        }
    }

    /// An already-expired deadline stops the executor before the first
    /// batch: zero deliveries, zero examined docs, structured timeout.
    #[test]
    fn expired_deadline_delivers_nothing(docs in arb_docs()) {
        let corpus = MemCorpus::from_docs(docs);
        let regex = Regex::new("needle").unwrap();
        let ids: Vec<DocId> = (0..corpus.len() as DocId).collect();
        for threads in [1usize, 4] {
            let budget = RequestBudget::with_timeout(std::time::Duration::ZERO);
            let (hits, stats, verdict) =
                confirm_with_budget(&corpus, &regex, &ids, threads, &budget, None);
            prop_assert!(
                matches!(verdict, Err(free_engine::Error::Timeout { .. })),
                "threads={threads}: {verdict:?}"
            );
            prop_assert!(hits.is_empty(), "threads={threads}");
            prop_assert_eq!(stats.docs_examined, 0, "threads={threads}");
            prop_assert_eq!(stats.matching_docs, 0, "threads={threads}");
        }
    }
}

// ---------------------------------------------------------------------
// Cache coherence
// ---------------------------------------------------------------------

/// Patterns spanning indexed and weak plans over the generator alphabet.
const PATTERNS: [&str; 3] = ["ab", "bca*", "(ab|ca)x?"];

#[derive(Clone, Debug)]
enum Op {
    Add(Vec<Vec<u8>>),
    Delete(usize),
    Flush,
    Compact,
}

fn arb_doc() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(
        prop_oneof![Just(b'a'), Just(b'b'), Just(b'c'), Just(b' '), Just(b'x')],
        0..24,
    )
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => prop::collection::vec(arb_doc(), 1..4).prop_map(Op::Add),
        3 => any::<usize>().prop_map(Op::Delete),
        2 => Just(Op::Flush),
        1 => Just(Op::Compact),
    ]
}

fn fresh_dir() -> std::path::PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "free-svc-prop-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Serving through the cache never changes an answer: at every point
    /// in a random mutation schedule, a cache hit equals a from-scratch
    /// execution against the same snapshot, and mutations invalidate by
    /// construction (new generation → the stale entry stops matching).
    #[test]
    fn cached_results_equal_uncached_under_any_schedule(
        ops in prop::collection::vec(arb_op(), 1..8),
    ) {
        let dir = fresh_dir();
        let mut live = LiveIndex::create(
            &dir,
            LiveConfig {
                // Only explicit Flush ops flush, so schedules are exact.
                flush_threshold_bytes: u64::MAX,
                flush_threshold_docs: usize::MAX,
                ..LiveConfig::default()
            },
        )
        .unwrap();
        let cache = QueryCache::new(64);
        let reader = live.reader();
        let mut live_seqs: Vec<u32> = Vec::new();

        for op in ops {
            match op {
                Op::Add(docs) => {
                    live_seqs.extend(live.add_batch(&docs).unwrap());
                }
                Op::Delete(raw) => {
                    if !live_seqs.is_empty() {
                        let seq = live_seqs.remove(raw % live_seqs.len());
                        live.delete(seq).unwrap();
                    }
                }
                Op::Flush => {
                    live.flush().unwrap();
                }
                Op::Compact => {
                    live.compact().unwrap();
                }
            }
            for pattern in PATTERNS {
                let snapshot = reader.snapshot();
                let generation = snapshot.generation();
                let fresh = snapshot
                    .query_opts(pattern, &QueryOpts { threads: 1, ..QueryOpts::default() })
                    .unwrap()
                    .matches;
                match cache.get(pattern, true, generation) {
                    Some(hit) => {
                        // The coherence property: a hit at generation G
                        // IS the uncached answer at generation G.
                        prop_assert_eq!(hit.as_slice(), fresh.as_slice(), "{pattern}");
                    }
                    None => cache.insert(pattern, true, generation, Arc::new(fresh)),
                }
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
