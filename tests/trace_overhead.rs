//! Acceptance guard: tracing must be near-free when disabled.
//!
//! The criterion is relative, not absolute wall-clock: measure what one
//! disabled hook (span open + attribute record + drop) actually costs on
//! this machine, multiply by a generous bound on hooks per query, and
//! require the product to stay under 5% of a measured average query.
//! This keeps the test meaningful on fast and slow machines alike.

use free_corpus::MemCorpus;
use free_engine::{Engine, EngineConfig};
use free_trace::Tracer;
use std::time::Instant;

/// A generous upper bound on tracing hooks per query. The engine issues
/// on the order of ten (one query span, a few children, a handful of
/// records/events); 256 leaves two orders of magnitude of headroom.
const HOOKS_PER_QUERY: u32 = 256;

#[test]
fn disabled_tracing_is_under_five_percent_of_query_time() {
    let tracer = Tracer::disabled();

    // Warm up, then measure the disabled hook cost.
    for _ in 0..10_000u32 {
        let mut span = tracer.span("warmup");
        span.record("k", 1u64);
        std::hint::black_box(&span);
    }
    const HOOK_SAMPLES: u32 = 1_000_000;
    let start = Instant::now();
    for i in 0..HOOK_SAMPLES {
        let mut span = tracer.span("query");
        span.record("k", u64::from(i));
        span.event("tick", Vec::new());
        std::hint::black_box(&span);
    }
    let per_hook = start.elapsed() / HOOK_SAMPLES;

    // Measure an average query on a small corpus. The engine's default
    // tracer is disabled, so this is the production disabled path.
    let docs: Vec<Vec<u8>> = (0..200)
        .map(|i| {
            if i % 50 == 3 {
                format!("commongram rareneedle {i}").into_bytes()
            } else {
                format!("commongram filler {i}").into_bytes()
            }
        })
        .collect();
    let engine = Engine::build_in_memory(MemCorpus::from_docs(docs), EngineConfig::default())
        .expect("build");
    let run = || {
        let mut r = engine.query("commongram.*rareneedle").expect("query");
        std::hint::black_box(r.count_matches().expect("count"));
    };
    run(); // warm up
    const QUERY_SAMPLES: u32 = 50;
    let start = Instant::now();
    for _ in 0..QUERY_SAMPLES {
        run();
    }
    let avg_query = start.elapsed() / QUERY_SAMPLES;

    let overhead = per_hook * HOOKS_PER_QUERY;
    assert!(
        overhead < avg_query / 20,
        "disabled tracing: {HOOKS_PER_QUERY} hooks x {per_hook:?}/hook = {overhead:?}, \
         which is not under 5% of the {avg_query:?} average query"
    );
}
