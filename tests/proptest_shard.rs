//! Differential property test for the sharded live index: for ANY
//! schedule of ingest / delete / flush / compact operations, a sharded
//! index must be observationally identical to an unsharded one driven
//! by the same schedule — same sequence numbers, same matches, same
//! spans, in the same order — for any shard count and any confirmation
//! thread count, and the equivalence must survive a reopen.
//!
//! Shard count defaults to {1, 4} and can be pinned with `FREE_SHARDS=N`
//! (the CI matrix runs both).

// Integration tests: unwraps in helper functions are assertions, the
// same as inside #[test] bodies (clippy.toml only exempts the latter).
#![allow(clippy::unwrap_used, clippy::expect_used)]
use free_engine::EngineConfig;
use free_live::{LiveConfig, LiveIndex, ShardedLiveIndex};
use free_regex::Span;
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Patterns exercising indexed, weak, and scan-ish plans over the tiny
/// alphabet the generator draws from.
const PATTERNS: [&str; 4] = ["ab", "bca*", "a b", "(ab|ca)x?"];

#[derive(Clone, Debug)]
enum Op {
    /// Add a batch of documents.
    Add(Vec<Vec<u8>>),
    /// Delete the (raw % live)-th live document, if any.
    Delete(usize),
    /// Seal the write buffer(s) into segments.
    Flush,
    /// Merge all segments, dropping tombstones.
    Compact,
}

fn arb_doc() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(
        prop_oneof![Just(b'a'), Just(b'b'), Just(b'c'), Just(b' '), Just(b'x')],
        0..30,
    )
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => prop::collection::vec(arb_doc(), 1..5).prop_map(Op::Add),
        3 => any::<usize>().prop_map(Op::Delete),
        2 => Just(Op::Flush),
        1 => Just(Op::Compact),
    ]
}

fn live_config() -> LiveConfig {
    LiveConfig {
        engine: EngineConfig {
            usefulness_threshold: 0.6,
            max_gram_len: 6,
            ..EngineConfig::default()
        },
        // Only explicit Flush ops flush, so schedules are exact.
        flush_threshold_bytes: u64::MAX,
        flush_threshold_docs: usize::MAX,
        ..LiveConfig::default()
    }
}

fn fresh_dir() -> std::path::PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "free-shard-prop-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Shard counts to exercise: `FREE_SHARDS=N` pins one, default {1, 4}.
fn shard_counts() -> Vec<usize> {
    match std::env::var("FREE_SHARDS")
        .ok()
        .and_then(|s| s.parse().ok())
    {
        Some(n) => vec![n],
        None => vec![1, 4],
    }
}

/// (seq, spans) for every match of `pattern`, in global order.
fn plain_results(live: &LiveIndex, pattern: &str, threads: usize) -> Vec<(u32, Vec<Span>)> {
    live.query_with(pattern, threads, true)
        .unwrap()
        .matches
        .into_iter()
        .map(|m| (m.seq, m.spans))
        .collect()
}

fn sharded_results(idx: &ShardedLiveIndex, pattern: &str, threads: usize) -> Vec<(u32, Vec<Span>)> {
    idx.query_with(pattern, threads, true)
        .unwrap()
        .matches
        .into_iter()
        .map(|m| (m.seq, m.spans))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The sharding invariant: a sharded index is indistinguishable from
    /// an unsharded one over the same operation schedule — for every
    /// prefix of the schedule, every pattern, and 1 vs 4 query threads.
    #[test]
    fn sharded_matches_unsharded_for_any_schedule(ops in prop::collection::vec(arb_op(), 1..8)) {
        for shards in shard_counts() {
            let plain_dir = fresh_dir();
            let shard_dir = fresh_dir();
            let mut plain = LiveIndex::create(&plain_dir, live_config()).unwrap();
            let mut sharded =
                ShardedLiveIndex::create(&shard_dir, live_config(), shards).unwrap();
            // Surviving (seq, doc) pairs, for delete targeting.
            let mut model: Vec<(u32, Vec<u8>)> = Vec::new();

            for op in &ops {
                match op {
                    Op::Add(docs) => {
                        let a = plain.add_batch(docs).unwrap();
                        let b = sharded.add_batch(docs).unwrap();
                        prop_assert_eq!(&a, &b, "assigned seqs diverged");
                        for (id, doc) in a.into_iter().zip(docs) {
                            model.push((id, doc.clone()));
                        }
                    }
                    Op::Delete(raw) => {
                        if !model.is_empty() {
                            let (seq, _) = model.remove(raw % model.len());
                            plain.delete(seq).unwrap();
                            sharded.delete(seq).unwrap();
                        }
                    }
                    Op::Flush => {
                        plain.flush().unwrap();
                        sharded.flush().unwrap();
                    }
                    Op::Compact => {
                        plain.compact().unwrap();
                        sharded.compact().unwrap();
                    }
                }
                prop_assert_eq!(plain.live_seqs(), sharded.live_seqs(), "seq sets diverged");
                for (seq, doc) in &model {
                    prop_assert_eq!(&sharded.get(*seq).unwrap(), doc, "doc content diverged");
                }
                for pattern in PATTERNS {
                    let want = plain_results(&plain, pattern, 1);
                    for threads in [1usize, 4] {
                        let got = sharded_results(&sharded, pattern, threads);
                        prop_assert_eq!(
                            &got, &want,
                            "pattern {} diverged at {} shard(s), {} thread(s)",
                            pattern, shards, threads
                        );
                    }
                }
            }

            // The equivalence survives a reopen of both final states.
            drop(plain);
            drop(sharded);
            let plain = LiveIndex::open(&plain_dir, live_config()).unwrap();
            let sharded = ShardedLiveIndex::open(&shard_dir, live_config()).unwrap();
            prop_assert_eq!(plain.next_seq(), sharded.next_seq(), "next_seq diverged on reopen");
            prop_assert_eq!(plain.live_seqs(), sharded.live_seqs(), "reopen seq sets diverged");
            for pattern in PATTERNS {
                prop_assert_eq!(
                    plain_results(&plain, pattern, 1),
                    sharded_results(&sharded, pattern, 1),
                    "pattern {} diverged after reopen", pattern
                );
            }
            let _ = std::fs::remove_dir_all(&plain_dir);
            let _ = std::fs::remove_dir_all(&shard_dir);
        }
    }
}
