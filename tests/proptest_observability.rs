//! Property tests for the observability layer: the per-operator counters
//! reported by `EXPLAIN ANALYZE` must reconcile exactly with the
//! aggregate `QueryStats` — over the in-memory index and the blocked
//! on-disk format, with sequential and parallel confirmation — and the
//! per-node exclusive stats must partition the root's subtree totals.

use free_corpus::MemCorpus;
use free_engine::{Engine, EngineConfig, ExplainAnalyze, NodeStats};
use free_index::CursorStats;
use proptest::prelude::*;

/// Sums the exclusive per-node stats over the whole tree.
fn sum_exclusive(node: &NodeStats, acc: &mut CursorStats) {
    acc.merge(&node.exclusive);
    for c in &node.children {
        sum_exclusive(c, acc);
    }
}

/// The invariants every `EXPLAIN ANALYZE` result must satisfy: the root
/// subtree equals the aggregate cursor accounting, and the exclusive
/// stats of all nodes partition it.
fn assert_reconciles(ea: &ExplainAnalyze, context: &str) {
    let Some(root) = &ea.root else {
        assert!(ea.stats.used_scan, "{context}: no tree implies a scan");
        return;
    };
    assert_eq!(root.subtree.seeks, ea.stats.cursor_seeks, "{context}");
    assert_eq!(
        root.subtree.postings_decoded, ea.stats.postings_decoded,
        "{context}"
    );
    assert_eq!(
        root.subtree.blocks_decoded, ea.stats.blocks_decoded,
        "{context}"
    );
    assert_eq!(
        root.subtree.postings_skipped, ea.stats.postings_skipped,
        "{context}"
    );
    assert_eq!(
        root.actual_docs as usize, ea.stats.candidates,
        "{context}: the root yields exactly the candidate set"
    );
    let mut total = CursorStats::default();
    sum_exclusive(root, &mut total);
    assert_eq!(total, root.subtree, "{context}: exclusive must partition");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random corpora and patterns over the in-memory index: the
    /// instrumented tree reconciles with the aggregate stats for any
    /// plan shape, and the reported actuals do not depend on the
    /// confirmation thread count.
    #[test]
    fn analyze_reconciles_on_memindex(
        docs in prop::collection::vec(
            prop::collection::vec(
                prop_oneof![Just(b'a'), Just(b'b'), Just(b'c'), Just(b' '), Just(b'x')],
                0..40,
            ),
            1..25,
        ),
        pattern_idx in 0usize..4,
    ) {
        let pattern = ["ab.*ca", "ab|bca*", "abc", "a.c|xb"][pattern_idx];
        let corpus = MemCorpus::from_docs(docs);
        let engine_with = |threads: usize| {
            Engine::build_in_memory(
                corpus.clone(),
                EngineConfig {
                    usefulness_threshold: 0.6,
                    max_gram_len: 6,
                    num_threads: threads,
                    ..EngineConfig::default()
                },
            )
            .unwrap()
        };
        let seq = engine_with(1);
        let par = engine_with(4);
        let a = seq.explain_analyze(pattern).unwrap();
        let b = par.explain_analyze(pattern).unwrap();
        assert_reconciles(&a, "mem threads=1");
        assert_reconciles(&b, "mem threads=4");
        prop_assert_eq!(a.stats.matching_docs, b.stats.matching_docs);
        prop_assert_eq!(a.stats.candidates, b.stats.candidates);
        prop_assert_eq!(
            a.root.as_ref().map(|r| r.actual_docs),
            b.root.as_ref().map(|r| r.actual_docs)
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Corpora large enough that the on-disk index stores blocked
    /// postings lists: reconciliation must also hold when operators skip
    /// whole blocks, for 1 and 4 confirmation threads, and the disk
    /// index must agree with the in-memory one.
    #[test]
    fn analyze_reconciles_on_blocked_disk_index(
        num_docs in 200usize..350,
        period in 3usize..17,
        threads in prop_oneof![Just(1usize), Just(4usize)],
    ) {
        // Every doc contains "commongram" (a >128-posting, blocked
        // list); every `period`-th doc contains the rare needle, so the
        // AND is lopsided and skips postings.
        let docs: Vec<Vec<u8>> = (0..num_docs)
            .map(|i| {
                if i % period == 1 {
                    format!("commongram rareneedle {i}").into_bytes()
                } else {
                    format!("commongram filler {i}").into_bytes()
                }
            })
            .collect();
        let corpus = MemCorpus::from_docs(docs);
        let config = EngineConfig {
            usefulness_threshold: 1.0,
            max_gram_len: 10,
            prune_selectivity: 1.0, // keep the common list in the plan
            num_threads: threads,
            ..EngineConfig::default()
        };
        let dir = std::env::temp_dir().join(format!(
            "free-obs-prop-{}-{num_docs}-{period}-{threads}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let disk = Engine::build_on_disk(corpus.clone(), config.clone(), dir.join("idx.free"))
            .unwrap();
        let mem = Engine::build_in_memory(corpus, config).unwrap();

        let pattern = "commongram.*rareneedle";
        let d = disk.explain_analyze(pattern).unwrap();
        let m = mem.explain_analyze(pattern).unwrap();
        assert_reconciles(&d, "disk");
        assert_reconciles(&m, "mem");

        let droot = d.root.as_ref().expect("indexed plan on disk");
        prop_assert!(droot.subtree.blocks_decoded > 0, "list must be blocked");
        prop_assert!(droot.subtree.postings_skipped > 0, "lopsided AND skips");
        prop_assert_eq!(d.stats.matching_docs, m.stats.matching_docs);
        prop_assert_eq!(
            droot.actual_docs,
            m.root.as_ref().unwrap().actual_docs,
            "storage format must not change yielded docs"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
