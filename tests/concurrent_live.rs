//! Concurrency stress test for the snapshot-isolated live index.
//!
//! A writer thread applies a random schedule of add / delete / flush /
//! compact while N reader threads continuously load snapshots and run
//! queries. The invariant: every result set a reader ever observes is
//! exactly what a from-scratch batch build over *some* published
//! state's surviving documents returns — i.e. readers always see a
//! consistent point-in-time view, never a torn one, even while
//! compaction is rewriting and unlinking segment files under them.
//!
//! The writer records the live document set after every operation,
//! keyed by the generation it published. Flush and compaction publish
//! intermediate generations (the inner flush of a compact) that the
//! writer does not record, but those never change the *live* set — only
//! add and delete do — so a reader's snapshot at generation `g` must
//! match the model at the greatest recorded generation `<= g`.

// Integration tests: unwraps in helper functions are assertions, the
// same as inside #[test] bodies (clippy.toml only exempts the latter).
#![allow(clippy::unwrap_used, clippy::expect_used)]
use free_corpus::MemCorpus;
use free_engine::{Engine, EngineConfig};
use free_live::{LiveConfig, LiveIndex, LiveReader};
use free_regex::Span;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

const PATTERNS: [&str; 4] = ["ab", "bca*", "a b", "(ab|ca)x?"];

/// One observed query: the snapshot generation it ran against, the
/// pattern, and each match's (seq, content, spans).
type Observation = (u64, &'static str, Rows);

/// Generation → live (seq, content) pairs after each writer op.
type Model = BTreeMap<u64, Vec<(u32, Vec<u8>)>>;

/// Match rows of one query: (seq, content, spans) per matching doc.
type Rows = Vec<(u32, Vec<u8>, Vec<Span>)>;

fn engine_config() -> EngineConfig {
    EngineConfig {
        usefulness_threshold: 0.6,
        max_gram_len: 6,
        ..EngineConfig::default()
    }
}

fn fresh_dir(tag: &str) -> std::path::PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "free-live-stress-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn random_doc(rng: &mut StdRng) -> Vec<u8> {
    const ALPHABET: [u8; 5] = [b'a', b'b', b'c', b' ', b'x'];
    (0..rng.gen_range(0usize..24))
        .map(|_| ALPHABET[rng.gen_range(0usize..ALPHABET.len())])
        .collect()
}

/// What a from-scratch batch engine over `docs` returns for `pattern`,
/// keyed back to (seq, content, spans).
fn rebuild(docs: &[(u32, Vec<u8>)], pattern: &str) -> Vec<(u32, Vec<u8>, Vec<Span>)> {
    let contents: Vec<Vec<u8>> = docs.iter().map(|(_, d)| d.clone()).collect();
    let engine = Engine::build_in_memory(MemCorpus::from_docs(contents), engine_config()).unwrap();
    let matches = engine.query(pattern).unwrap().all_matches().unwrap();
    matches
        .into_iter()
        .map(|m| {
            let (seq, content) = &docs[m.doc as usize];
            (*seq, content.clone(), m.spans)
        })
        .collect()
}

/// Runs `readers` query threads against a writer applying `ops` random
/// operations (compaction weighted by `compact_weight` in 0..=100), then
/// validates every observation against a from-scratch rebuild of the
/// model at the observed generation.
fn run_stress(tag: &str, seed: u64, readers: usize, ops: usize, compact_weight: u32) {
    let dir = fresh_dir(tag);
    let mut live = LiveIndex::create(
        &dir,
        LiveConfig {
            engine: engine_config(),
            // Only explicit flush/compact ops reshape the index, so the
            // recorded schedule is exact.
            flush_threshold_bytes: u64::MAX,
            flush_threshold_docs: usize::MAX,
            ..LiveConfig::default()
        },
    )
    .unwrap();

    let model = Mutex::new(Model::new());
    model.lock().unwrap().insert(live.generation(), Vec::new());
    let reader_handle = live.reader();
    let done = AtomicBool::new(false);
    let observations: Mutex<Vec<Observation>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        // Writer: random schedule, recording the live set per generation.
        scope.spawn(|| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut alive: Vec<(u32, Vec<u8>)> = Vec::new();
            for _ in 0..ops {
                let roll = rng.gen_range(0u32..100);
                if roll < 45 {
                    let docs: Vec<Vec<u8>> = (0..rng.gen_range(1usize..4))
                        .map(|_| random_doc(&mut rng))
                        .collect();
                    let ids = live.add_batch(&docs).unwrap();
                    alive.extend(ids.into_iter().zip(docs));
                } else if roll < 65 {
                    if !alive.is_empty() {
                        let (seq, _) = alive.remove(rng.gen_range(0usize..alive.len()));
                        live.delete(seq).unwrap();
                    }
                } else if roll < 100 - compact_weight {
                    live.flush().unwrap();
                } else {
                    live.compact().unwrap();
                }
                model
                    .lock()
                    .unwrap()
                    .insert(live.generation(), alive.clone());
            }
            done.store(true, Ordering::SeqCst);
        });

        // Readers: hammer snapshots until the writer finishes, recording
        // (generation, pattern, results) tuples read from ONE snapshot.
        for r in 0..readers {
            let reader: LiveReader = reader_handle.clone();
            let observations = &observations;
            let done = &done;
            scope.spawn(move || {
                let mut local: Vec<Observation> = Vec::new();
                let mut i = r; // stagger pattern phase across readers
                while !done.load(Ordering::SeqCst) {
                    let pattern = PATTERNS[i % PATTERNS.len()];
                    i += 1;
                    let snapshot = reader.snapshot();
                    let result = snapshot.query_with(pattern, 1, true).unwrap();
                    let rows = result
                        .matches
                        .into_iter()
                        .map(|m| (m.seq, snapshot.get(m.seq).unwrap(), m.spans))
                        .collect();
                    if local.len() < 400 {
                        local.push((snapshot.generation(), pattern, rows));
                    }
                }
                observations.lock().unwrap().append(&mut local);
            });
        }
    });

    // Validate: each observation equals the rebuild of the model at the
    // greatest recorded generation <= the snapshot's generation.
    let model = model.into_inner().unwrap();
    let observations = observations.into_inner().unwrap();
    assert!(!observations.is_empty(), "readers observed nothing");
    let mut expected_cache: BTreeMap<(u64, &str), Rows> = BTreeMap::new();
    for (gen, pattern, rows) in &observations {
        let (model_gen, docs) = model
            .range(..=gen)
            .next_back()
            .unwrap_or_else(|| panic!("no recorded generation <= {gen}"));
        let expected = expected_cache
            .entry((*model_gen, pattern))
            .or_insert_with(|| rebuild(docs, pattern));
        assert_eq!(
            rows, expected,
            "snapshot at generation {gen} diverged from the rebuild of \
             generation {model_gen} for pattern {pattern}"
        );
    }

    // The final state must also survive a reopen, and answer identically
    // at 1 and 8 confirmation threads.
    let final_docs = model.values().next_back().unwrap().clone();
    let reopened = LiveIndex::open(
        &dir,
        LiveConfig {
            engine: engine_config(),
            ..LiveConfig::default()
        },
    )
    .unwrap();
    for pattern in PATTERNS {
        let expected = rebuild(&final_docs, pattern);
        for threads in [1, 8] {
            let got: Vec<(u32, Vec<u8>, Vec<Span>)> = reopened
                .query_with(pattern, threads, true)
                .unwrap()
                .matches
                .into_iter()
                .map(|m| (m.seq, reopened.get(m.seq).unwrap(), m.spans))
                .collect();
            assert_eq!(
                got, expected,
                "reopened index diverged for pattern {pattern} at {threads} threads"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The sharded variant of [`run_stress`]: one writer fans operations
/// out across `shards` partitions while readers stream from composite
/// snapshots. The invariant is identical — every observed result set
/// matches a from-scratch rebuild of *some* published state — plus the
/// composite snapshot must be cross-shard consistent: a reader must
/// never see shard A post-op and shard B pre-op for the same operation.
fn run_stress_sharded(
    tag: &str,
    seed: u64,
    shards: usize,
    readers: usize,
    ops: usize,
    compact_weight: u32,
) {
    use free_live::{ShardedLiveIndex, ShardedReader};

    let dir = fresh_dir(tag);
    let mut live = ShardedLiveIndex::create(
        &dir,
        LiveConfig {
            engine: engine_config(),
            flush_threshold_bytes: u64::MAX,
            flush_threshold_docs: usize::MAX,
            ..LiveConfig::default()
        },
        shards,
    )
    .unwrap();

    let model = Mutex::new(Model::new());
    model.lock().unwrap().insert(live.generation(), Vec::new());
    let reader_handle = live.reader();
    let done = AtomicBool::new(false);
    let observations: Mutex<Vec<Observation>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        scope.spawn(|| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut alive: Vec<(u32, Vec<u8>)> = Vec::new();
            for _ in 0..ops {
                let roll = rng.gen_range(0u32..100);
                if roll < 45 {
                    let docs: Vec<Vec<u8>> = (0..rng.gen_range(1usize..4))
                        .map(|_| random_doc(&mut rng))
                        .collect();
                    let ids = live.add_batch(&docs).unwrap();
                    alive.extend(ids.into_iter().zip(docs));
                } else if roll < 65 {
                    if !alive.is_empty() {
                        let (seq, _) = alive.remove(rng.gen_range(0usize..alive.len()));
                        live.delete(seq).unwrap();
                    }
                } else if roll < 100 - compact_weight {
                    live.flush().unwrap();
                } else {
                    live.compact().unwrap();
                }
                model
                    .lock()
                    .unwrap()
                    .insert(live.generation(), alive.clone());
            }
            done.store(true, Ordering::SeqCst);
        });

        for r in 0..readers {
            let reader: ShardedReader = reader_handle.clone();
            let observations = &observations;
            let done = &done;
            scope.spawn(move || {
                let mut local: Vec<Observation> = Vec::new();
                let mut i = r;
                while !done.load(Ordering::SeqCst) {
                    let pattern = PATTERNS[i % PATTERNS.len()];
                    i += 1;
                    let snapshot = reader.snapshot();
                    let result = snapshot.query_with(pattern, 2, true).unwrap();
                    let rows = result
                        .matches
                        .into_iter()
                        .map(|m| (m.seq, snapshot.get(m.seq).unwrap(), m.spans))
                        .collect();
                    if local.len() < 400 {
                        local.push((snapshot.generation(), pattern, rows));
                    }
                }
                observations.lock().unwrap().append(&mut local);
            });
        }
    });

    let model = model.into_inner().unwrap();
    let observations = observations.into_inner().unwrap();
    assert!(!observations.is_empty(), "readers observed nothing");
    let mut expected_cache: BTreeMap<(u64, &str), Rows> = BTreeMap::new();
    for (gen, pattern, rows) in &observations {
        let (model_gen, docs) = model
            .range(..=gen)
            .next_back()
            .unwrap_or_else(|| panic!("no recorded generation <= {gen}"));
        let expected = expected_cache
            .entry((*model_gen, pattern))
            .or_insert_with(|| rebuild(docs, pattern));
        assert_eq!(
            rows, expected,
            "sharded snapshot at generation {gen} diverged from the rebuild \
             of generation {model_gen} for pattern {pattern}"
        );
    }

    // The final state must survive a reopen and answer identically at
    // 1 and 8 confirmation threads.
    let final_docs = model.values().next_back().unwrap().clone();
    let reopened = ShardedLiveIndex::open(
        &dir,
        LiveConfig {
            engine: engine_config(),
            ..LiveConfig::default()
        },
    )
    .unwrap();
    for pattern in PATTERNS {
        let expected = rebuild(&final_docs, pattern);
        for threads in [1, 8] {
            let got: Vec<(u32, Vec<u8>, Vec<Span>)> = reopened
                .query_with(pattern, threads, true)
                .unwrap()
                .matches
                .into_iter()
                .map(|m| (m.seq, reopened.get(m.seq).unwrap(), m.spans))
                .collect();
            assert_eq!(
                got, expected,
                "reopened sharded index diverged for pattern {pattern} at {threads} threads"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn eight_readers_see_consistent_snapshots() {
    run_stress("mixed", 0xF2EE, 8, 60, 10);
}

#[test]
fn sharded_readers_see_consistent_composite_snapshots() {
    run_stress_sharded("shard-mixed", 0x5AD5, 4, 6, 50, 10);
}

#[test]
fn sharded_readers_survive_parallel_compaction() {
    // Compaction rewrites every shard's segment files in parallel while
    // readers stream from the composite snapshot.
    run_stress_sharded("shard-compact", 0x5CDE, 3, 6, 35, 35);
}

#[test]
fn readers_survive_continuous_compaction() {
    // Compaction on every third op or so: segment files are constantly
    // rewritten and unlinked while eight readers stream from them.
    run_stress("compact", 0xC0DE, 8, 40, 35);
}

#[test]
fn single_reader_matches_model() {
    run_stress("single", 0x51E9, 1, 50, 10);
}
