//! Differential tests for the streaming executor: the cursor-combinator
//! path must return byte-identical candidates to the eager slice
//! reference, over both the in-memory index and the blocked on-disk
//! format, and confirmation must return the same matches for any thread
//! count.

// Integration tests: unwraps in helper functions are assertions, the
// same as inside #[test] bodies (clippy.toml only exempts the latter).
#![allow(clippy::unwrap_used, clippy::expect_used)]
use free_corpus::MemCorpus;
use free_engine::exec::stream::compile_plan;
use free_engine::exec::{eval_plan, Candidates};
use free_engine::metrics::QueryStats;
use free_engine::plan::physical::PhysicalPlan;
use free_engine::{Engine, EngineConfig};
use free_index::cursor::drain;
use free_index::postings::Postings;
use free_index::{IndexRead, IndexReader, IndexWriter, MemIndex};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Key names the plan generator draws from. `zz` is never inserted into
/// the index, exercising the absent-key short-circuit.
const KEYS: [&str; 5] = ["k0", "k1", "k2", "k3", "zz"];

fn arb_postings() -> impl Strategy<Value = Vec<u32>> {
    // Up to 400 docs over a 2_000-doc universe: lists long enough that
    // the on-disk format stores some of them blocked (> 128 postings).
    prop::collection::btree_set(0u32..2_000, 0..400).prop_map(|s| s.into_iter().collect())
}

fn arb_index_content() -> impl Strategy<Value = BTreeMap<&'static str, Vec<u32>>> {
    (
        arb_postings(),
        arb_postings(),
        arb_postings(),
        arb_postings(),
    )
        .prop_map(|(a, b, c, d)| {
            let mut m = BTreeMap::new();
            m.insert("k0", a);
            m.insert("k1", b);
            m.insert("k2", c);
            m.insert("k3", d);
            m
        })
}

fn arb_plan() -> impl Strategy<Value = PhysicalPlan> {
    let key = (0usize..KEYS.len()).prop_map(|i| KEYS[i]);
    let leaf = prop::collection::vec(key, 1..3).prop_map(|keys| PhysicalPlan::Fetch {
        gram: b"g".to_vec(),
        keys: keys
            .into_iter()
            .map(|k| k.as_bytes().to_vec().into_boxed_slice())
            .collect(),
        estimate: 0,
    });
    leaf.prop_recursive(3, 12, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 2..4).prop_map(PhysicalPlan::And),
            prop::collection::vec(inner, 2..4).prop_map(PhysicalPlan::Or),
        ]
    })
}

fn build_mem(content: &BTreeMap<&str, Vec<u32>>) -> MemIndex {
    let mut idx = MemIndex::new();
    for (key, docs) in content {
        for &d in docs {
            idx.add(key.as_bytes(), d);
        }
    }
    idx
}

fn build_disk(content: &BTreeMap<&str, Vec<u32>>, name: &str) -> IndexReader {
    let dir = std::env::temp_dir().join(format!("free-stream-prop-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("idx.free");
    let mut w = IndexWriter::create(&path).unwrap();
    for (key, docs) in content {
        if !docs.is_empty() {
            w.add(key.as_bytes(), &Postings::from_sorted(docs)).unwrap();
        }
    }
    w.finish().unwrap()
}

fn eager_docs<I: IndexRead>(plan: &PhysicalPlan, index: &I) -> Vec<u32> {
    let mut stats = QueryStats::default();
    match eval_plan(plan, index, &mut stats).unwrap() {
        Candidates::Docs(d) => d,
        Candidates::All => panic!("generated plans never scan"),
    }
}

fn streamed_docs<I: IndexRead>(plan: &PhysicalPlan, index: &I) -> Vec<u32> {
    let mut stats = QueryStats::default();
    let mut cursor = compile_plan(plan, index, &mut stats).unwrap().unwrap();
    drain(&mut *cursor).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Cursor Fetch/AND/OR equals the eager slice reference, and the
    /// blocked on-disk index equals the in-memory index, for any plan.
    #[test]
    fn cursor_plans_agree_with_eager_reference(
        content in arb_index_content(),
        plan in arb_plan(),
    ) {
        let mem = build_mem(&content);
        let want = eager_docs(&plan, &mem);
        prop_assert_eq!(&streamed_docs(&plan, &mem), &want, "memindex cursor vs eager");

        let disk = build_disk(&content, "agree");
        prop_assert_eq!(&eager_docs(&plan, &disk), &want, "disk eager vs mem eager");
        prop_assert_eq!(&streamed_docs(&plan, &disk), &want, "disk cursor vs eager");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// End-to-end: the engine returns identical matches with 1 and 4
    /// confirmation threads, including first-k prefixes.
    #[test]
    fn thread_count_does_not_change_matches(
        docs in prop::collection::vec(
            prop::collection::vec(
                prop_oneof![Just(b'a'), Just(b'b'), Just(b'c'), Just(b' '), Just(b'x')],
                0..40,
            ),
            1..25,
        ),
        k in 1usize..6,
    ) {
        let corpus = MemCorpus::from_docs(docs);
        let pattern = "ab|bca*";
        let engine_with = |threads: usize| {
            Engine::build_in_memory(
                corpus.clone(),
                EngineConfig {
                    usefulness_threshold: 0.6,
                    max_gram_len: 6,
                    num_threads: threads,
                    ..EngineConfig::default()
                },
            )
            .unwrap()
        };
        let seq = engine_with(1);
        let par = engine_with(4);

        let mut a = seq.query(pattern).unwrap();
        let mut b = par.query(pattern).unwrap();
        let want = a.all_matches().unwrap();
        prop_assert_eq!(&b.all_matches().unwrap(), &want);
        prop_assert_eq!(a.stats().docs_examined, b.stats().docs_examined);
        prop_assert_eq!(a.stats().matching_docs, b.stats().matching_docs);

        let mut a = seq.query(pattern).unwrap();
        let mut b = par.query(pattern).unwrap();
        prop_assert_eq!(a.first_k_matches(k).unwrap(), b.first_k_matches(k).unwrap());
    }
}

/// Acceptance criterion: a lopsided AND over the blocked on-disk index
/// must skip postings (whole blocks) rather than decode everything.
#[test]
fn lopsided_and_skips_postings_on_blocked_index() {
    let mut content: BTreeMap<&str, Vec<u32>> = BTreeMap::new();
    content.insert("common", (0..20_000).collect());
    content.insert("rare", vec![3, 9_999, 19_998]);
    let disk = build_disk(&content, "lopsided");

    let key = |s: &str| s.as_bytes().to_vec().into_boxed_slice();
    let plan = PhysicalPlan::And(vec![
        PhysicalPlan::Fetch {
            gram: b"rare".to_vec(),
            keys: vec![key("rare")],
            estimate: 3,
        },
        PhysicalPlan::Fetch {
            gram: b"common".to_vec(),
            keys: vec![key("common")],
            estimate: 20_000,
        },
    ]);

    let mut stats = QueryStats::default();
    let mut cursor = compile_plan(&plan, &disk, &mut stats).unwrap().unwrap();
    let docs = drain(&mut *cursor).unwrap();
    assert_eq!(docs, vec![3, 9_999, 19_998]);

    let mut cs = free_index::CursorStats::default();
    cursor.collect_stats(&mut cs);
    assert!(
        cs.blocks_decoded > 0,
        "the 20k-doc list must be stored blocked: {cs:?}"
    );
    assert!(
        cs.postings_skipped > 0,
        "lopsided AND must skip postings: {cs:?}"
    );
    assert!(
        cs.postings_decoded < 20_000,
        "the common list must not be fully decoded: {cs:?}"
    );
}

/// The same skip accounting must surface in `QueryStats` when the query
/// runs through the engine over an on-disk index.
#[test]
fn engine_reports_postings_skipped_on_disk_index() {
    let dir = std::env::temp_dir().join(format!("free-stream-engine-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // Every doc contains "commongram"; few contain "rareneedle". The AND
    // of both grams is maximally lopsided.
    let docs: Vec<Vec<u8>> = (0..600)
        .map(|i| {
            if i % 200 == 7 {
                format!("commongram rareneedle {i}").into_bytes()
            } else {
                format!("commongram filler {i}").into_bytes()
            }
        })
        .collect();
    let corpus = MemCorpus::from_docs(docs);
    let config = EngineConfig {
        usefulness_threshold: 1.0,
        max_gram_len: 10,
        prune_selectivity: 1.0, // keep the common list in the plan
        ..EngineConfig::default()
    };
    let engine = Engine::build_on_disk(corpus, config, dir.join("idx.free")).unwrap();
    let mut r = engine.query("commongram.*rareneedle").unwrap();
    let matching = r.matching_docs().unwrap();
    assert_eq!(matching, vec![7, 207, 407]);
    let stats = r.stats();
    assert!(
        stats.postings_skipped > 0,
        "lopsided AND must report skipped postings: {stats}"
    );
    assert!(stats.cursor_seeks > 0, "{stats}");
    let _ = std::fs::remove_dir_all(&dir);
}
