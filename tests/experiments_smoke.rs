//! Smoke tests for the experiment harness: every table/figure renderer
//! runs on a miniature experiment and the measured shapes satisfy the
//! paper's qualitative claims.

use free_bench::harness::{Experiment, ExperimentConfig};
use free_bench::report;

fn experiment() -> Experiment {
    Experiment::build(ExperimentConfig {
        num_docs: 200,
        repeats: 1,
        complete_max_gram_len: 5,
        ..ExperimentConfig::default()
    })
}

#[test]
fn table3_shape() {
    let e = experiment();
    let rows = e.table3();
    assert_eq!(rows.len(), 3);
    let (complete, multigram, suffix) = (&rows[0], &rows[1], &rows[2]);
    assert_eq!(complete.name, "Complete");
    assert_eq!(multigram.name, "Multigram");
    assert_eq!(suffix.name, "Suffix");
    // Paper shape: Complete ≫ Multigram ≥ Suffix, in keys and postings.
    assert!(complete.num_keys > multigram.num_keys);
    assert!(multigram.num_keys >= suffix.num_keys);
    assert!(complete.num_postings > multigram.num_postings);
    assert!(multigram.num_postings >= suffix.num_postings);
    let rendered = report::render_table3(&rows, 200, 1);
    assert!(rendered.contains("Multigram"));
    let csv = report::table3_csv(&rows);
    assert_eq!(csv.lines().count(), 4);
}

#[test]
fn figures_run_and_render() {
    let e = experiment();
    let rows = e.run_queries();
    assert_eq!(rows.len(), 10);
    for renderer in [
        report::render_fig9,
        report::render_fig10,
        report::render_fig11,
        report::render_fig12,
    ] {
        let rendered = renderer(&rows);
        for q in ["mp3", "zip", "clinton", "powerpc", "ebay"] {
            assert!(rendered.contains(q), "{rendered}");
        }
    }
    let csv = report::query_rows_csv(&rows);
    assert_eq!(csv.lines().count(), 11);
}

#[test]
fn latency_percentiles_render_per_mode() {
    let e = experiment();
    let (rows, latencies) = e.run_queries_profiled();
    assert_eq!(rows.len(), 10);
    let rendered = report::render_latencies(&latencies);
    for mode in ["Scan", "Multigram", "Complete", "Suffix"] {
        assert!(rendered.contains(mode), "{rendered}");
    }
    for column in ["p50", "p90", "p99", "mean", "samples"] {
        assert!(rendered.contains(column), "{rendered}");
    }
    // One sample per query per mode at repeats=1.
    assert_eq!(latencies.multigram.count(), 10);
}

#[test]
fn scan_fallback_queries_never_lose_to_scan_badly() {
    // Paper: "even for these regular expressions, indexing techniques do
    // not degrade performance" — allow generous noise margins on a tiny
    // corpus, but a 3x degradation would indicate a real defect.
    let e = experiment();
    for row in e.run_queries() {
        if row.multigram_used_scan {
            let ratio = row.multigram_time.as_secs_f64() / row.scan_time.as_secs_f64().max(1e-9);
            assert!(
                ratio < 3.0,
                "{}: index path {ratio:.1}x slower than scan",
                row.name
            );
        }
    }
}

#[test]
fn selective_queries_examine_fewer_docs() {
    let e = experiment();
    let rows = e.run_queries();
    let by_name = |n: &str| rows.iter().find(|r| r.name == n).unwrap();
    // The needle queries must be answered from a small candidate set.
    for name in ["mp3", "powerpc", "ebay"] {
        let row = by_name(name);
        assert!(
            !row.multigram_used_scan,
            "{name} should not fall back to scan"
        );
        assert!(
            row.multigram_candidates <= 200 / 4,
            "{name}: {} candidates of 200 docs",
            row.multigram_candidates
        );
    }
}
