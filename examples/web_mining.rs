//! Example 1.2 from the paper: "How does one find the middle name of
//! Thomas Edison?"
//!
//! Instead of keyword search plus manual reading, issue the regex
//! `Thomas \a+ Edison` and rank the *matching strings* by frequency —
//! the most frequent answer surfaces immediately. This is the paper's
//! motivating "improved search" scenario; the same pattern powers its
//! data-extraction use case (Brin-style relation extraction).
//!
//! ```text
//! cargo run --release -p free-engine --example web_mining
//! ```

// Example code: panicking on setup failure keeps the walkthrough
// focused on the API being demonstrated.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use free_corpus::{Corpus, MemCorpus};
use free_engine::{Engine, EngineConfig};
use std::collections::HashMap;

/// Builds a deterministic mini-web of biography-ish pages. Most pages are
/// noise; some mention Edison with his real middle name, a few with typos
/// or other people named Edison.
fn build_corpus() -> MemCorpus {
    let mut docs: Vec<Vec<u8>> = Vec::new();
    let filler_words = [
        "inventor",
        "telegraph",
        "phonograph",
        "laboratory",
        "electric",
        "lamp",
        "patent",
        "menlo",
        "park",
        "research",
        "history",
        "biography",
        "famous",
        "america",
    ];
    for i in 0..600usize {
        let mut page = format!(
            "<html><head><title>page {i}</title></head><body><p>the {} of {} and the {} {} {}</p>",
            filler_words[i % filler_words.len()],
            filler_words[(i * 3 + 1) % filler_words.len()],
            filler_words[(i * 5 + 2) % filler_words.len()],
            filler_words[(i * 7 + 3) % filler_words.len()],
            filler_words[(i * 11 + 4) % filler_words.len()],
        );
        // ~5% of pages state the correct full name.
        if i % 20 == 7 {
            page.push_str("<p>the inventor Thomas Alva Edison patented the phonograph</p>");
        }
        // Occasional near-misses and decoys.
        if i % 97 == 13 {
            page.push_str("<p>a profile of Thomas Elva Edison (sic)</p>");
        }
        if i % 113 == 25 {
            page.push_str("<p>meet Thomas Watson Edison, no relation</p>");
        }
        // Unrelated Edisons and Thomases keep keyword search noisy.
        if i % 9 == 4 {
            page.push_str("<p>the Edison Electric company annual report</p>");
        }
        if i % 11 == 6 {
            page.push_str("<p>Thomas the engineer visited the laboratory</p>");
        }
        page.push_str("</body></html>");
        docs.push(page.into_bytes());
    }
    MemCorpus::from_docs(docs)
}

fn main() {
    let corpus = build_corpus();
    let engine = Engine::build_in_memory(
        corpus,
        EngineConfig {
            // A small corpus wants a slightly looser usefulness threshold.
            usefulness_threshold: 0.2,
            ..EngineConfig::default()
        },
    )
    .expect("index construction");

    let pattern = r"Thomas \a+ Edison";
    println!("query: {pattern}\n");
    println!("{}\n", engine.explain(pattern).expect("explain"));

    let mut result = engine.query(pattern).expect("query");
    let matches = result.all_matches().expect("execution");

    // Rank matching strings by frequency, as the paper's Example 1.2 does.
    let mut freq: HashMap<String, usize> = HashMap::new();
    for dm in &matches {
        let page = engine.corpus().get(dm.doc).expect("doc fetch");
        for span in &dm.spans {
            let s = String::from_utf8_lossy(&page[span.range()]).into_owned();
            *freq.entry(s).or_default() += 1;
        }
    }
    let mut ranked: Vec<(String, usize)> = freq.into_iter().collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

    println!("matching strings by frequency:");
    for (s, n) in &ranked {
        println!("  {n:>4}  {s}");
    }
    println!(
        "\nexamined {} of {} pages; the top answer contains the middle name: {}",
        result.stats().docs_examined,
        engine.num_docs(),
        ranked
            .first()
            .map(|(s, _)| s.as_str())
            .unwrap_or("(no matches)"),
    );
    assert_eq!(
        ranked.first().map(|(s, _)| s.as_str()),
        Some("Thomas Alva Edison"),
        "the paper's anecdote should reproduce"
    );
}
