//! Regex-indexed code search — the use case FREE's multigram idea later
//! inspired (Google Code Search and its descendants use trigram indexes;
//! FREE's multigrams are the variable-length generalization).
//!
//! Indexes every `.rs` file under `crates/` of this very repository (one
//! file = one data unit) and answers structural queries, showing how few
//! files each query actually has to open.
//!
//! ```text
//! cargo run --release -p free-engine --example code_search
//! ```

// Example code: panicking on setup failure keeps the walkthrough
// focused on the API being demonstrated.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use free_corpus::{Corpus, FsCorpus};
use free_engine::{Engine, EngineConfig};

fn main() {
    // Locate the workspace: walk up from cwd until a `crates/` dir shows.
    let mut root = std::env::current_dir().expect("cwd");
    while !root.join("crates").is_dir() {
        if !root.pop() {
            eprintln!("run from inside the repository (crates/ not found)");
            std::process::exit(1);
        }
    }
    let corpus =
        FsCorpus::open(root.join("crates"), &["rs"], &["target"]).expect("walk source tree");
    if corpus.is_empty() {
        eprintln!("no .rs files found under {}", root.display());
        std::process::exit(1);
    }
    let names: Vec<String> = corpus
        .paths()
        .iter()
        .map(|p| p.display().to_string())
        .collect();
    println!("indexed {} Rust files from {}", names.len(), root.display());

    let engine = Engine::build_in_memory(
        corpus,
        EngineConfig {
            // Source code is repetitive; a lower threshold keeps the
            // directory focused on genuinely rare grams.
            usefulness_threshold: 0.25,
            ..EngineConfig::default()
        },
    )
    .expect("index construction");
    println!(
        "index: {} gram keys, {} postings\n",
        engine.build_stats().index_stats.num_keys,
        engine.build_stats().index_stats.num_postings,
    );

    let queries = [
        // `.` matches any byte (including newline) in this engine, so
        // line-scoped queries use [^\n] the way grep users write [^"]*.
        ("public APIs returning Result", r"pub fn \w+\([^\n]*Result"),
        ("Hopcroft minimization call sites", r"\.minimize\(\)"),
        ("panicky unwraps in non-test code", r"\.expect\("),
        ("epsilon-closure implementations", r"epsilon_closure\w*"),
        ("TODO/FIXME debt", r"(TODO|FIXME)"),
    ];
    for (what, pattern) in queries {
        let mut result = engine.query(pattern).expect("query");
        let matches = result.all_matches().expect("execution");
        let hits: usize = matches.iter().map(|m| m.spans.len()).sum();
        println!(
            "{what}\n  pattern: {pattern}\n  {} hits in {} files (opened {} of {} files{})",
            hits,
            matches.len(),
            result.stats().docs_examined,
            engine.num_docs(),
            if result.used_scan() {
                "; full scan"
            } else {
                ""
            },
        );
        for dm in matches.iter().take(3) {
            let page = engine.corpus().get(dm.doc).expect("doc");
            let first = dm.spans.first().expect("non-empty");
            let line = page[..first.start].iter().filter(|&&b| b == b'\n').count() + 1;
            let text = String::from_utf8_lossy(&page[first.range()]);
            let first_line = text.lines().next().unwrap_or("").trim();
            println!("    {}:{line}: {first_line}", names[dm.doc as usize]);
        }
        println!();
    }
}
