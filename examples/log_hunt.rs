//! Interactive-latency log hunting: first-k streaming over an indexed
//! corpus of web-server access logs.
//!
//! The paper's Figure 11 argues the index's killer feature for
//! interactive use: time-to-first-results is nearly constant, while a
//! scan's fluctuates wildly with how deep the first hit is buried. This
//! example reproduces that effect on Apache-style logs (one day of logs =
//! one data unit).
//!
//! ```text
//! cargo run --release -p free-engine --example log_hunt
//! ```

// Example code: panicking on setup failure keeps the walkthrough
// focused on the API being demonstrated.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use free_corpus::{Corpus, MemCorpus};
use free_engine::{baseline, Engine, EngineConfig};
use std::time::Instant;

/// Deterministic pseudo-random generator (no external crates needed).
struct Lcg(u64);
impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
    fn pick<'a>(&mut self, options: &[&'a str]) -> &'a str {
        options[(self.next() as usize) % options.len()]
    }
}

fn build_logs(days: usize, lines_per_day: usize) -> MemCorpus {
    let mut rng = Lcg(0x10c5);
    let paths = [
        "/index.html",
        "/cart",
        "/api/v1/items",
        "/login",
        "/static/app.js",
    ];
    let agents = ["Mozilla/4.0", "Lynx/2.8", "crawler/1.1"];
    let mut docs = Vec::with_capacity(days);
    for day in 0..days {
        let mut doc = String::with_capacity(lines_per_day * 80);
        for line in 0..lines_per_day {
            let status = match rng.next() % 100 {
                0..=88 => 200,
                89..=94 => 304,
                95..=97 => 404,
                // The needle: internal errors from one buggy endpoint,
                // only in the most recent few days (rare enough that the
                // miner keeps "/checkout" grams as useful index keys).
                _ if day >= days - 12 => 500,
                _ => 404,
            };
            let ip = format!(
                "{}.{}.{}.{}",
                10 + rng.next() % 200,
                rng.next() % 256,
                rng.next() % 256,
                1 + rng.next() % 254
            );
            let path = if status == 500 {
                "/api/v1/checkout"
            } else {
                rng.pick(&paths)
            };
            doc.push_str(&format!(
                "{ip} - - [{:02}/Jun/1999:{:02}:{:02}:00 -0700] \"GET {path} HTTP/1.0\" {status} {} \"{}\"\n",
                1 + day % 28,
                line % 24,
                line % 60,
                200 + rng.next() % 9000,
                rng.pick(&agents),
            ));
        }
        docs.push(doc.into_bytes());
    }
    MemCorpus::from_docs(docs)
}

fn main() {
    let corpus = build_logs(400, 300);
    println!(
        "corpus: {} daily logs, {} bytes total",
        corpus.len(),
        corpus.total_bytes()
    );
    let engine =
        Engine::build_in_memory(corpus, EngineConfig::default()).expect("index construction");

    // Hunt: server errors on the checkout endpoint.
    let pattern = r#""GET /api/v1/checkout HTTP/1\.0" 500"#;
    println!(
        "\nhunting: {pattern}\n{}",
        engine.explain(pattern).expect("explain")
    );

    // Index path: first 10 hits.
    let t = Instant::now();
    let mut result = engine.query(pattern).expect("query");
    let hits = result.first_k_matches(10).expect("first k");
    let index_time = t.elapsed();
    println!(
        "\nindex: first {} hits in {index_time:.2?} (examined {} of {} logs)",
        hits.len(),
        result.stats().docs_examined,
        engine.num_docs()
    );
    for (doc, span) in hits.iter().take(3) {
        let log = engine.corpus().get(*doc).expect("doc");
        let line_start = log[..span.start]
            .iter()
            .rposition(|&b| b == b'\n')
            .map_or(0, |p| p + 1);
        let line_end = log[span.end..]
            .iter()
            .position(|&b| b == b'\n')
            .map_or(log.len(), |p| span.end + p);
        println!(
            "  day {doc}: {}",
            String::from_utf8_lossy(&log[line_start..line_end])
        );
    }

    // Scan path: the errors are buried in the last quarter of the data, so
    // a sequential scan must chew through most of the corpus first.
    let t = Instant::now();
    let (scan_hits, stats) = baseline::scan_first_k(engine.corpus(), pattern, 10).expect("scan");
    let scan_time = t.elapsed();
    println!(
        "scan:  first {} hits in {scan_time:.2?} (examined {} of {} logs)",
        scan_hits.len(),
        stats.docs_examined,
        engine.num_docs()
    );
    println!(
        "\nindex examined {} logs vs {} for the scan ({}x fewer)",
        result.stats().docs_examined,
        stats.docs_examined,
        stats.docs_examined / result.stats().docs_examined.max(1)
    );
}
