//! Quickstart: build a multigram index over a synthetic web corpus and
//! answer a few regex queries, printing plans and cost accounting.
//!
//! ```text
//! cargo run --release -p free-engine --example quickstart
//! ```

// Example code: panicking on setup failure keeps the walkthrough
// focused on the API being demonstrated.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use free_corpus::synth::{Generator, SynthConfig};
use free_corpus::Corpus;
use free_engine::{Engine, EngineConfig};

fn main() {
    // 1. A corpus of data units. Here: 800 deterministic synthetic web
    //    pages (stand-ins for the paper's 1999 crawl). Any `Vec<Vec<u8>>`
    //    via `MemCorpus::from_docs`, or an on-disk `DiskCorpus`, works the
    //    same way.
    let (corpus, _) = Generator::new(SynthConfig {
        num_docs: 800,
        ..SynthConfig::default()
    })
    .build_mem();
    println!(
        "corpus: {} data units, {} bytes",
        corpus.len(),
        corpus.total_bytes()
    );

    // 2. Build the engine. The default configuration mines minimal useful
    //    multigrams with the paper's parameters (c = 0.1, grams up to 10
    //    bytes long).
    let engine =
        Engine::build_in_memory(corpus, EngineConfig::default()).expect("index construction");
    let build = engine.build_stats();
    println!(
        "index:  {} gram keys, {} postings, built in {:.2?} ({} mining scans + 1 postings scan)\n",
        build.index_stats.num_keys,
        build.index_stats.num_postings,
        build.total_time(),
        build.select_passes,
    );

    // 3. Ask queries. `explain` shows how the regex compiles to an index
    //    access plan; `query` executes it.
    for pattern in [
        r#"<a href=("|')?.*\.mp3("|')?>"#, // Example 1.1 of the paper
        r"william\s+[a-z]+\s+clinton",
        r"\d\d\d\d\d(-\d\d\d\d)?", // no useful grams: falls back to scan
    ] {
        println!("{}", engine.explain(pattern).expect("explain"));
        let mut result = engine.query(pattern).expect("query");
        let matches = result.all_matches().expect("execution");
        let total: usize = matches.iter().map(|m| m.spans.len()).sum();
        println!(
            "-> {} matching strings in {} data units; examined {} of {} units ({})\n",
            total,
            matches.len(),
            result.stats().docs_examined,
            engine.num_docs(),
            if result.used_scan() {
                "full scan"
            } else {
                "index-selected candidates only"
            },
        );
    }
}
