//! Offline stand-in for the `bytes` crate.
//!
//! Provides [`Bytes`]: an immutable, cheaply cloneable byte buffer backed by
//! an `Arc<[u8]>` with a sub-range view. Vendored because this build
//! environment has no access to crates.io; only the API surface the
//! workspace uses is provided.

#![forbid(unsafe_code)]

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// An immutable, reference-counted slice of bytes. Cloning is O(1) and
/// slicing shares the underlying allocation.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer (no allocation).
    pub fn new() -> Bytes {
        Bytes::from(Vec::new())
    }

    /// Copies `data` into a fresh buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    /// A sub-view sharing this buffer's allocation.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or inverted.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end && end <= len, "slice {begin}..{end} of {len}");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// Number of bytes in the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let data: Arc<[u8]> = v.into();
        Bytes {
            start: 0,
            end: data.len(),
            data,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        **self == **other
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        **self == *other
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        (**self).hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_slice() {
        let b = Bytes::from(b"hello world".to_vec());
        assert_eq!(&*b, b"hello world");
        assert_eq!(b.len(), 11);
        let s = b.slice(6..);
        assert_eq!(&*s, b"world");
        let s2 = s.slice(1..3);
        assert_eq!(&*s2, b"or");
        assert_eq!(b.slice(..0).len(), 0);
    }

    #[test]
    fn equality_and_clone_share() {
        let b = Bytes::copy_from_slice(b"abc");
        let c = b.clone();
        assert_eq!(b, c);
        assert!(Bytes::new().is_empty());
        assert_eq!(format!("{b:?}"), "b\"abc\"");
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_slice_panics() {
        let _ = Bytes::copy_from_slice(b"ab").slice(1..5);
    }
}
