//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest 1.x API this workspace's test
//! suites use: the `proptest!` macro, `Strategy` with `prop_map` /
//! `prop_recursive` / `boxed`, `Just`, `any`, range strategies, tuple
//! strategies, `prop::collection::{vec, btree_set}`, `prop_oneof!`, and the
//! `prop_assert*` / `prop_assume!` macros. Vendored because this build
//! environment has no access to crates.io.
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports the generated inputs (via the
//!   assertion message and the seed) but is not minimized.
//! * **Fixed deterministic seeding.** Cases derive from a per-test seed,
//!   overridable with `PROPTEST_SEED`; failures print the case seed so a
//!   run can be reproduced by setting it.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng as _, RngCore, SeedableRng};
use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// Test-runner configuration (`cases` is the only knob honored).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
    /// Maximum rejected cases (via `prop_assume!`) tolerated globally.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

impl ProptestConfig {
    /// A config requiring `cases` successful cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

/// Why a test case did not succeed.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// `prop_assume!` filtered the inputs; the case is not counted.
    Reject(String),
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// A rejection (filtered input).
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }

    /// A failure.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }
}

/// Result type of one generated test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A generator of values of type `Self::Value`.
///
/// Unlike upstream proptest there is no value tree: a strategy simply
/// produces a value from an RNG (no shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (cheaply cloneable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut StdRng| self.generate(rng)))
    }

    /// Builds recursive values: `self` is the leaf case and `f` wraps a
    /// strategy for depth `d` into one for depth `d + 1`. `depth` bounds
    /// the recursion; `_desired_size`/`_expected_branch_size` are accepted
    /// for upstream API compatibility and ignored.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + Clone + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let mut strat = self.clone().boxed();
        for _ in 0..depth {
            // At each level, bias toward leaves so expected size stays small.
            let deeper = f(strat).boxed();
            strat = BoxedStrategy::one_of(vec![self.clone().boxed(), deeper]);
        }
        strat
    }
}

/// A cheaply cloneable, type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut StdRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T: 'static> BoxedStrategy<T> {
    /// Picks uniformly among `arms` each generation (used by
    /// `prop_oneof!`).
    pub fn one_of(arms: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        BoxedStrategy(Rc::new(move |rng: &mut StdRng| {
            let i = rng.gen_range(0..arms.len());
            arms[i].generate(rng)
        }))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        (self.0)(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy producing a fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value of the type.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($ty:ty),+) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut StdRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )+};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> f64 {
        rng.gen()
    }
}

/// The `any::<T>()` strategy.
#[derive(Clone, Debug, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! range_strategy {
    ($($ty:ty),+) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut StdRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut StdRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
    )+};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, G)
}

/// The `prop::` namespace (`prop::collection::vec` and friends).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::*;

        /// A strategy for `Vec`s with element strategy `element` and a
        /// length drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        /// A strategy for `BTreeSet`s (sizes are best-effort: duplicate
        /// draws are retried a bounded number of times).
        pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
        where
            S::Value: Ord,
        {
            BTreeSetStrategy {
                element,
                size: size.into(),
            }
        }

        /// A length/size specification for collection strategies.
        #[derive(Clone, Debug)]
        pub struct SizeRange {
            min: usize,
            max_exclusive: usize,
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> SizeRange {
                assert!(r.start < r.end, "empty size range {r:?}");
                SizeRange {
                    min: r.start,
                    max_exclusive: r.end,
                }
            }
        }

        impl From<RangeInclusive<usize>> for SizeRange {
            fn from(r: RangeInclusive<usize>) -> SizeRange {
                SizeRange {
                    min: *r.start(),
                    max_exclusive: *r.end() + 1,
                }
            }
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> SizeRange {
                SizeRange {
                    min: n,
                    max_exclusive: n + 1,
                }
            }
        }

        impl SizeRange {
            fn pick(&self, rng: &mut StdRng) -> usize {
                rng.gen_range(self.min..self.max_exclusive)
            }
        }

        /// See [`vec()`](fn@vec).
        #[derive(Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
                let n = self.size.pick(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// See [`btree_set`].
        #[derive(Clone)]
        pub struct BTreeSetStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for BTreeSetStrategy<S>
        where
            S::Value: Ord,
        {
            type Value = BTreeSet<S::Value>;

            fn generate(&self, rng: &mut StdRng) -> BTreeSet<S::Value> {
                let n = self.size.pick(rng);
                let mut out = BTreeSet::new();
                let mut attempts = 0usize;
                while out.len() < n && attempts < n * 10 + 16 {
                    out.insert(self.element.generate(rng));
                    attempts += 1;
                }
                out
            }
        }
    }
}

/// Everything a test file needs.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

/// Runs `case` until `config.cases` successes (panicking on failure). The
/// driver behind the `proptest!` macro.
pub fn run_property_test<F>(mut config: ProptestConfig, test_name: &str, mut case: F)
where
    F: FnMut(&mut StdRng) -> TestCaseResult,
{
    // Allow slow environments (Miri, sanitizers) to cut the case count
    // without touching each suite, matching upstream proptest.
    if let Some(cases) = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        config.cases = cases;
    }
    let base_seed = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0x5eed_f00d_u64);
    // Derive a per-test stream so all tests do not share one sequence.
    let mut hash = base_seed ^ 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        hash = (hash ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
    }
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let mut case_index = 0u64;
    while passed < config.cases {
        let case_seed = hash.wrapping_add(case_index);
        case_index += 1;
        let mut rng = StdRng::seed_from_u64(case_seed);
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!(
                        "{test_name}: too many prop_assume! rejections \
                         ({rejected}) before reaching {} cases",
                        config.cases
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "{test_name}: property failed after {passed} passing case(s) \
                     [case seed {case_seed:#x}]: {msg}"
                );
            }
        }
    }
}

/// Declares property tests. Supports the standard form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u32..10, v in prop::collection::vec(any::<u8>(), 0..9)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::run_property_test($cfg, stringify!($name), |__rng| {
                let ($($pat,)+) = ($($crate::Strategy::generate(&($strat), __rng),)+);
                $body
                #[allow(unreachable_code)]
                Ok(())
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property test (recorded as a failure, not
/// an immediate panic, so the runner can report the case seed).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), left, right
            )));
        }
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Discards the current case (does not count toward the case target).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Uniformly picks one of several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $arm:expr),+ $(,)?) => {
        // Weights are accepted for compatibility and treated as uniform.
        $crate::BoxedStrategy::one_of(vec![$($crate::Strategy::boxed($arm)),+])
    };
    ($($arm:expr),+ $(,)?) => {
        $crate::BoxedStrategy::one_of(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn runner_reaches_case_target() {
        let mut runs = 0u32;
        crate::run_property_test(ProptestConfig::with_cases(10), "t", |_rng| {
            runs += 1;
            Ok(())
        });
        assert_eq!(runs, 10);
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failure_panics_with_seed() {
        crate::run_property_test(ProptestConfig::with_cases(5), "t", |_rng| {
            Err(TestCaseError::fail("boom"))
        });
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_collections(
            x in 3u32..9,
            v in prop::collection::vec(any::<u8>(), 2..5),
            s in prop::collection::btree_set(0u32..1000, 0..10),
            f in 0.0f64..=1.0,
        ) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(s.len() < 10);
            prop_assert!((0.0..=1.0).contains(&f));
        }

        #[test]
        fn oneof_map_and_recursion(
            v in prop_oneof![Just(1u32), 2u32..4, Just(9u32)].prop_map(|x| x * 10),
            tree_size in Just(0usize).prop_recursive(3, 8, 2, |inner| {
                (inner, Just(1usize)).prop_map(|(a, b)| a + b)
            }),
        ) {
            prop_assert!(v == 10 || v == 20 || v == 30 || v == 90, "v={}", v);
            prop_assert!(tree_size <= 3, "depth-bounded: {}", tree_size);
        }

        /// Doc comments and assume are tolerated.
        #[test]
        fn assume_filters(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
            prop_assert_ne!(x % 2, 1);
        }
    }
}
