//! Offline stand-in for the `rand` crate.
//!
//! Provides the subset of the rand 0.8 API the workspace uses: the
//! [`RngCore`]/[`Rng`]/[`SeedableRng`] traits, integer/float sampling via
//! `gen_range`, `gen_bool` and `gen::<f64>()`, and [`rngs::StdRng`], a
//! deterministic xoshiro256**-style generator. Vendored because this build
//! environment has no access to crates.io. Statistical quality is adequate
//! for synthetic-corpus generation and tests; none of this is
//! cryptographic.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// The raw entropy source.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range` (`a..b` or `a..=b`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p={p}");
        unit_f64(self.next_u64()) < p
    }

    /// A sample of the type's full "standard" distribution; for `f64` this
    /// is uniform in `[0, 1)`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Converts 64 random bits into a uniform `f64` in `[0, 1)`.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable by [`Rng::gen`].
pub trait Standard {
    /// Draws one sample from the standard distribution for the type.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> f64 {
        unit_f64(rng.next_u64())
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// A uniform sample from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

// A single blanket impl per range shape (rather than one impl per element
// type) so type inference matches upstream rand: `b'0' + rng.gen_range(0..10)`
// must infer the literal range as `Range<u8>`, which requires exactly one
// `SampleRange` candidate for `Range<_>`.
impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Element types uniformly samplable from a range.
pub trait SampleUniform: Sized {
    /// A uniform sample from `[lo, hi)`; panics if empty.
    fn sample_half_open<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// A uniform sample from `[lo, hi]`; panics if empty.
    fn sample_inclusive<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Rejection-free-enough bounded sampling: multiply-shift reduction of a
/// 64-bit draw onto `[0, span)`. Bias is ≤ span/2^64, irrelevant here.
#[inline]
fn bounded(rng: &mut impl RngCore, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! int_sample_uniform {
    ($($ty:ty),+) => {$(
        impl SampleUniform for $ty {
            fn sample_half_open<R: RngCore>(rng: &mut R, lo: $ty, hi: $ty) -> $ty {
                assert!(lo < hi, "empty gen_range {lo}..{hi}");
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + bounded(rng, span) as i128) as $ty
            }
            fn sample_inclusive<R: RngCore>(rng: &mut R, lo: $ty, hi: $ty) -> $ty {
                assert!(lo <= hi, "empty gen_range {lo}..={hi}");
                let span128 = hi as i128 - lo as i128 + 1;
                if span128 > u64::MAX as i128 {
                    // Only reachable for `u64/i64/usize/isize` spanning the
                    // full domain: every value is valid.
                    return rng.next_u64() as $ty;
                }
                (lo as i128 + bounded(rng, span128 as u64) as i128) as $ty
            }
        }
    )+};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore>(rng: &mut R, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty gen_range {lo}..{hi}");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
    fn sample_inclusive<R: RngCore>(rng: &mut R, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "empty gen_range {lo}..={hi}");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A deterministic 64-bit generator (xoshiro256** core seeded by
    /// SplitMix64). Same name as rand's default so call sites are
    /// unchanged; the stream differs from upstream rand, which only
    /// matters if exact sequences were golden-tested (they are not).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, the recommended xoshiro seeding.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let v = rng.gen_range(5u32..=5);
            assert_eq!(v, 5);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_rates() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "{hits}");
        assert!(!rng.gen_bool(0.0));
        let _ = rng.gen_bool(1.0); // 1.0 may round; just exercise the edge
    }

    #[test]
    fn full_u64_range() {
        let mut rng = StdRng::seed_from_u64(3);
        // `0..u64::MAX` via the exclusive range used by the benches.
        for _ in 0..100 {
            let _ = rng.gen_range(0u64..u64::MAX);
        }
    }
}
