//! Offline stand-in for the `rustc-hash` crate.
//!
//! Implements the same multiply-based byte hasher and the usual
//! `FxHashMap`/`FxHashSet` aliases. Vendored because this build environment
//! has no access to crates.io; only the API surface the workspace uses is
//! provided.

#![forbid(unsafe_code)]

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// `BuildHasherDefault` over [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The fast, non-cryptographic hasher used throughout rustc.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_word(u64::from_le_bytes(buf));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_word(u64::from_le_bytes(buf) ^ rest.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_word(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_word(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_word(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_word(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_word(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_sensitive() {
        let h = |bytes: &[u8]| {
            let mut hasher = FxHasher::default();
            hasher.write(bytes);
            hasher.finish()
        };
        assert_eq!(h(b"abc"), h(b"abc"));
        assert_ne!(h(b"abc"), h(b"abd"));
        assert_ne!(h(b"abc"), h(b"abcd"));
        // Length is mixed in, so a zero tail is not a no-op.
        assert_ne!(h(b"ab"), h(b"ab\0"));
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<&str, u32> = FxHashMap::default();
        m.insert("a", 1);
        m.insert("b", 2);
        assert_eq!(m.get("a"), Some(&1));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        s.insert(42);
        assert!(s.contains(&42));
    }
}
