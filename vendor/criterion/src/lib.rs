//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the criterion 0.5 API the workspace's benches
//! use — `criterion_group!`/`criterion_main!`, benchmark groups,
//! `bench_function`/`bench_with_input`, `Throughput`, `BenchmarkId` and
//! `black_box` — without the statistical machinery: each benchmark body is
//! timed over a small fixed number of iterations and the mean is printed.
//! Vendored because this build environment has no access to crates.io.
//! Numbers from this harness are indicative only; trends, not absolutes.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimizing a value away.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation attached to a group (printed with results).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: `function/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Just the parameter (for single-function groups).
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times closures handed to [`Bencher::iter`].
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `body` repeatedly, recording total wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        // One warmup call, then the timed iterations.
        black_box(body());
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(body());
        }
        self.elapsed = start.elapsed();
    }
}

/// The top-level benchmark driver.
pub struct Criterion {
    iterations: u64,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // Keep smoke runs fast; FREE_BENCH_ITERS overrides for real timing.
        let iterations = std::env::var("FREE_BENCH_ITERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(10);
        Criterion { iterations }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        let iterations = self.iterations;
        run_one(&name.to_string(), None, iterations, f);
        self
    }
}

/// A named collection of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the fixed-iteration harness ignores
    /// sample counts.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility (measurement time is fixed).
    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Annotates subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.throughput, self.criterion.iterations, f);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    throughput: Option<Throughput>,
    iterations: u64,
    mut f: F,
) {
    let mut b = Bencher {
        iterations,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let mean = b.elapsed.checked_div(iterations as u32).unwrap_or_default();
    let rate = |per_iter: u64, unit: &str| {
        let secs = mean.as_secs_f64();
        if secs > 0.0 {
            format!(" ({:.1} {unit}/s)", per_iter as f64 / secs)
        } else {
            String::new()
        }
    };
    let extra = match throughput {
        Some(Throughput::Bytes(n)) => rate(n, "B"),
        Some(Throughput::Elements(n)) => rate(n, "elem"),
        None => String::new(),
    };
    println!("bench {label}: {mean:?}/iter over {iterations} iters{extra}");
}

/// Declares a group-runner function invoking each benchmark target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        /// Runs every benchmark target in this group.
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_times() {
        let mut c = Criterion { iterations: 3 };
        let mut group = c.benchmark_group("g");
        let mut runs = 0u32;
        group
            .sample_size(10)
            .throughput(Throughput::Elements(4))
            .bench_with_input(BenchmarkId::new("f", "x"), &2u32, |b, &two| {
                b.iter(|| {
                    runs += 1;
                    black_box(two * 2)
                });
            });
        group.finish();
        // 1 warmup + 3 timed iterations.
        assert_eq!(runs, 4);
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("enc", "small").to_string(), "enc/small");
        assert_eq!(BenchmarkId::from_parameter(42).to_string(), "42");
    }
}
